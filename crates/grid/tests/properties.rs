//! Property-based tests for the virtual-time simulator: conservation
//! (busy time ≤ makespan), monotonicity in work, and exactness of the
//! closed form on uniform width-1 chains.

use cgp_grid::{analytic_total_time, simulate, GridConfig, LinkSpec, PacketWork};
use proptest::prelude::*;

fn arb_packets(m: usize) -> impl Strategy<Value = Vec<PacketWork>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(1.0f64..1e6, m),
            proptest::collection::vec(0.0f64..1e5, m - 1),
        )
            .prop_map(|(comp_ops, bytes)| PacketWork { comp_ops, bytes, read_bytes: 0.0 }),
        1..60,
    )
}

proptest! {
    #[test]
    fn busy_time_never_exceeds_makespan(
        pkts in arb_packets(3),
        w in 1usize..5,
        power in 1.0f64..1e6,
        bw in 1.0f64..1e6,
    ) {
        let grid = GridConfig::w_w_1(w, power, LinkSpec { bandwidth: bw, latency: 1e-6 });
        let r = simulate(&grid, &pkts, &[]);
        for copies in r.stage_busy.iter().chain(r.link_busy.iter()) {
            for b in copies {
                prop_assert!(*b <= r.makespan * (1.0 + 1e-9));
            }
        }
        prop_assert!(r.bottleneck_utilization <= 1.0 + 1e-9);
        prop_assert!(r.packets_done <= r.makespan + 1e-12);
    }

    #[test]
    fn makespan_monotone_in_work(
        pkts in arb_packets(3),
        extra in 1.0f64..1e6,
        stage in 0usize..3,
    ) {
        let grid = GridConfig::w_w_1(2, 1e3, LinkSpec { bandwidth: 1e4, latency: 1e-6 });
        let base = simulate(&grid, &pkts, &[]).makespan;
        let mut heavier = pkts.clone();
        for p in &mut heavier {
            p.comp_ops[stage] += extra;
        }
        let more = simulate(&grid, &heavier, &[]).makespan;
        prop_assert!(more >= base - 1e-12);
    }

    #[test]
    fn makespan_bounded_below_by_total_work_over_capacity(
        pkts in arb_packets(3),
        w in 1usize..4,
    ) {
        let power = 1e4;
        let grid = GridConfig::w_w_1(w, power, LinkSpec { bandwidth: 1e9, latency: 0.0 });
        let r = simulate(&grid, &pkts, &[]);
        for s in 0..3 {
            let width = grid.widths()[s] as f64;
            let total: f64 = pkts.iter().map(|p| p.comp_ops[s] / power).sum();
            prop_assert!(
                r.makespan + 1e-9 >= total / width,
                "stage {s}: makespan {} < {}",
                r.makespan,
                total / width
            );
        }
    }

    #[test]
    fn closed_form_exact_on_uniform_chain(
        m in 1usize..5,
        n in 1usize..150,
        ops in proptest::collection::vec(1.0f64..1e6, 4),
        bytes in proptest::collection::vec(0.0f64..1e6, 3),
        latency in 0.0f64..1e-3,
    ) {
        let grid = GridConfig::uniform_chain(m, 1e5, LinkSpec { bandwidth: 1e5, latency });
        let one = PacketWork {
            comp_ops: ops[..m].to_vec(),
            bytes: bytes[..m - 1].to_vec(),
            read_bytes: 0.0,
        };
        let pkts: Vec<PacketWork> = (0..n).map(|_| one.clone()).collect();
        let sim = simulate(&grid, &pkts, &[]).makespan;
        let ana = analytic_total_time(&grid, &one, n as u64);
        prop_assert!((sim - ana).abs() <= 1e-9 * ana.max(1.0), "{sim} vs {ana}");
    }

    #[test]
    fn finalize_tail_is_additive_and_monotone(
        pkts in arb_packets(3),
        fin in 0.0f64..1e6,
    ) {
        let grid = GridConfig::w_w_1(2, 1e3, LinkSpec { bandwidth: 1e4, latency: 1e-6 });
        let base = simulate(&grid, &pkts, &[0.0, 0.0]).makespan;
        let tail = simulate(&grid, &pkts, &[fin, fin]).makespan;
        prop_assert!(tail >= base - 1e-12);
    }
}
