//! Property-style tests for the virtual-time simulator: conservation
//! (busy time ≤ makespan), monotonicity in work, and exactness of the
//! closed form on uniform width-1 chains. Cases come from a seeded PRNG
//! (the build is offline, so no proptest).

use cgp_grid::{analytic_total_time, simulate, GridConfig, LinkSpec, PacketWork};
use cgp_obs::SmallRng;

fn random_packets(rng: &mut SmallRng, m: usize) -> Vec<PacketWork> {
    let n = rng.gen_range(1, 60);
    (0..n)
        .map(|_| PacketWork {
            comp_ops: (0..m).map(|_| 1.0 + rng.gen_f64() * 1e6).collect(),
            bytes: (0..m - 1).map(|_| rng.gen_f64() * 1e5).collect(),
            read_bytes: 0.0,
        })
        .collect()
}

#[test]
fn busy_time_never_exceeds_makespan() {
    let mut rng = SmallRng::seed_from_u64(0x6D_0001);
    for case in 0..60 {
        let pkts = random_packets(&mut rng, 3);
        let w = rng.gen_range(1, 5);
        let power = 1.0 + rng.gen_f64() * 1e6;
        let bw = 1.0 + rng.gen_f64() * 1e6;
        let grid = GridConfig::w_w_1(
            w,
            power,
            LinkSpec {
                bandwidth: bw,
                latency: 1e-6,
            },
        );
        let r = simulate(&grid, &pkts, &[]);
        for copies in r.stage_busy.iter().chain(r.link_busy.iter()) {
            for b in copies {
                assert!(*b <= r.makespan * (1.0 + 1e-9), "case {case}");
            }
        }
        assert!(r.bottleneck_utilization <= 1.0 + 1e-9, "case {case}");
        assert!(r.packets_done <= r.makespan + 1e-12, "case {case}");
    }
}

#[test]
fn makespan_monotone_in_work() {
    let mut rng = SmallRng::seed_from_u64(0x6D_0002);
    for case in 0..60 {
        let pkts = random_packets(&mut rng, 3);
        let extra = 1.0 + rng.gen_f64() * 1e6;
        let stage = rng.gen_range(0, 3);
        let grid = GridConfig::w_w_1(
            2,
            1e3,
            LinkSpec {
                bandwidth: 1e4,
                latency: 1e-6,
            },
        );
        let base = simulate(&grid, &pkts, &[]).makespan;
        let mut heavier = pkts.clone();
        for p in &mut heavier {
            p.comp_ops[stage] += extra;
        }
        let more = simulate(&grid, &heavier, &[]).makespan;
        assert!(
            more >= base - 1e-12,
            "case {case}: stage {stage}, extra {extra}"
        );
    }
}

#[test]
fn makespan_bounded_below_by_total_work_over_capacity() {
    let mut rng = SmallRng::seed_from_u64(0x6D_0003);
    for case in 0..60 {
        let pkts = random_packets(&mut rng, 3);
        let w = rng.gen_range(1, 4);
        let power = 1e4;
        let grid = GridConfig::w_w_1(
            w,
            power,
            LinkSpec {
                bandwidth: 1e9,
                latency: 0.0,
            },
        );
        let r = simulate(&grid, &pkts, &[]);
        for s in 0..3 {
            let width = grid.widths()[s] as f64;
            let total: f64 = pkts.iter().map(|p| p.comp_ops[s] / power).sum();
            assert!(
                r.makespan + 1e-9 >= total / width,
                "case {case} stage {s}: makespan {} < {}",
                r.makespan,
                total / width
            );
        }
    }
}

#[test]
fn closed_form_exact_on_uniform_chain() {
    let mut rng = SmallRng::seed_from_u64(0x6D_0004);
    for case in 0..60 {
        let m = rng.gen_range(1, 5);
        let n = rng.gen_range(1, 150);
        let ops: Vec<f64> = (0..4).map(|_| 1.0 + rng.gen_f64() * 1e6).collect();
        let bytes: Vec<f64> = (0..3).map(|_| rng.gen_f64() * 1e6).collect();
        let latency = rng.gen_f64() * 1e-3;
        let grid = GridConfig::uniform_chain(
            m,
            1e5,
            LinkSpec {
                bandwidth: 1e5,
                latency,
            },
        );
        let one = PacketWork {
            comp_ops: ops[..m].to_vec(),
            bytes: bytes[..m - 1].to_vec(),
            read_bytes: 0.0,
        };
        let pkts: Vec<PacketWork> = (0..n).map(|_| one.clone()).collect();
        let sim = simulate(&grid, &pkts, &[]).makespan;
        let ana = analytic_total_time(&grid, &one, n as u64);
        assert!(
            (sim - ana).abs() <= 1e-9 * ana.max(1.0),
            "case {case}: {sim} vs {ana}"
        );
    }
}

#[test]
fn finalize_tail_is_additive_and_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x6D_0005);
    for case in 0..60 {
        let pkts = random_packets(&mut rng, 3);
        let fin = rng.gen_f64() * 1e6;
        let grid = GridConfig::w_w_1(
            2,
            1e3,
            LinkSpec {
                bandwidth: 1e4,
                latency: 1e-6,
            },
        );
        let base = simulate(&grid, &pkts, &[0.0, 0.0]).makespan;
        let tail = simulate(&grid, &pkts, &[fin, fin]).makespan;
        assert!(tail >= base - 1e-12, "case {case}: fin {fin}");
    }
}
