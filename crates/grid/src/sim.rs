//! Virtual-time pipeline simulator.
//!
//! **Why a simulator** — the paper's figures measure wall-clock execution
//! time on a real cluster (configurations 1-1-1, 2-2-1, 4-4-1). This
//! reproduction runs on a single-CPU machine where genuine parallel
//! speedups cannot appear in wall time, so the benchmark harness executes
//! the *real* per-packet stage code to obtain work and transfer volumes and
//! then replays the pipeline schedule in virtual time here. The simulator
//! preserves exactly what the figures measure: per-stage compute, per-link
//! transfer, pipeline overlap, queueing at the bottleneck, and the w-w-1
//! transparent-copy configurations.
//!
//! The model: each host serves its packet queue FIFO; each sending host's
//! egress link serializes its transfers (latency + bytes/bandwidth). A
//! packet `p` visits stage copy `p mod w_s` at every stage (the runtime's
//! round-robin). After the last packet, each stage's finalization state
//! (reduction objects) chains through the remaining links to the view node.
//!
//! With uniform packets and width-1 stages the makespan is provably the
//! paper's closed-form `(N−1)·T(bottleneck) + Σ T(C_i) + Σ T(L_i)` — a
//! property the tests assert.

use crate::config::GridConfig;
use cgp_obs::trace::{self, ArgValue, PID_SIM};

/// Virtual seconds → trace microseconds: the simulator's timeline uses the
/// same Chrome `trace_event` format as the real runtime, with virtual time
/// scaled by 1e6 so one virtual second reads as one second in the viewer.
const VIRT_US: f64 = 1e6;

/// Work one packet induces: standard ops per stage, bytes per link, and
/// bytes read from the data stage's local storage.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketWork {
    /// Standard operations executed at each stage (len = m).
    pub comp_ops: Vec<f64>,
    /// Bytes sent over each link (len = m−1).
    pub bytes: Vec<f64>,
    /// Bytes the data stage reads from local storage for this packet
    /// (charged against the stage-0 host's `disk_bandwidth`, if any).
    pub read_bytes: f64,
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total virtual time from first packet availability to final results
    /// (including finalization transfers).
    pub makespan: f64,
    /// Makespan without the finalization tail.
    pub packets_done: f64,
    /// Busy time per (stage, copy).
    pub stage_busy: Vec<Vec<f64>>,
    /// Busy time per (stage, copy) egress link.
    pub link_busy: Vec<Vec<f64>>,
    /// Utilization (busy / makespan) of the most loaded resource.
    pub bottleneck_utilization: f64,
}

impl SimResult {
    /// The most utilized resource: `("C"|"L", stage, copy)`.
    pub fn bottleneck(&self) -> (&'static str, usize, usize) {
        let mut best = ("C", 0, 0);
        let mut val = f64::MIN;
        for (s, copies) in self.stage_busy.iter().enumerate() {
            for (c, t) in copies.iter().enumerate() {
                if *t > val {
                    val = *t;
                    best = ("C", s, c);
                }
            }
        }
        for (s, copies) in self.link_busy.iter().enumerate() {
            for (c, t) in copies.iter().enumerate() {
                if *t > val {
                    val = *t;
                    best = ("L", s, c);
                }
            }
        }
        best
    }
}

/// Simulate `packets` flowing through `grid`. `finalize_bytes[s]` is the
/// one-time end-of-work transfer out of stage `s` (reduction state /
/// assembled results); it chains stage-by-stage to the last host after that
/// stage's final packet.
pub fn simulate(grid: &GridConfig, packets: &[PacketWork], finalize_bytes: &[f64]) -> SimResult {
    let m = grid.m();
    assert!(m >= 1);
    assert!(finalize_bytes.len() >= m.saturating_sub(1) || finalize_bytes.is_empty());
    for p in packets {
        assert_eq!(p.comp_ops.len(), m, "comp_ops per stage");
        assert_eq!(p.bytes.len(), m - 1, "bytes per link");
    }
    let widths = grid.widths();

    // free[s][c] = next idle time of stage s copy c; lfree likewise for the
    // egress link of stage s copy c.
    let mut free: Vec<Vec<f64>> = widths.iter().map(|w| vec![0.0; *w]).collect();
    let mut lfree: Vec<Vec<f64>> = widths[..m - 1.min(m)]
        .iter()
        .map(|w| vec![0.0; *w])
        .collect();
    if m >= 1 {
        lfree.truncate(m - 1);
    }
    let mut stage_busy: Vec<Vec<f64>> = widths.iter().map(|w| vec![0.0; *w]).collect();
    let mut link_busy: Vec<Vec<f64>> = lfree.iter().map(|v| vec![0.0; v.len()]).collect();

    // Timeline export: each (stage, copy) and each egress link gets its own
    // virtual thread; busy intervals become 'X' events on the virtual clock.
    // One relaxed atomic load when tracing is off.
    let tracing = trace::enabled();
    let mut stage_tid: Vec<Vec<u32>> = Vec::new();
    let mut link_tid: Vec<Vec<u32>> = Vec::new();
    if tracing {
        trace::name_process(PID_SIM, "grid-sim (virtual time)");
        let mut next = 0u32;
        for (s, w) in widths.iter().enumerate() {
            let tids: Vec<u32> = (0..*w)
                .map(|c| {
                    trace::name_thread(PID_SIM, next, format!("C{s}[{c}]"));
                    next += 1;
                    next - 1
                })
                .collect();
            stage_tid.push(tids);
        }
        for (s, v) in lfree.iter().enumerate() {
            let tids: Vec<u32> = (0..v.len())
                .map(|c| {
                    trace::name_thread(PID_SIM, next, format!("L{s}[{c}]"));
                    next += 1;
                    next - 1
                })
                .collect();
            link_tid.push(tids);
        }
    }

    let mut packets_done: f64 = 0.0;
    for (p, work) in packets.iter().enumerate() {
        let mut arrive = 0.0_f64;
        for s in 0..m {
            let c = p % widths[s];
            let host = &grid.stages[s].hosts[c];
            let power = host.power;
            let mut service = work.comp_ops[s] / power;
            if s == 0 {
                if let Some(disk) = host.disk_bandwidth {
                    service += work.read_bytes / disk;
                }
            }
            let start = arrive.max(free[s][c]);
            let done = start + service;
            free[s][c] = done;
            stage_busy[s][c] += service;
            if tracing {
                trace::complete(
                    format!("pkt{p}"),
                    "sim-stage",
                    start * VIRT_US,
                    service * VIRT_US,
                    PID_SIM,
                    stage_tid[s][c],
                    vec![
                        ("ops", ArgValue::from(work.comp_ops[s])),
                        ("wait_virt_s", ArgValue::from(start - arrive)),
                    ],
                );
            }
            arrive = done;
            if s < m - 1 {
                let link = grid.links[s];
                let xfer = link.latency + work.bytes[s] / link.bandwidth;
                let lstart = arrive.max(lfree[s][c]);
                let ldone = lstart + xfer;
                lfree[s][c] = ldone;
                link_busy[s][c] += xfer;
                if tracing {
                    trace::complete(
                        format!("pkt{p}"),
                        "sim-link",
                        lstart * VIRT_US,
                        xfer * VIRT_US,
                        PID_SIM,
                        link_tid[s][c],
                        vec![("bytes", ArgValue::from(work.bytes[s]))],
                    );
                }
                arrive = ldone;
            }
        }
        packets_done = packets_done.max(arrive);
    }

    // Finalization: each stage copy's end-of-work state flows to the next
    // stage (copy 0) and onward; the view host can only finish after every
    // chain arrives.
    let mut makespan = packets_done;
    if m >= 2 && !finalize_bytes.is_empty() {
        for s in 0..m - 1 {
            for c in 0..widths[s] {
                let mut t = free[s][c];
                for l in s..m - 1 {
                    let link = grid.links[l];
                    let fb = finalize_bytes.get(l).copied().unwrap_or(0.0);
                    let xfer = link.latency + fb / link.bandwidth;
                    if tracing {
                        trace::complete(
                            format!("finalize C{s}[{c}]"),
                            "sim-finalize",
                            t * VIRT_US,
                            xfer * VIRT_US,
                            PID_SIM,
                            link_tid[l][c % link_tid[l].len()],
                            vec![("bytes", ArgValue::from(fb))],
                        );
                    }
                    t += xfer;
                }
                makespan = makespan.max(t);
            }
        }
    }

    let mut util = 0.0_f64;
    if makespan > 0.0 {
        for copies in stage_busy.iter().chain(link_busy.iter()) {
            for b in copies {
                util = util.max(b / makespan);
            }
        }
    }

    SimResult {
        makespan,
        packets_done,
        stage_busy,
        link_busy,
        bottleneck_utilization: util,
    }
}

/// The paper's closed-form total time for uniform packets on a width-1
/// chain: `(N−1)·T(bottleneck) + Σ T(C_i) + Σ T(L_i)` (Section 4.3),
/// generalized to width-w stages by dividing each stage/link per-packet
/// time by its width (w copies drain w packets per cycle).
pub fn analytic_total_time(grid: &GridConfig, per_packet: &PacketWork, n_packets: u64) -> f64 {
    let m = grid.m();
    let widths = grid.widths();
    let mut fill = 0.0;
    let mut bottleneck = 0.0_f64;
    for (s, stage) in grid.stages.iter().enumerate() {
        let host = &stage.hosts[0];
        let mut t = per_packet.comp_ops[s] / host.power;
        if s == 0 {
            if let Some(disk) = host.disk_bandwidth {
                t += per_packet.read_bytes / disk;
            }
        }
        fill += t;
        bottleneck = bottleneck.max(t / widths[s] as f64);
    }
    for (l, link) in grid.links.iter().enumerate().take(m - 1) {
        let t = link.latency + per_packet.bytes[l] / link.bandwidth;
        fill += t;
        bottleneck = bottleneck.max(t / widths[l] as f64);
    }
    (n_packets.saturating_sub(1)) as f64 * bottleneck + fill
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GridConfig, LinkSpec};

    fn uniform_packets(n: usize, ops: &[f64], bytes: &[f64]) -> Vec<PacketWork> {
        (0..n)
            .map(|_| PacketWork {
                comp_ops: ops.to_vec(),
                bytes: bytes.to_vec(),
                read_bytes: 0.0,
            })
            .collect()
    }

    #[test]
    fn single_stage_sums_service_times() {
        let g = GridConfig::uniform_chain(
            1,
            10.0,
            LinkSpec {
                bandwidth: 1.0,
                latency: 0.0,
            },
        );
        let r = simulate(&g, &uniform_packets(5, &[20.0], &[]), &[]);
        assert!((r.makespan - 5.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn chain_matches_paper_formula_exactly() {
        // Uniform packets, width-1 chain → DES must equal the closed form.
        let link = LinkSpec {
            bandwidth: 100.0,
            latency: 0.01,
        };
        let g = GridConfig::uniform_chain(3, 10.0, link);
        let work = PacketWork {
            comp_ops: vec![5.0, 30.0, 10.0],
            bytes: vec![200.0, 50.0],
            read_bytes: 0.0,
        };
        for n in [1usize, 2, 10, 100] {
            let r = simulate(&g, &uniform_packets(n, &work.comp_ops, &work.bytes), &[]);
            let analytic = analytic_total_time(&g, &work, n as u64);
            assert!(
                (r.makespan - analytic).abs() < 1e-9 * analytic,
                "n={n}: sim {} vs analytic {analytic}",
                r.makespan
            );
        }
    }

    #[test]
    fn bottleneck_detection() {
        let link = LinkSpec {
            bandwidth: 10.0,
            latency: 0.0,
        };
        let g = GridConfig::uniform_chain(2, 100.0, link);
        // link carries 100 bytes → 10 s per packet, compute 1 s → link-bound
        let r = simulate(&g, &uniform_packets(10, &[100.0, 100.0], &[100.0]), &[]);
        assert_eq!(r.bottleneck().0, "L");
        assert!(r.bottleneck_utilization > 0.9);
    }

    #[test]
    fn widening_the_pipeline_gives_near_linear_speedup() {
        // Compute-bound: stage 2 dominates → width w divides its throughput.
        let link = LinkSpec {
            bandwidth: 1e9,
            latency: 0.0,
        };
        let n = 64;
        let work = (vec![1.0, 1000.0, 1.0], vec![8.0, 8.0]);
        let t1 = simulate(
            &GridConfig::w_w_1(1, 1e3, link),
            &uniform_packets(n, &work.0, &work.1),
            &[],
        )
        .makespan;
        let t2 = simulate(
            &GridConfig::w_w_1(2, 1e3, link),
            &uniform_packets(n, &work.0, &work.1),
            &[],
        )
        .makespan;
        let t4 = simulate(
            &GridConfig::w_w_1(4, 1e3, link),
            &uniform_packets(n, &work.0, &work.1),
            &[],
        )
        .makespan;
        let s2 = t1 / t2;
        let s4 = t1 / t4;
        assert!(s2 > 1.8 && s2 <= 2.001, "speedup2 = {s2}");
        assert!(s4 > 3.4 && s4 <= 4.001, "speedup4 = {s4}");
    }

    #[test]
    fn heterogeneous_packets_queue_at_bottleneck() {
        let link = LinkSpec {
            bandwidth: 1e6,
            latency: 0.0,
        };
        let g = GridConfig::uniform_chain(2, 1.0, link);
        // second packet is heavy at stage 0; third must wait behind it
        let packets = vec![
            PacketWork {
                comp_ops: vec![1.0, 1.0],
                bytes: vec![0.0],
                read_bytes: 0.0,
            },
            PacketWork {
                comp_ops: vec![10.0, 1.0],
                bytes: vec![0.0],
                read_bytes: 0.0,
            },
            PacketWork {
                comp_ops: vec![1.0, 1.0],
                bytes: vec![0.0],
                read_bytes: 0.0,
            },
        ];
        let r = simulate(&g, &packets, &[]);
        // stage0: 1, then 11, then 12; stage1 finishes at 13
        assert!((r.makespan - 13.0).abs() < 1e-12, "{}", r.makespan);
    }

    #[test]
    fn finalize_tail_extends_makespan() {
        let link = LinkSpec {
            bandwidth: 10.0,
            latency: 0.0,
        };
        let g = GridConfig::uniform_chain(3, 1.0, link);
        let pkts = uniform_packets(2, &[1.0, 1.0, 1.0], &[0.0, 0.0]);
        let base = simulate(&g, &pkts, &[]).makespan;
        let with_tail = simulate(&g, &pkts, &[100.0, 100.0]).makespan;
        assert!(with_tail > base + 9.9, "base {base} tail {with_tail}");
    }

    #[test]
    fn utilization_bounded_by_one() {
        let g = GridConfig::paper_cluster(2);
        let pkts = uniform_packets(32, &[1e6, 5e6, 1e5], &[1e4, 1e3]);
        let r = simulate(&g, &pkts, &[1e3, 1e3]);
        assert!(r.bottleneck_utilization <= 1.0 + 1e-9);
        assert!(r.bottleneck_utilization > 0.0);
    }

    #[test]
    fn zero_packets_is_zero_time() {
        let g = GridConfig::uniform_chain(
            2,
            1.0,
            LinkSpec {
                bandwidth: 1.0,
                latency: 0.0,
            },
        );
        let r = simulate(&g, &[], &[]);
        assert_eq!(r.makespan, 0.0);
    }
}
