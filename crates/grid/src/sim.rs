//! Virtual-time pipeline simulator.
//!
//! **Why a simulator** — the paper's figures measure wall-clock execution
//! time on a real cluster (configurations 1-1-1, 2-2-1, 4-4-1). This
//! reproduction runs on a single-CPU machine where genuine parallel
//! speedups cannot appear in wall time, so the benchmark harness executes
//! the *real* per-packet stage code to obtain work and transfer volumes and
//! then replays the pipeline schedule in virtual time here. The simulator
//! preserves exactly what the figures measure: per-stage compute, per-link
//! transfer, pipeline overlap, queueing at the bottleneck, and the w-w-1
//! transparent-copy configurations.
//!
//! The model: each host serves its packet queue FIFO; each sending host's
//! egress link serializes its transfers (latency + bytes/bandwidth). A
//! packet `p` visits stage copy `p mod w_s` at every stage (the runtime's
//! round-robin). After the last packet, each stage's finalization state
//! (reduction objects) chains through the remaining links to the view node.
//!
//! With uniform packets and width-1 stages the makespan is provably the
//! paper's closed-form `(N−1)·T(bottleneck) + Σ T(C_i) + Σ T(L_i)` — a
//! property the tests assert.

use crate::config::GridConfig;
use cgp_obs::trace::{self, ArgValue, PID_SIM};

/// Virtual seconds → trace microseconds: the simulator's timeline uses the
/// same Chrome `trace_event` format as the real runtime, with virtual time
/// scaled by 1e6 so one virtual second reads as one second in the viewer.
const VIRT_US: f64 = 1e6;

/// Work one packet induces: standard ops per stage, bytes per link, and
/// bytes read from the data stage's local storage.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketWork {
    /// Standard operations executed at each stage (len = m).
    pub comp_ops: Vec<f64>,
    /// Bytes sent over each link (len = m−1).
    pub bytes: Vec<f64>,
    /// Bytes the data stage reads from local storage for this packet
    /// (charged against the stage-0 host's `disk_bandwidth`, if any).
    pub read_bytes: f64,
}

/// A simulated failure of one stage copy's host at a virtual time.
/// From `at` onward the copy accepts no new packets; a packet it could
/// not finish before `at` is re-executed on a surviving copy.
#[derive(Debug, Clone, PartialEq)]
pub struct HostFailure {
    pub stage: usize,
    pub copy: usize,
    /// Virtual time at which the host dies.
    pub at: f64,
}

/// Failure scenario for [`simulate_with_failures`]: what-if analysis of
/// the transparent-copy redundancy the runtime's panic isolation relies
/// on (a dead copy's packets reroute to its siblings; a stage with no
/// surviving copy drops packets).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureSpec {
    pub hosts: Vec<HostFailure>,
}

impl FailureSpec {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn host(mut self, stage: usize, copy: usize, at: f64) -> Self {
        self.hosts.push(HostFailure { stage, copy, at });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }
}

/// Recovery semantics for [`simulate_recovering`]: the simulator's model
/// of the runtime's checkpoint/replay protocol. A dead copy's reduction
/// state restores from its last committed checkpoint onto a surviving
/// sibling (so it is not lost), and the packets it served since that
/// commit re-execute on the adopter at the adopter's speed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySpec {
    /// Packets between checkpoint commits (clamped to ≥ 1). On a death,
    /// `served % checkpoint_every` packets replay on the adopter.
    pub checkpoint_every: u64,
    /// When a stage loses *every* copy, adopt its work onto the most
    /// powerful surviving host of another stage (the cost model's pick
    /// for the merged pipeline) instead of dropping packets.
    pub failover: bool,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        RecoverySpec {
            checkpoint_every: 64,
            failover: false,
        }
    }
}

impl RecoverySpec {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_checkpoint_every(mut self, k: u64) -> Self {
        self.checkpoint_every = k.max(1);
        self
    }

    pub fn with_failover(mut self) -> Self {
        self.failover = true;
        self
    }
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total virtual time from first packet availability to final results
    /// (including finalization transfers).
    pub makespan: f64,
    /// Makespan without the finalization tail.
    pub packets_done: f64,
    /// Busy time per (stage, copy).
    pub stage_busy: Vec<Vec<f64>>,
    /// Busy time per (stage, copy) egress link.
    pub link_busy: Vec<Vec<f64>>,
    /// Utilization (busy / makespan) of the most loaded resource.
    pub bottleneck_utilization: f64,
    /// Packets that reached the last stage.
    pub completed_packets: u64,
    /// Packets re-executed on a sibling copy because their preferred copy
    /// had failed (or died mid-service).
    pub rerouted_packets: u64,
    /// Packets lost because some stage had no surviving copy.
    pub dropped_packets: u64,
    /// End-of-work reduction states lost with failed copies (their
    /// finalize chains never reach the view host).
    pub lost_states: u64,
    /// Packets re-executed from the last checkpoint after a death
    /// (always 0 outside [`simulate_recovering`]).
    pub replayed_packets: u64,
    /// Dead copies whose checkpointed state was restored onto an
    /// adopter instead of being lost (always 0 outside
    /// [`simulate_recovering`]).
    pub restored_states: u64,
    /// Stages whose work was adopted by another stage's host after all
    /// their copies died (always 0 outside [`simulate_recovering`]).
    pub failover_events: u64,
}

impl SimResult {
    /// The most utilized resource: `("C"|"L", stage, copy)`.
    pub fn bottleneck(&self) -> (&'static str, usize, usize) {
        let mut best = ("C", 0, 0);
        let mut val = f64::MIN;
        for (s, copies) in self.stage_busy.iter().enumerate() {
            for (c, t) in copies.iter().enumerate() {
                if *t > val {
                    val = *t;
                    best = ("C", s, c);
                }
            }
        }
        for (s, copies) in self.link_busy.iter().enumerate() {
            for (c, t) in copies.iter().enumerate() {
                if *t > val {
                    val = *t;
                    best = ("L", s, c);
                }
            }
        }
        best
    }
}

/// Simulate `packets` flowing through `grid`. `finalize_bytes[s]` is the
/// one-time end-of-work transfer out of stage `s` (reduction state /
/// assembled results); it chains stage-by-stage to the last host after that
/// stage's final packet.
pub fn simulate(grid: &GridConfig, packets: &[PacketWork], finalize_bytes: &[f64]) -> SimResult {
    simulate_with_failures(grid, packets, finalize_bytes, &FailureSpec::default())
}

/// [`simulate`] under a failure scenario. A packet routes to its
/// round-robin copy unless that copy cannot finish it before dying, in
/// which case the next surviving sibling (in copy order) re-executes it;
/// a stage with no copy able to take a packet drops it, and downstream
/// stages never see it. A transfer in flight when its sender dies is
/// assumed delivered (store-and-forward). A copy that dies during the
/// run loses its accumulated reduction state ([`SimResult::lost_states`]);
/// failures after the last packet are inert.
pub fn simulate_with_failures(
    grid: &GridConfig,
    packets: &[PacketWork],
    finalize_bytes: &[f64],
    failures: &FailureSpec,
) -> SimResult {
    simulate_core(grid, packets, finalize_bytes, failures, None)
}

/// [`simulate_with_failures`] under the runtime's recovery protocol: dead
/// copies restore their checkpointed reduction state onto a surviving
/// sibling (replaying `served % checkpoint_every` packets at the
/// adopter's speed), and — with [`RecoverySpec::failover`] — a stage with
/// no survivor at all is adopted by the most powerful surviving host of
/// another stage, so the run still completes every packet.
pub fn simulate_recovering(
    grid: &GridConfig,
    packets: &[PacketWork],
    finalize_bytes: &[f64],
    failures: &FailureSpec,
    recovery: &RecoverySpec,
) -> SimResult {
    simulate_core(grid, packets, finalize_bytes, failures, Some(recovery))
}

fn simulate_core(
    grid: &GridConfig,
    packets: &[PacketWork],
    finalize_bytes: &[f64],
    failures: &FailureSpec,
    recovery: Option<&RecoverySpec>,
) -> SimResult {
    let m = grid.m();
    assert!(m >= 1);
    assert!(finalize_bytes.len() >= m.saturating_sub(1) || finalize_bytes.is_empty());
    for p in packets {
        assert_eq!(p.comp_ops.len(), m, "comp_ops per stage");
        assert_eq!(p.bytes.len(), m - 1, "bytes per link");
    }
    let widths = grid.widths();

    // free[s][c] = next idle time of stage s copy c; lfree likewise for the
    // egress link of stage s copy c.
    let mut free: Vec<Vec<f64>> = widths.iter().map(|w| vec![0.0; *w]).collect();
    let mut lfree: Vec<Vec<f64>> = widths[..m - 1.min(m)]
        .iter()
        .map(|w| vec![0.0; *w])
        .collect();
    if m >= 1 {
        lfree.truncate(m - 1);
    }
    let mut stage_busy: Vec<Vec<f64>> = widths.iter().map(|w| vec![0.0; *w]).collect();
    let mut link_busy: Vec<Vec<f64>> = lfree.iter().map(|v| vec![0.0; v.len()]).collect();

    // fail_at[s][c] = earliest declared death of that stage copy's host.
    let mut fail_at: Vec<Vec<Option<f64>>> = widths.iter().map(|w| vec![None; *w]).collect();
    for f in &failures.hosts {
        assert!(
            f.stage < m && f.copy < widths[f.stage],
            "failure target C{}[{}] out of range",
            f.stage,
            f.copy
        );
        let slot = &mut fail_at[f.stage][f.copy];
        *slot = Some(slot.map_or(f.at, |t: f64| t.min(f.at)));
    }

    // Recovery bookkeeping (untouched when `recovery` is None so the
    // plain failure path stays bitwise identical): packets served per
    // copy since the run began, which deaths have been restored, and the
    // adoptive host of each fully-dead stage.
    let mut served: Vec<Vec<u64>> = widths.iter().map(|w| vec![0u64; *w]).collect();
    let mut restored: Vec<Vec<bool>> = widths.iter().map(|w| vec![false; *w]).collect();
    let mut death_handled: Vec<Vec<bool>> = widths.iter().map(|w| vec![false; *w]).collect();
    let mut adopted_stage: Vec<Option<(usize, usize)>> = vec![None; m];
    let mut replayed_packets = 0u64;
    let mut restored_states = 0u64;
    let mut failover_events = 0u64;

    // Timeline export: each (stage, copy) and each egress link gets its own
    // virtual thread; busy intervals become 'X' events on the virtual clock.
    // One relaxed atomic load when tracing is off.
    let tracing = trace::enabled();
    let mut stage_tid: Vec<Vec<u32>> = Vec::new();
    let mut link_tid: Vec<Vec<u32>> = Vec::new();
    if tracing {
        trace::name_process(PID_SIM, "grid-sim (virtual time)");
        let mut next = 0u32;
        for (s, w) in widths.iter().enumerate() {
            let tids: Vec<u32> = (0..*w)
                .map(|c| {
                    trace::name_thread(PID_SIM, next, format!("C{s}[{c}]"));
                    next += 1;
                    next - 1
                })
                .collect();
            stage_tid.push(tids);
        }
        for (s, v) in lfree.iter().enumerate() {
            let tids: Vec<u32> = (0..v.len())
                .map(|c| {
                    trace::name_thread(PID_SIM, next, format!("L{s}[{c}]"));
                    next += 1;
                    next - 1
                })
                .collect();
            link_tid.push(tids);
        }
    }

    if tracing {
        for (s, copies) in fail_at.iter().enumerate() {
            for (c, at) in copies.iter().enumerate() {
                if let Some(at) = at {
                    trace::complete(
                        format!("HOST FAILURE C{s}[{c}]"),
                        "sim-failure",
                        at * VIRT_US,
                        0.0,
                        PID_SIM,
                        stage_tid[s][c],
                        vec![],
                    );
                }
            }
        }
    }

    let mut packets_done: f64 = 0.0;
    let mut completed_packets = 0u64;
    let mut rerouted_packets = 0u64;
    let mut dropped_packets = 0u64;
    for (p, work) in packets.iter().enumerate() {
        // Per-packet service time of stage `sw`'s work on host (sh, ch)
        // (the host differs from the stage under failover adoption).
        let svc = |sw: usize, sh: usize, ch: usize| {
            let host = &grid.stages[sh].hosts[ch];
            let mut service = work.comp_ops[sw] / host.power;
            if sw == 0 {
                if let Some(disk) = host.disk_bandwidth {
                    service += work.read_bytes / disk;
                }
            }
            service
        };
        let mut arrive = 0.0_f64;
        let mut completed = true;
        let mut rerouted = false;
        for s in 0..m {
            // Recovery: the first time a copy's death bites, restore its
            // checkpointed state onto an adopter and replay the packets
            // since its last commit at the adopter's speed.
            if let Some(rec) = recovery {
                for c in 0..widths[s] {
                    if death_handled[s][c] {
                        continue;
                    }
                    let Some(at) = fail_at[s][c] else { continue };
                    let start = arrive.max(free[s][c]);
                    if start + svc(s, s, c) <= at {
                        continue; // can still serve this packet
                    }
                    death_handled[s][c] = true;
                    let target = pick_adopter(
                        grid,
                        &widths,
                        &fail_at,
                        &mut adopted_stage,
                        &mut failover_events,
                        rec.failover,
                        s,
                    );
                    if served[s][c] == 0 {
                        continue; // never served: no state to restore
                    }
                    let Some((s2, c2)) = target else { continue };
                    restored[s][c] = true;
                    restored_states += 1;
                    let replay = served[s][c] % rec.checkpoint_every.max(1);
                    if replay > 0 {
                        replayed_packets += replay;
                        let mean = stage_busy[s][c] / served[s][c] as f64;
                        let burst = replay as f64 * mean * grid.stages[s].hosts[c].power
                            / grid.stages[s2].hosts[c2].power;
                        free[s2][c2] = arrive.max(free[s2][c2]) + burst;
                        stage_busy[s2][c2] += burst;
                    }
                }
            }
            // Preferred copy is the runtime's round-robin target; on
            // failure, try siblings in copy order.
            let preferred = p % widths[s];
            let mut chosen: Option<(usize, f64, f64)> = None;
            for k in 0..widths[s] {
                let c = (preferred + k) % widths[s];
                let service = svc(s, s, c);
                let start = arrive.max(free[s][c]);
                if let Some(at) = fail_at[s][c] {
                    if start + service > at {
                        continue; // dead, or would die mid-service
                    }
                }
                if k > 0 {
                    rerouted = true;
                }
                chosen = Some((c, start, service));
                break;
            }
            let Some((c, start, service)) = chosen else {
                if let Some((s2, c2)) = adopted_stage[s] {
                    // Failover: the adoptive host executes this stage's
                    // work on its own timeline; the transfer still
                    // crosses this stage's link position (slot 0).
                    let service = svc(s, s2, c2);
                    let start = arrive.max(free[s2][c2]);
                    let done = start + service;
                    free[s2][c2] = done;
                    stage_busy[s2][c2] += service;
                    rerouted = true;
                    if tracing {
                        trace::complete(
                            format!("pkt{p} (failover C{s})"),
                            "sim-stage",
                            start * VIRT_US,
                            service * VIRT_US,
                            PID_SIM,
                            stage_tid[s2][c2],
                            vec![("ops", ArgValue::from(work.comp_ops[s]))],
                        );
                    }
                    arrive = done;
                    if s < m - 1 {
                        let link = grid.links[s];
                        let xfer = link.latency + work.bytes[s] / link.bandwidth;
                        let lstart = arrive.max(lfree[s][0]);
                        let ldone = lstart + xfer;
                        lfree[s][0] = ldone;
                        link_busy[s][0] += xfer;
                        if tracing {
                            trace::complete(
                                format!("pkt{p}"),
                                "sim-link",
                                lstart * VIRT_US,
                                xfer * VIRT_US,
                                PID_SIM,
                                link_tid[s][0],
                                vec![("bytes", ArgValue::from(work.bytes[s]))],
                            );
                        }
                        arrive = ldone;
                    }
                    continue;
                }
                // No surviving copy can take this packet: it is lost.
                completed = false;
                dropped_packets += 1;
                break;
            };
            let done = start + service;
            free[s][c] = done;
            stage_busy[s][c] += service;
            served[s][c] += 1;
            if tracing {
                trace::complete(
                    format!("pkt{p}"),
                    "sim-stage",
                    start * VIRT_US,
                    service * VIRT_US,
                    PID_SIM,
                    stage_tid[s][c],
                    vec![
                        ("ops", ArgValue::from(work.comp_ops[s])),
                        ("wait_virt_s", ArgValue::from(start - arrive)),
                    ],
                );
            }
            arrive = done;
            if s < m - 1 {
                let link = grid.links[s];
                let xfer = link.latency + work.bytes[s] / link.bandwidth;
                let lstart = arrive.max(lfree[s][c]);
                let ldone = lstart + xfer;
                lfree[s][c] = ldone;
                link_busy[s][c] += xfer;
                if tracing {
                    trace::complete(
                        format!("pkt{p}"),
                        "sim-link",
                        lstart * VIRT_US,
                        xfer * VIRT_US,
                        PID_SIM,
                        link_tid[s][c],
                        vec![("bytes", ArgValue::from(work.bytes[s]))],
                    );
                }
                arrive = ldone;
            }
        }
        if completed {
            completed_packets += 1;
            if rerouted {
                rerouted_packets += 1;
            }
            packets_done = packets_done.max(arrive);
        }
    }

    // Recovery: restore deaths the routing loop never saw (the copy's
    // last packet was already served when it died, but its state past
    // the final checkpoint still needs replaying on an adopter before
    // finalize chains run).
    if let Some(rec) = recovery {
        for s in 0..m {
            for c in 0..widths[s] {
                if death_handled[s][c] || served[s][c] == 0 {
                    continue;
                }
                let Some(at) = fail_at[s][c] else { continue };
                if at > packets_done {
                    continue; // inert: state already shipped
                }
                death_handled[s][c] = true;
                let target = pick_adopter(
                    grid,
                    &widths,
                    &fail_at,
                    &mut adopted_stage,
                    &mut failover_events,
                    rec.failover,
                    s,
                );
                let Some((s2, c2)) = target else { continue };
                restored[s][c] = true;
                restored_states += 1;
                let replay = served[s][c] % rec.checkpoint_every.max(1);
                if replay > 0 {
                    replayed_packets += replay;
                    let mean = stage_busy[s][c] / served[s][c] as f64;
                    let burst = replay as f64 * mean * grid.stages[s].hosts[c].power
                        / grid.stages[s2].hosts[c2].power;
                    free[s2][c2] += burst;
                    stage_busy[s2][c2] += burst;
                }
            }
        }
    }

    // Finalization: each stage copy's end-of-work state flows to the next
    // stage (copy 0) and onward; the view host can only finish after every
    // chain arrives.
    let mut makespan = packets_done;
    let mut lost_states = 0u64;
    // A copy that died during the run takes its accumulated reduction
    // state with it — no finalize chain — unless recovery restored it
    // onto an adopter (the adopter's chain then carries the merged
    // state). Deaths after the last packet are inert (state already
    // shipped); idle copies had no state.
    let died_in_run = |s: usize, c: usize| {
        fail_at[s][c].is_some_and(|at| at <= packets_done) && stage_busy[s][c] > 0.0
    };
    for (s, rests) in restored.iter().enumerate() {
        for (c, &rest) in rests.iter().enumerate() {
            if died_in_run(s, c) && !rest {
                lost_states += 1;
            }
        }
    }
    if m >= 2 && !finalize_bytes.is_empty() {
        for s in 0..m - 1 {
            for c in 0..widths[s] {
                if died_in_run(s, c) {
                    continue;
                }
                let mut t = free[s][c];
                for l in s..m - 1 {
                    let link = grid.links[l];
                    let fb = finalize_bytes.get(l).copied().unwrap_or(0.0);
                    let xfer = link.latency + fb / link.bandwidth;
                    if tracing {
                        trace::complete(
                            format!("finalize C{s}[{c}]"),
                            "sim-finalize",
                            t * VIRT_US,
                            xfer * VIRT_US,
                            PID_SIM,
                            link_tid[l][c % link_tid[l].len()],
                            vec![("bytes", ArgValue::from(fb))],
                        );
                    }
                    t += xfer;
                }
                makespan = makespan.max(t);
            }
        }
        // Failover-adopted stages have no surviving copy of their own:
        // the adoptive host ships the restored state down the chain.
        for s in 0..m - 1 {
            let Some((s2, c2)) = adopted_stage[s] else {
                continue;
            };
            if !(0..widths[s]).any(|c| restored[s][c]) {
                continue;
            }
            let mut t = free[s2][c2];
            for (l, &link) in grid.links.iter().enumerate().take(m - 1).skip(s) {
                let fb = finalize_bytes.get(l).copied().unwrap_or(0.0);
                let xfer = link.latency + fb / link.bandwidth;
                if tracing {
                    trace::complete(
                        format!("finalize C{s} (failover)"),
                        "sim-finalize",
                        t * VIRT_US,
                        xfer * VIRT_US,
                        PID_SIM,
                        link_tid[l][0],
                        vec![("bytes", ArgValue::from(fb))],
                    );
                }
                t += xfer;
            }
            makespan = makespan.max(t);
        }
    }

    let mut util = 0.0_f64;
    if makespan > 0.0 {
        for copies in stage_busy.iter().chain(link_busy.iter()) {
            for b in copies {
                util = util.max(b / makespan);
            }
        }
    }

    SimResult {
        makespan,
        packets_done,
        stage_busy,
        link_busy,
        bottleneck_utilization: util,
        completed_packets,
        rerouted_packets,
        dropped_packets,
        lost_states,
        replayed_packets,
        restored_states,
        failover_events,
    }
}

/// The adopter for a dead copy of stage `s`: the strongest surviving
/// sibling, else — when failover is on — the strongest surviving host of
/// any other stage (recorded in `adopted_stage` so every packet of the
/// orphaned stage routes there; counted once per stage).
fn pick_adopter(
    grid: &GridConfig,
    widths: &[usize],
    fail_at: &[Vec<Option<f64>>],
    adopted_stage: &mut [Option<(usize, usize)>],
    failover_events: &mut u64,
    failover: bool,
    s: usize,
) -> Option<(usize, usize)> {
    let sibling = (0..widths[s])
        .filter(|&k| fail_at[s][k].is_none())
        .max_by(|&a, &b| {
            grid.stages[s].hosts[a]
                .power
                .total_cmp(&grid.stages[s].hosts[b].power)
        });
    if let Some(k) = sibling {
        return Some((s, k));
    }
    if !failover {
        return None;
    }
    if adopted_stage[s].is_none() {
        adopted_stage[s] = (0..grid.m())
            .filter(|&s2| s2 != s)
            .flat_map(|s2| (0..widths[s2]).map(move |c2| (s2, c2)))
            .filter(|&(s2, c2)| fail_at[s2][c2].is_none())
            .max_by(|&(s2, c2), &(s3, c3)| {
                grid.stages[s2].hosts[c2]
                    .power
                    .total_cmp(&grid.stages[s3].hosts[c3].power)
            });
        if adopted_stage[s].is_some() {
            *failover_events += 1;
        }
    }
    adopted_stage[s]
}

/// The paper's closed-form total time for uniform packets on a width-1
/// chain: `(N−1)·T(bottleneck) + Σ T(C_i) + Σ T(L_i)` (Section 4.3),
/// generalized to width-w stages by dividing each stage/link per-packet
/// time by its width (w copies drain w packets per cycle).
pub fn analytic_total_time(grid: &GridConfig, per_packet: &PacketWork, n_packets: u64) -> f64 {
    let m = grid.m();
    let widths = grid.widths();
    let mut fill = 0.0;
    let mut bottleneck = 0.0_f64;
    for (s, stage) in grid.stages.iter().enumerate() {
        let host = &stage.hosts[0];
        let mut t = per_packet.comp_ops[s] / host.power;
        if s == 0 {
            if let Some(disk) = host.disk_bandwidth {
                t += per_packet.read_bytes / disk;
            }
        }
        fill += t;
        bottleneck = bottleneck.max(t / widths[s] as f64);
    }
    for (l, link) in grid.links.iter().enumerate().take(m - 1) {
        let t = link.latency + per_packet.bytes[l] / link.bandwidth;
        fill += t;
        bottleneck = bottleneck.max(t / widths[l] as f64);
    }
    (n_packets.saturating_sub(1)) as f64 * bottleneck + fill
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GridConfig, LinkSpec};

    fn uniform_packets(n: usize, ops: &[f64], bytes: &[f64]) -> Vec<PacketWork> {
        (0..n)
            .map(|_| PacketWork {
                comp_ops: ops.to_vec(),
                bytes: bytes.to_vec(),
                read_bytes: 0.0,
            })
            .collect()
    }

    #[test]
    fn single_stage_sums_service_times() {
        let g = GridConfig::uniform_chain(
            1,
            10.0,
            LinkSpec {
                bandwidth: 1.0,
                latency: 0.0,
            },
        );
        let r = simulate(&g, &uniform_packets(5, &[20.0], &[]), &[]);
        assert!((r.makespan - 5.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn chain_matches_paper_formula_exactly() {
        // Uniform packets, width-1 chain → DES must equal the closed form.
        let link = LinkSpec {
            bandwidth: 100.0,
            latency: 0.01,
        };
        let g = GridConfig::uniform_chain(3, 10.0, link);
        let work = PacketWork {
            comp_ops: vec![5.0, 30.0, 10.0],
            bytes: vec![200.0, 50.0],
            read_bytes: 0.0,
        };
        for n in [1usize, 2, 10, 100] {
            let r = simulate(&g, &uniform_packets(n, &work.comp_ops, &work.bytes), &[]);
            let analytic = analytic_total_time(&g, &work, n as u64);
            assert!(
                (r.makespan - analytic).abs() < 1e-9 * analytic,
                "n={n}: sim {} vs analytic {analytic}",
                r.makespan
            );
        }
    }

    #[test]
    fn bottleneck_detection() {
        let link = LinkSpec {
            bandwidth: 10.0,
            latency: 0.0,
        };
        let g = GridConfig::uniform_chain(2, 100.0, link);
        // link carries 100 bytes → 10 s per packet, compute 1 s → link-bound
        let r = simulate(&g, &uniform_packets(10, &[100.0, 100.0], &[100.0]), &[]);
        assert_eq!(r.bottleneck().0, "L");
        assert!(r.bottleneck_utilization > 0.9);
    }

    #[test]
    fn widening_the_pipeline_gives_near_linear_speedup() {
        // Compute-bound: stage 2 dominates → width w divides its throughput.
        let link = LinkSpec {
            bandwidth: 1e9,
            latency: 0.0,
        };
        let n = 64;
        let work = (vec![1.0, 1000.0, 1.0], vec![8.0, 8.0]);
        let t1 = simulate(
            &GridConfig::w_w_1(1, 1e3, link),
            &uniform_packets(n, &work.0, &work.1),
            &[],
        )
        .makespan;
        let t2 = simulate(
            &GridConfig::w_w_1(2, 1e3, link),
            &uniform_packets(n, &work.0, &work.1),
            &[],
        )
        .makespan;
        let t4 = simulate(
            &GridConfig::w_w_1(4, 1e3, link),
            &uniform_packets(n, &work.0, &work.1),
            &[],
        )
        .makespan;
        let s2 = t1 / t2;
        let s4 = t1 / t4;
        assert!(s2 > 1.8 && s2 <= 2.001, "speedup2 = {s2}");
        assert!(s4 > 3.4 && s4 <= 4.001, "speedup4 = {s4}");
    }

    #[test]
    fn heterogeneous_packets_queue_at_bottleneck() {
        let link = LinkSpec {
            bandwidth: 1e6,
            latency: 0.0,
        };
        let g = GridConfig::uniform_chain(2, 1.0, link);
        // second packet is heavy at stage 0; third must wait behind it
        let packets = vec![
            PacketWork {
                comp_ops: vec![1.0, 1.0],
                bytes: vec![0.0],
                read_bytes: 0.0,
            },
            PacketWork {
                comp_ops: vec![10.0, 1.0],
                bytes: vec![0.0],
                read_bytes: 0.0,
            },
            PacketWork {
                comp_ops: vec![1.0, 1.0],
                bytes: vec![0.0],
                read_bytes: 0.0,
            },
        ];
        let r = simulate(&g, &packets, &[]);
        // stage0: 1, then 11, then 12; stage1 finishes at 13
        assert!((r.makespan - 13.0).abs() < 1e-12, "{}", r.makespan);
    }

    #[test]
    fn finalize_tail_extends_makespan() {
        let link = LinkSpec {
            bandwidth: 10.0,
            latency: 0.0,
        };
        let g = GridConfig::uniform_chain(3, 1.0, link);
        let pkts = uniform_packets(2, &[1.0, 1.0, 1.0], &[0.0, 0.0]);
        let base = simulate(&g, &pkts, &[]).makespan;
        let with_tail = simulate(&g, &pkts, &[100.0, 100.0]).makespan;
        assert!(with_tail > base + 9.9, "base {base} tail {with_tail}");
    }

    #[test]
    fn utilization_bounded_by_one() {
        let g = GridConfig::paper_cluster(2);
        let pkts = uniform_packets(32, &[1e6, 5e6, 1e5], &[1e4, 1e3]);
        let r = simulate(&g, &pkts, &[1e3, 1e3]);
        assert!(r.bottleneck_utilization <= 1.0 + 1e-9);
        assert!(r.bottleneck_utilization > 0.0);
    }

    #[test]
    fn no_failures_is_bitwise_identical_to_simulate() {
        let g = GridConfig::paper_cluster(2);
        let pkts = uniform_packets(32, &[1e6, 5e6, 1e5], &[1e4, 1e3]);
        let base = simulate(&g, &pkts, &[1e3, 1e3]);
        let with = simulate_with_failures(&g, &pkts, &[1e3, 1e3], &FailureSpec::new());
        assert_eq!(base, with);
        assert_eq!(base.completed_packets, 32);
        assert_eq!(base.dropped_packets, 0);
        assert_eq!(base.lost_states, 0);
    }

    #[test]
    fn dead_copy_reroutes_to_surviving_sibling() {
        let link = LinkSpec {
            bandwidth: 1e9,
            latency: 0.0,
        };
        let n = 64;
        let g = GridConfig::w_w_1(2, 1e3, link);
        let pkts = uniform_packets(n, &[1.0, 1000.0, 1.0], &[8.0, 8.0]);
        // Copy 1 of the middle stage is dead from the start: every odd
        // packet reroutes to copy 0 and the stage degrades to width 1.
        let spec = FailureSpec::new().host(1, 1, 0.0);
        let r = simulate_with_failures(&g, &pkts, &[], &spec);
        assert_eq!(r.completed_packets, n as u64);
        assert_eq!(r.dropped_packets, 0);
        assert_eq!(r.rerouted_packets, n as u64 / 2);
        assert_eq!(r.stage_busy[1][1], 0.0, "dead copy did no work");
        let healthy = simulate(&g, &pkts, &[]);
        assert!(
            r.makespan > 1.8 * healthy.makespan,
            "width-2 stage degraded to width 1: {} vs {}",
            r.makespan,
            healthy.makespan
        );
    }

    #[test]
    fn stage_with_no_survivor_drops_packets() {
        let link = LinkSpec {
            bandwidth: 1e9,
            latency: 0.0,
        };
        let g = GridConfig::uniform_chain(2, 1.0, link);
        let pkts = uniform_packets(10, &[1.0, 1.0], &[0.0]);
        // Width-1 stage 0 dies at t=5: packets that cannot finish there
        // by then are lost, and the run still terminates.
        let spec = FailureSpec::new().host(0, 0, 5.0);
        let r = simulate_with_failures(&g, &pkts, &[], &spec);
        assert_eq!(r.completed_packets, 5);
        assert_eq!(r.dropped_packets, 5);
        assert_eq!(r.lost_states, 1, "the dead copy's state is gone");
        assert!(r.makespan <= 6.0 + 1e-12);
    }

    #[test]
    fn late_failure_is_inert() {
        let g = GridConfig::paper_cluster(2);
        let pkts = uniform_packets(16, &[1e6, 5e6, 1e5], &[1e4, 1e3]);
        let base = simulate(&g, &pkts, &[1e3, 1e3]);
        let spec = FailureSpec::new().host(1, 0, base.makespan * 100.0);
        let with = simulate_with_failures(&g, &pkts, &[1e3, 1e3], &spec);
        assert_eq!(base.makespan, with.makespan);
        assert_eq!(with.lost_states, 0);
        assert_eq!(with.rerouted_packets, 0);
    }

    #[test]
    fn mid_service_death_reexecutes_on_sibling() {
        let link = LinkSpec {
            bandwidth: 1e9,
            latency: 0.0,
        };
        // Stage 0 width 2, each packet takes 10s. Copy 0 dies at t=15:
        // it finishes packet 0 (0..10) but cannot finish packet 2
        // (10..20), which reroutes to copy 1.
        let g = GridConfig::w_w_1(2, 1.0, link);
        let pkts = uniform_packets(4, &[10.0, 0.0, 0.0], &[0.0, 0.0]);
        let spec = FailureSpec::new().host(0, 0, 15.0);
        let r = simulate_with_failures(&g, &pkts, &[], &spec);
        assert_eq!(r.completed_packets, 4);
        assert_eq!(r.rerouted_packets, 1);
        assert!((r.stage_busy[0][0] - 10.0).abs() < 1e-12);
        assert!((r.stage_busy[0][1] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_without_failures_is_bitwise_identical_to_simulate() {
        let g = GridConfig::paper_cluster(2);
        let pkts = uniform_packets(32, &[1e6, 5e6, 1e5], &[1e4, 1e3]);
        let base = simulate(&g, &pkts, &[1e3, 1e3]);
        let rec = simulate_recovering(
            &g,
            &pkts,
            &[1e3, 1e3],
            &FailureSpec::new(),
            &RecoverySpec::new().with_checkpoint_every(4),
        );
        assert_eq!(base, rec);
    }

    #[test]
    fn recovery_restores_a_dead_copy_onto_its_sibling() {
        let link = LinkSpec {
            bandwidth: 1e9,
            latency: 0.0,
        };
        let n = 64;
        let g = GridConfig::w_w_1(2, 1e3, link);
        let pkts = uniform_packets(n, &[1.0, 1000.0, 1.0], &[8.0, 8.0]);
        // Middle-stage copy 1 serves packets for a while, then dies;
        // checkpoints every 4 packets bound the replay.
        let spec = FailureSpec::new().host(1, 1, 10.0);
        let rec = RecoverySpec::new().with_checkpoint_every(4);
        let r = simulate_recovering(&g, &pkts, &[8.0, 8.0], &spec, &rec);
        assert_eq!(r.completed_packets, n as u64);
        assert_eq!(r.dropped_packets, 0);
        assert_eq!(r.lost_states, 0, "checkpointed state is not lost");
        assert_eq!(r.restored_states, 1);
        assert!(
            r.replayed_packets < 4,
            "replay bounded by checkpoint_every: {}",
            r.replayed_packets
        );
        // Same scenario without recovery loses the dead copy's state.
        let base = simulate_with_failures(&g, &pkts, &[8.0, 8.0], &spec);
        assert_eq!(base.lost_states, 1);
        assert_eq!(base.restored_states, 0);
    }

    #[test]
    fn failover_adopts_a_stage_with_no_survivors() {
        let link = LinkSpec {
            bandwidth: 1e9,
            latency: 0.0,
        };
        let g = GridConfig::uniform_chain(3, 1.0, link);
        let pkts = uniform_packets(10, &[1.0, 1.0, 1.0], &[0.0, 0.0]);
        // The only copy of interior stage 1 dies mid-run. Without
        // failover the remaining packets drop ...
        let spec = FailureSpec::new().host(1, 0, 5.0);
        let base = simulate_recovering(&g, &pkts, &[], &spec, &RecoverySpec::new());
        assert!(base.dropped_packets > 0);
        // ... with failover another host adopts the stage and every
        // packet completes, at the cost of a longer makespan.
        let rec = RecoverySpec::new().with_checkpoint_every(2).with_failover();
        let r = simulate_recovering(&g, &pkts, &[], &spec, &rec);
        assert_eq!(r.completed_packets, 10);
        assert_eq!(r.dropped_packets, 0);
        assert_eq!(r.failover_events, 1);
        assert_eq!(r.restored_states, 1);
        assert_eq!(r.lost_states, 0);
        let healthy = simulate(&g, &pkts, &[]);
        assert!(r.makespan >= healthy.makespan);
    }

    #[test]
    fn late_death_is_inert_under_recovery_too() {
        let g = GridConfig::paper_cluster(2);
        let pkts = uniform_packets(16, &[1e6, 5e6, 1e5], &[1e4, 1e3]);
        let base = simulate(&g, &pkts, &[1e3, 1e3]);
        let spec = FailureSpec::new().host(1, 0, base.makespan * 100.0);
        let r = simulate_recovering(&g, &pkts, &[1e3, 1e3], &spec, &RecoverySpec::new());
        assert_eq!(r.makespan, base.makespan);
        assert_eq!(r.restored_states, 0);
        assert_eq!(r.replayed_packets, 0);
    }

    #[test]
    fn zero_packets_is_zero_time() {
        let g = GridConfig::uniform_chain(
            2,
            1.0,
            LinkSpec {
                bandwidth: 1.0,
                latency: 0.0,
            },
        );
        let r = simulate(&g, &[], &[]);
        assert_eq!(r.makespan, 0.0);
    }
}
