//! Phased execution: environments that change mid-run.
//!
//! The paper's future work (Section 8) names "an environment where
//! available compute and communication resources can change at runtime"
//! and "generating code that can adapt to such changes". This module
//! provides the simulation substrate for that study: a run split into
//! *phases*, each with its own grid configuration (the resource change)
//! and its own per-packet work (the decomposition in force). Switching
//! decompositions drains the pipeline and pays a redeployment penalty.

use crate::config::GridConfig;
use crate::sim::{simulate, PacketWork, SimResult};

/// One phase: an environment plus the packets processed during it.
#[derive(Debug, Clone)]
pub struct Phase {
    pub grid: GridConfig,
    pub packets: Vec<PacketWork>,
}

/// Result of a phased run.
#[derive(Debug, Clone)]
pub struct PhasedResult {
    pub makespan: f64,
    pub per_phase: Vec<SimResult>,
}

/// Simulate phases back to back. Between consecutive phases the pipeline
/// drains (the phase boundary is a barrier) and `switch_penalty` seconds
/// are charged when the *decomposition* changes (filter redeployment);
/// resource-only changes are free.
///
/// `switches[i]` says whether a redeployment happens entering phase `i+1`.
pub fn simulate_phased(
    phases: &[Phase],
    switches: &[bool],
    switch_penalty: f64,
    finalize_bytes: &[f64],
) -> PhasedResult {
    assert!(!phases.is_empty());
    assert_eq!(switches.len(), phases.len().saturating_sub(1));
    let mut makespan = 0.0;
    let mut per_phase = Vec::with_capacity(phases.len());
    for (i, phase) in phases.iter().enumerate() {
        // Only the final phase carries the end-of-work reduction transfer.
        let fin: &[f64] = if i + 1 == phases.len() {
            finalize_bytes
        } else {
            &[]
        };
        let r = simulate(&phase.grid, &phase.packets, fin);
        makespan += r.makespan;
        per_phase.push(r);
        if i + 1 < phases.len() && switches[i] {
            makespan += switch_penalty;
        }
    }
    PhasedResult {
        makespan,
        per_phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkSpec;

    fn pkts(n: usize, ops: [f64; 3], bytes: [f64; 2]) -> Vec<PacketWork> {
        (0..n)
            .map(|_| PacketWork {
                comp_ops: ops.to_vec(),
                bytes: bytes.to_vec(),
                read_bytes: 0.0,
            })
            .collect()
    }

    #[test]
    fn phases_add_up() {
        let link = LinkSpec {
            bandwidth: 1e6,
            latency: 0.0,
        };
        let g = GridConfig::w_w_1(1, 1e3, link);
        let a = Phase {
            grid: g.clone(),
            packets: pkts(10, [1e3, 1e3, 0.0], [0.0, 0.0]),
        };
        let b = Phase {
            grid: g.clone(),
            packets: pkts(10, [1e3, 1e3, 0.0], [0.0, 0.0]),
        };
        let one = simulate(&g, &a.packets, &[]).makespan;
        let r = simulate_phased(&[a, b], &[false], 5.0, &[]);
        assert!((r.makespan - 2.0 * one).abs() < 1e-9);
        let r2 = simulate_phased(
            &[
                Phase {
                    grid: g.clone(),
                    packets: pkts(10, [1e3, 1e3, 0.0], [0.0, 0.0]),
                },
                Phase {
                    grid: g,
                    packets: pkts(10, [1e3, 1e3, 0.0], [0.0, 0.0]),
                },
            ],
            &[true],
            5.0,
            &[],
        );
        assert!((r2.makespan - (2.0 * one + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn adapting_to_a_bandwidth_drop_pays_off() {
        // Environment: link bandwidth drops 10× halfway through.
        // Decomposition A (ship-heavy, less data-node compute) is best for
        // the fast phase; decomposition B (compute-at-source, light link)
        // is best for the slow phase. Adapting at the switch beats either
        // static choice even after the redeployment penalty.
        let fast = LinkSpec {
            bandwidth: 1e6,
            latency: 0.0,
        };
        let slow = LinkSpec {
            bandwidth: 1e5,
            latency: 0.0,
        };
        let gf = GridConfig::w_w_1(1, 1e4, fast);
        let gs = GridConfig::w_w_1(1, 1e4, slow);
        // A: little compute, big transfer — wins while the link is fast.
        // B: compute-at-source, small transfer — wins once it is slow.
        let work_a = |n| pkts(n, [5e2, 5e2, 0.0], [2e4, 0.0]);
        let work_b = |n| pkts(n, [1.5e3, 5e2, 0.0], [2e3, 0.0]);
        let n = 50;

        let static_a = simulate_phased(
            &[
                Phase {
                    grid: gf.clone(),
                    packets: work_a(n),
                },
                Phase {
                    grid: gs.clone(),
                    packets: work_a(n),
                },
            ],
            &[false],
            0.0,
            &[],
        )
        .makespan;
        let static_b = simulate_phased(
            &[
                Phase {
                    grid: gf.clone(),
                    packets: work_b(n),
                },
                Phase {
                    grid: gs.clone(),
                    packets: work_b(n),
                },
            ],
            &[false],
            0.0,
            &[],
        )
        .makespan;
        let adaptive = simulate_phased(
            &[
                Phase {
                    grid: gf,
                    packets: work_a(n),
                },
                Phase {
                    grid: gs,
                    packets: work_b(n),
                },
            ],
            &[true],
            0.05,
            &[],
        )
        .makespan;
        assert!(
            adaptive < static_a && adaptive < static_b,
            "adaptive {adaptive} vs static A {static_a} / B {static_b}"
        );
    }

    #[test]
    fn finalize_only_at_the_last_phase() {
        let link = LinkSpec {
            bandwidth: 1e3,
            latency: 0.0,
        };
        let g = GridConfig::w_w_1(1, 1e6, link);
        let phases = vec![
            Phase {
                grid: g.clone(),
                packets: pkts(2, [1.0, 1.0, 0.0], [0.0, 0.0]),
            },
            Phase {
                grid: g,
                packets: pkts(2, [1.0, 1.0, 0.0], [0.0, 0.0]),
            },
        ];
        let with_fin = simulate_phased(&phases, &[false], 0.0, &[1e3, 1e3]);
        // The tail (2 links × 1 s each) appears once, not per phase.
        let without = simulate_phased(&phases, &[false], 0.0, &[]);
        let delta = with_fin.makespan - without.makespan;
        assert!((1.9..2.3).contains(&delta), "tail delta {delta}");
    }
}
