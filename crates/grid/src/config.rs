//! Grid environment descriptions: hosts, links, and the paper's pipeline
//! configurations (Section 6.2).
//!
//! The paper's experiments use a cluster of 700 MHz Pentium nodes on
//! Myrinet, arranged in three pipeline stages: data nodes → compute nodes →
//! one view node, in widths 1-1-1, 2-2-1, and 4-4-1. We model a host by its
//! computing power (standard ops per second) and a link by bandwidth and
//! latency.

/// A computing host.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    pub name: String,
    /// Standard operations per second.
    pub power: f64,
    /// Local storage bandwidth (bytes/s) for packets' `read_bytes`; `None`
    /// models memory-resident data (reads are part of measured compute).
    pub disk_bandwidth: Option<f64>,
}

/// A network link (one host's egress toward the next stage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Bytes per second.
    pub bandwidth: f64,
    /// Seconds per message.
    pub latency: f64,
}

/// One pipeline stage: `hosts.len()` transparent copies.
#[derive(Debug, Clone, PartialEq)]
pub struct StageResources {
    pub hosts: Vec<HostSpec>,
}

impl StageResources {
    pub fn width(&self) -> usize {
        self.hosts.len()
    }
}

/// A full pipeline environment: stages and the links between consecutive
/// stages (one spec per stage boundary; each sending host gets its own
/// egress at that spec).
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    pub stages: Vec<StageResources>,
    pub links: Vec<LinkSpec>,
}

impl GridConfig {
    /// Number of pipeline stages.
    pub fn m(&self) -> usize {
        self.stages.len()
    }

    /// Stage widths, e.g. `[4, 4, 1]`.
    pub fn widths(&self) -> Vec<usize> {
        self.stages.iter().map(StageResources::width).collect()
    }

    /// The paper's `w-w-1` configuration: `w` data nodes, `w` compute
    /// nodes, one view node, uniform host power and link spec.
    pub fn w_w_1(w: usize, power: f64, link: LinkSpec) -> GridConfig {
        assert!(w >= 1);
        let mk = |prefix: &str, count: usize| StageResources {
            hosts: (0..count)
                .map(|i| HostSpec {
                    name: format!("{prefix}{i}"),
                    power,
                    disk_bandwidth: None,
                })
                .collect(),
        };
        GridConfig {
            stages: vec![mk("data", w), mk("compute", w), mk("view", 1)],
            links: vec![link, link],
        }
    }

    /// Give every data-stage (stage 0) host a local disk of `bandwidth`
    /// bytes/s; packets' `read_bytes` are then charged against it.
    pub fn with_stage0_disk(mut self, bandwidth: f64) -> GridConfig {
        for h in &mut self.stages[0].hosts {
            h.disk_bandwidth = Some(bandwidth);
        }
        self
    }

    /// A uniform `m`-stage width-1 pipeline (decomposition experiments).
    pub fn uniform_chain(m: usize, power: f64, link: LinkSpec) -> GridConfig {
        assert!(m >= 1);
        GridConfig {
            stages: (0..m)
                .map(|i| StageResources {
                    hosts: vec![HostSpec {
                        name: format!("c{i}"),
                        power,
                        disk_bandwidth: None,
                    }],
                })
                .collect(),
            links: vec![link; m.saturating_sub(1)],
        }
    }

    /// Reference environment mirroring the paper's testbed scale:
    /// 700 MHz-class nodes (~7·10⁸ standard ops/s) on Myrinet-class links
    /// (~100 MB/s, 20 µs latency).
    pub fn paper_cluster(w: usize) -> GridConfig {
        GridConfig::w_w_1(
            w,
            7.0e8,
            LinkSpec {
                bandwidth: 1.0e8,
                latency: 2.0e-5,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w_w_1_shapes() {
        for w in [1usize, 2, 4] {
            let g = GridConfig::paper_cluster(w);
            assert_eq!(g.widths(), vec![w, w, 1]);
            assert_eq!(g.m(), 3);
            assert_eq!(g.links.len(), 2);
        }
    }

    #[test]
    fn uniform_chain_shape() {
        let g = GridConfig::uniform_chain(
            4,
            1e9,
            LinkSpec {
                bandwidth: 1e8,
                latency: 0.0,
            },
        );
        assert_eq!(g.widths(), vec![1, 1, 1, 1]);
        assert_eq!(g.links.len(), 3);
        assert_eq!(g.stages[2].hosts[0].name, "c2");
    }
}
