//! # cgp-grid — simulated grid environment
//!
//! The paper evaluates on a real cluster (700 MHz Pentium nodes, Myrinet)
//! in pipeline configurations 1-1-1, 2-2-1 and 4-4-1 (data nodes → compute
//! nodes → view node). This crate substitutes that testbed with:
//!
//! - [`config`] — host/link/pipeline environment descriptions, including
//!   the paper's `w-w-1` configurations;
//! - [`sim`] — a virtual-time pipeline simulator that replays per-packet
//!   work (measured by actually running the application stages) through
//!   the configured pipeline, preserving overlap, queueing, bottleneck
//!   structure and transparent-copy parallelism, plus the paper's
//!   closed-form total-time formula for cross-checking.

pub mod adaptive;
pub mod config;
pub mod sim;

pub use adaptive::{simulate_phased, Phase, PhasedResult};
pub use config::{GridConfig, HostSpec, LinkSpec, StageResources};
pub use sim::{
    analytic_total_time, simulate, simulate_recovering, simulate_with_failures, FailureSpec,
    HostFailure, PacketWork, RecoverySpec, SimResult,
};
