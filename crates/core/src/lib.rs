//! # cgp-core — coarse-grained pipelined parallelism, end to end
//!
//! Facade over the reproduction of *"Compiler Support for Exploiting
//! Coarse-Grained Pipelined Parallelism"* (Du, Ferreira, Agrawal — SC 2003):
//!
//! - **compile** a dialect program ([`compile`], from `cgp-compiler`):
//!   boundary analysis → Gen/Cons → ReqComm → cost model → DP
//!   decomposition → packing → [`FilterPlan`];
//! - **execute** the plan: single-threaded with real packed buffers
//!   ([`run_plan_sequential`]) or on threads through the DataCutter-style
//!   runtime with transparent copies ([`run_plan_threaded`]);
//! - **evaluate**: run the native applications (`cgp-apps`) for real and
//!   replay their pipeline schedule on a simulated grid
//!   ([`simulate_variant`]) — the path that regenerates the paper's
//!   figures.
//!
//! ```
//! use cgp_core::{compile, run_plan_sequential, CompileOptions, PipelineEnv};
//! use cgp_core::lang::{HostEnv, Value};
//!
//! let src = r#"
//!     extern int n;
//!     class Sum implements Reducinterface {
//!         double total;
//!         void reduce(Sum o) { total = total + o.total; }
//!         void add(double x) { total = total + x; }
//!     }
//!     class App { void main() {
//!         RectDomain<1> all = [0 : n - 1];
//!         Sum sum = new Sum();
//!         PipelinedLoop (pkt in all; 4) {
//!             foreach (i in pkt) { sum.add(toDouble(i)); }
//!         }
//!         print(sum.total);
//!     } }
//! "#;
//! let opts = CompileOptions::new(PipelineEnv::uniform(2, 1e8, 1e7, 1e-5), 16)
//!     .with_symbol("n", 64);
//! let compiled = compile(src, &opts).unwrap();
//! let host = HostEnv::new().bind("n", Value::Int(64));
//! let out = run_plan_sequential(&compiled.plan, &host).unwrap();
//! assert_eq!(out, vec!["2016"]);
//! ```

pub mod codec;
pub mod error;
pub mod exec;
pub mod sim;

pub use cgp_compiler::cost::{FilterEngine, LinkClass, PipelineEnv};
pub use cgp_compiler::{
    compile, run_plan_sequential, CompileOptions, Compiled, Decomposition, FilterPlan, Objective,
};
pub use error::CoreError;
pub use exec::{
    run_plan_threaded, run_plan_threaded_opts, run_plan_threaded_stats, run_plan_worker,
    run_plan_worker_io, ExecOptions, HostBuilder, NetRole, WorkerIngress,
};
pub use sim::{
    paper_grid, paper_grid_disk, simulate_variant, VariantRun, CALIBRATION, DISK_BANDWIDTH,
    LINK_BANDWIDTH, PENTIUM_SLOWDOWN,
};

/// Re-exports of the underlying crates for applications that need them.
pub mod lang {
    pub use cgp_lang::interp::{split_domain, HostEnv, Interp};
    pub use cgp_lang::{frontend, parse, Diagnostic, Program, TypedProgram, Value};
}
pub use cgp_apps as apps;
pub use cgp_datacutter as datacutter;
pub use cgp_grid as grid;
