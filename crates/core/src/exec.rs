//! Threaded execution of compiled filter plans on the DataCutter runtime.
//!
//! Each pipeline unit of the plan becomes one DataCutter stage; stages may
//! be *transparently copied* (`widths`). Packets travel as tagged buffers:
//!
//! - tag `0` — per-packet data, laid out by the compiler's pack layouts;
//! - tag `1` — a filter copy's reduction-variable state, shipped at
//!   end-of-work and merged downstream via each object's `reduce` method
//!   (associativity/commutativity make the merge order irrelevant).
//!
//! The source stage's copies partition the packet sequence round-robin
//! (the paper's "data available at w nodes"); interior stages receive
//! whatever the runtime's round-robin delivers. The last stage runs the
//! epilogue once every upstream copy's state has been merged.
//!
//! Interpreter values are thread-local (`Rc`-based), so each filter copy
//! rebuilds its host bindings on its own thread through the provided
//! builder — deterministic builders make every copy see the same data,
//! while the analysis guarantees only the source actually touches the
//! extern arrays per packet.

use crate::codec::{decode_state, encode_state};
use crate::error::CoreError;
use cgp_compiler::FilterPlan;
use cgp_compiler::FilterStepper;
use cgp_datacutter::{
    AutoscaleConfig, Buffer, BufferPool, CheckpointStore, FaultPlan, Filter, FilterIo,
    FilterResult, NetTuning, Pipeline, RecoveryOptions, RetryPolicy, RunStats, ShmIngress,
    StageSpec, TelemetryConfig, WorkerEndpoints,
};
use cgp_lang::interp::{split_domain, HostEnv};
use cgp_obs::metrics::MetricsRegistry;
use cgp_obs::telemetry::{TelemetrySampler, STATUS_EVERY_ENV, TELEMETRY_LOG_ENV};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const TAG_DATA: u8 = 0;
const TAG_REDUCTION: u8 = 1;

/// Default stream batch: packets moved per lock acquisition. Chosen well
/// below typical queue capacity (32) so batching never starves a
/// round-robin sibling, while amortizing most of the per-packet
/// synchronization.
const DEFAULT_BATCH: usize = 8;

/// A deterministic host-environment builder, invoked once per filter copy
/// on its own thread.
pub type HostBuilder = Arc<dyn Fn() -> HostEnv + Send + Sync>;

/// How this process participates in a run.
///
/// Distributed runs can't ship closures between processes; instead every
/// participant recompiles the same program with the same options, which
/// deterministically yields the same plan, stage names, and round-robin
/// packet routing. The role then selects which slice of the shared plan
/// this process executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetRole {
    /// Run the whole pipeline in this process (the default).
    #[default]
    Local,
    /// Run only pipeline unit `stage`, bridging its boundary streams
    /// over TCP ([`run_plan_worker`]).
    Worker(usize),
    /// Spawn one worker process per pipeline unit on this machine and
    /// collect the last stage's output (the bench harness implements
    /// this on top of [`NetRole::Worker`]).
    Launcher,
}

/// Fault-tolerance knobs for a threaded plan run, forwarded to the
/// DataCutter [`Pipeline`]: deterministic fault injection, bounded retry
/// of retryable failures, and deadline/stall watchdogs.
#[derive(Clone, Default)]
pub struct ExecOptions {
    /// Deterministic fault-injection plan (empty = no injection).
    pub faults: FaultPlan,
    /// Retry policy for retryable filter errors.
    pub retry: RetryPolicy,
    /// Hard wall-clock limit for the run.
    pub deadline: Option<Duration>,
    /// Cancel if no packet moves for this long.
    pub stall_timeout: Option<Duration>,
    /// Packets moved per stream lock acquisition (`None` = default
    /// [`DEFAULT_BATCH`]; 1 = strict per-packet synchronization).
    pub batch: Option<usize>,
    /// Enable the recovery layer: ack/replay delivery, checkpointed
    /// reduction state, and supervised copy restarts — injected faults
    /// are survived instead of surfaced (where the restart budget
    /// allows).
    pub recover: bool,
    /// Checkpoint cadence in accepted packets for stateful stages
    /// (`None` = the runtime default).
    pub checkpoint_every: Option<u64>,
    /// Mirror checkpoint commits to a JSONL audit log at this path.
    pub checkpoint_log: Option<String>,
    /// Persist checkpoint commits crash-consistently to this directory
    /// (one file per stage copy, tmp-file + atomic-rename commit), so a
    /// freshly exec'd process can read the last committed snapshots.
    pub checkpoint_dir: Option<String>,
    /// Heartbeat cadence for distributed TCP links: idle links exchange
    /// `Heartbeat` frames this often and presume a peer dead after ~4
    /// missed beats. `None` disables the liveness protocol.
    pub heartbeat: Option<Duration>,
    /// Supervised distributed run: a worker whose upstream producer dies
    /// parks the link and waits (bounded) for the supervisor to respawn
    /// it, instead of failing the run.
    pub supervised: bool,
    /// Per-stage process-restart budget for a supervising launcher.
    pub max_worker_restarts: Option<u32>,
    /// How this process participates in the run (local / worker /
    /// launcher).
    pub role: NetRole,
    /// Bind address for a worker's ingress listener (`host:port`; port 0
    /// picks a free port).
    pub listen: Option<String>,
    /// Address of the downstream worker's listener.
    pub connect: Option<String>,
    /// Sample in-flight telemetry (queue depths, busy fractions, latency
    /// percentiles) at this cadence. Telemetry is enabled whenever this,
    /// [`ExecOptions::telemetry_log`], or [`ExecOptions::telemetry_addr`]
    /// is set; the cadence defaults to 500 ms if only the latter are.
    pub status_every: Option<Duration>,
    /// Append each telemetry sample as a JSON line to this path.
    pub telemetry_log: Option<String>,
    /// Launcher aggregator address: ship each sample (and the final
    /// metrics snapshot) there as `Telemetry` frames. Best-effort — a
    /// dead aggregator never fails the run.
    pub telemetry_addr: Option<String>,
    /// Attach this registry so the run publishes its counters and
    /// latency histograms into it (callers read it post-run, e.g. for
    /// cost-model calibration).
    pub metrics: Option<Arc<Mutex<MetricsRegistry>>>,
    /// Force every same-process 1→1 link onto the mutex channel instead
    /// of the lock-free SPSC ring (`CGP_NO_RINGS=1`). Benchmarking and
    /// escape hatch; rings are on by default.
    pub no_rings: bool,
    /// Execute packet steps on the tree-walking interpreter instead of
    /// the register bytecode VM (`CGP_NO_VM=1`). Benchmarking and escape
    /// hatch; the VM is on by default and byte-identical by contract.
    pub no_vm: bool,
    /// Distributed transport between same-host workers: `None`/`"shm"`
    /// uses shared-memory rings, `"tcp"` forces loopback TCP
    /// (`CGP_TRANSPORT`). Cross-host links always use TCP.
    pub transport: Option<String>,
    /// Elastic copy-width autoscaling spec (`CGP_AUTOSCALE`): `on` for
    /// defaults, or `key=value` pairs understood by
    /// [`AutoscaleConfig::parse`] (`max`, `grow`, `shrink`, `cooldown`,
    /// `escalate`). Requires telemetry with a nonzero cadence; enabling
    /// it here turns telemetry on with the default cadence if nothing
    /// else did.
    pub autoscale: Option<String>,
    /// Override the autoscaler's copy-count ceiling (`CGP_MAX_COPIES`).
    /// Inert without [`ExecOptions::autoscale`].
    pub max_copies: Option<usize>,
    /// Pre-restart cumulative busy time per stage copy, folded into this
    /// run's probes and stats so observed busy time stays monotonic
    /// across a process restart (`busy_carry[stage][copy]`). Empty inner
    /// vectors (or a shorter outer vector) mean "no carry".
    pub busy_carry: Vec<Vec<Duration>>,
}

impl ExecOptions {
    /// Read options from the environment:
    ///
    /// - `CGP_FAULTS` — fault spec (see [`FaultPlan::parse`]);
    /// - `CGP_DEADLINE_MS` — run deadline in milliseconds;
    /// - `CGP_STALL_MS` — stall timeout in milliseconds;
    /// - `CGP_RETRIES` — max retries for retryable failures;
    /// - `CGP_BATCH` — packets per stream lock acquisition (1 disables
    ///   batching);
    /// - `CGP_RECOVER` — `1`/`true`/`on` enables the recovery layer;
    /// - `CGP_CHECKPOINT_EVERY` — checkpoint cadence in packets;
    /// - `CGP_CHECKPOINT_LOG` — JSONL audit log path for checkpoints;
    /// - `CGP_CHECKPOINT_DIR` — directory for durable (crash-consistent,
    ///   atomically renamed) per-copy checkpoint files;
    /// - `CGP_HEARTBEAT_MS` — heartbeat cadence on distributed TCP links
    ///   (`0`/unset disables the liveness protocol);
    /// - `CGP_SUPERVISED` — `1`/`true`/`on` makes a worker's ingress
    ///   lenient: a dead producer parks the link awaiting a respawn;
    /// - `CGP_MAX_WORKER_RESTARTS` — per-stage process-restart budget
    ///   for a supervising launcher;
    /// - `CGP_KILL` — deterministic self-SIGKILL spec (`stage[copy]#pkt`),
    ///   honored only in worker roles;
    /// - `CGP_ROLE` — `local` (default), `launcher`, or `worker:<stage>`;
    /// - `CGP_LISTEN` — worker ingress bind address (`host:port`);
    /// - `CGP_CONNECT` — downstream worker's listener address;
    /// - `CGP_STATUS_EVERY` — telemetry sampling cadence in milliseconds
    ///   (`0` disables in-flight sampling);
    /// - `CGP_TELEMETRY_LOG` — JSONL path for telemetry samples;
    /// - `CGP_TELEMETRY` — launcher telemetry aggregator address;
    /// - `CGP_NO_RINGS` — `1`/`true`/`on` forces mutex channels on
    ///   every 1→1 link (disables the lock-free SPSC ring);
    /// - `CGP_NO_VM` — `1`/`true`/`on` runs packet steps on the
    ///   tree-walking interpreter instead of the bytecode VM;
    /// - `CGP_TRANSPORT` — `shm` (default) or `tcp` for same-host
    ///   worker links;
    /// - `CGP_AUTOSCALE` — elastic copy-width autoscaling: `on` for
    ///   defaults or `key=value` pairs (`max`, `grow`, `shrink`,
    ///   `cooldown`, `escalate`); `0`/`off`/empty disables;
    /// - `CGP_MAX_COPIES` — autoscaler copy-count ceiling (inert
    ///   without `CGP_AUTOSCALE`).
    pub fn from_env() -> Result<ExecOptions, CoreError> {
        let mut opts = ExecOptions::default();
        if let Ok(spec) = std::env::var("CGP_FAULTS") {
            opts.faults = FaultPlan::parse(&spec)
                .map_err(|e| CoreError::Config(format!("CGP_FAULTS: {e}")))?;
        }
        let ms = |var: &str| -> Result<Option<u64>, CoreError> {
            match std::env::var(var) {
                Ok(v) => v
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| CoreError::Config(format!("{var}: not a number: {v}"))),
                Err(_) => Ok(None),
            }
        };
        opts.deadline = ms("CGP_DEADLINE_MS")?.map(Duration::from_millis);
        opts.stall_timeout = ms("CGP_STALL_MS")?.map(Duration::from_millis);
        if let Some(n) = ms("CGP_RETRIES")? {
            opts.retry = RetryPolicy::retries(n as u32);
        }
        if let Some(n) = ms("CGP_BATCH")? {
            if n == 0 {
                return Err(CoreError::Config("CGP_BATCH: must be at least 1".into()));
            }
            opts.batch = Some(n as usize);
        }
        let flag = |var: &str| -> Result<Option<bool>, CoreError> {
            match std::env::var(var) {
                Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                    "1" | "true" | "yes" | "on" => Ok(Some(true)),
                    "0" | "false" | "no" | "off" | "" => Ok(Some(false)),
                    other => Err(CoreError::Config(format!(
                        "{var}: expected a boolean, got `{other}`"
                    ))),
                },
                Err(_) => Ok(None),
            }
        };
        if let Some(b) = flag("CGP_RECOVER")? {
            opts.recover = b;
        }
        if let Some(b) = flag("CGP_NO_RINGS")? {
            opts.no_rings = b;
        }
        if let Some(b) = flag("CGP_NO_VM")? {
            opts.no_vm = b;
        }
        if let Ok(v) = std::env::var("CGP_TRANSPORT") {
            match v.trim().to_ascii_lowercase().as_str() {
                "" => {}
                t @ ("shm" | "tcp") => opts.transport = Some(t.to_string()),
                other => {
                    return Err(CoreError::Config(format!(
                        "CGP_TRANSPORT: expected `shm` or `tcp`, got `{other}`"
                    )))
                }
            }
        }
        if let Some(n) = ms("CGP_CHECKPOINT_EVERY")? {
            if n == 0 {
                return Err(CoreError::Config(
                    "CGP_CHECKPOINT_EVERY: must be at least 1".into(),
                ));
            }
            opts.checkpoint_every = Some(n);
        }
        if let Ok(path) = std::env::var("CGP_CHECKPOINT_LOG") {
            if !path.is_empty() {
                opts.checkpoint_log = Some(path);
            }
        }
        if let Ok(path) = std::env::var("CGP_CHECKPOINT_DIR") {
            if !path.is_empty() {
                opts.checkpoint_dir = Some(path);
            }
        }
        opts.heartbeat = ms("CGP_HEARTBEAT_MS")?
            .filter(|&n| n > 0)
            .map(Duration::from_millis);
        if let Some(b) = flag("CGP_SUPERVISED")? {
            opts.supervised = b;
        }
        if let Some(n) = ms("CGP_MAX_WORKER_RESTARTS")? {
            opts.max_worker_restarts = Some(n as u32);
        }
        if let Ok(v) = std::env::var("CGP_ROLE") {
            opts.role = Self::parse_role(&v)?;
        }
        // A deterministic self-SIGKILL (`CGP_KILL=f2[0]#5`) is honored
        // only by worker processes: the launcher that spawned them (and
        // its in-process reference run) shares the environment, and a
        // kill rule firing there would take the whole supervisor down.
        if let Ok(spec) = std::env::var("CGP_KILL") {
            if !spec.is_empty() && matches!(opts.role, NetRole::Worker(_)) {
                let kills = FaultPlan::parse(&format!("kill@{spec}"))
                    .map_err(|e| CoreError::Config(format!("CGP_KILL: {e}")))?;
                opts.faults = std::mem::take(&mut opts.faults).merge(kills);
            }
        }
        for (var, slot) in [
            ("CGP_LISTEN", &mut opts.listen),
            ("CGP_CONNECT", &mut opts.connect),
            (TELEMETRY_LOG_ENV, &mut opts.telemetry_log),
            ("CGP_TELEMETRY", &mut opts.telemetry_addr),
        ] {
            if let Ok(v) = std::env::var(var) {
                if !v.is_empty() {
                    *slot = Some(v);
                }
            }
        }
        if let Some(n) = ms(STATUS_EVERY_ENV)? {
            // 0 explicitly disables in-flight sampling (it is not an
            // error, and must never become a zero-interval spin loop).
            opts.status_every = Some(Duration::from_millis(n));
        }
        if let Ok(spec) = std::env::var("CGP_AUTOSCALE") {
            // Validate eagerly so a typo fails at startup, not inside
            // the run; the raw spec is kept so workers spawned with the
            // same environment derive identical provisioned widths.
            AutoscaleConfig::parse(&spec)
                .map_err(|e| CoreError::Config(format!("CGP_AUTOSCALE: {e}")))?;
            if !spec.is_empty() {
                opts.autoscale = Some(spec);
            }
        }
        if let Some(n) = ms("CGP_MAX_COPIES")? {
            if n == 0 {
                return Err(CoreError::Config(
                    "CGP_MAX_COPIES: must be at least 1".into(),
                ));
            }
            opts.max_copies = Some(n as usize);
        }
        Ok(opts)
    }

    /// Whether in-flight telemetry sampling is on: a cadence was set and
    /// it is non-zero (`--status-every 0` / `CGP_STATUS_EVERY=0` is the
    /// explicit off switch — it must never become a zero-interval spin).
    pub fn sampling_enabled(&self) -> bool {
        self.status_every.is_some_and(|d| d > Duration::ZERO)
    }

    /// Provisioned copy count for pipeline unit `j` of `m` under these
    /// options. The elastic runtime provisions every *interior* stage at
    /// the autoscale copy cap up front (routing gates decide how many
    /// copies see traffic), so each provisioned copy owns real threads
    /// and links; endpoints and non-autoscaled runs keep the spec width.
    /// Anything sizing a cross-process link to a stage — shm ingress
    /// rings in particular — must agree with the runtime on this number.
    pub fn provisioned_width(
        &self,
        j: usize,
        m: usize,
        spec_width: usize,
    ) -> Result<usize, CoreError> {
        let Some(spec) = &self.autoscale else {
            return Ok(spec_width);
        };
        let cfg = AutoscaleConfig::parse(spec)
            .map_err(|e| CoreError::Config(format!("autoscale: {e}")))?;
        let Some(mut cfg) = cfg else {
            return Ok(spec_width);
        };
        if let Some(max) = self.max_copies {
            cfg.max_copies = max;
        }
        if j == 0 || j + 1 == m {
            Ok(spec_width)
        } else {
            Ok(spec_width.max(cfg.max_copies))
        }
    }

    /// Select the packet-step engine (`true` = bytecode VM, the
    /// default; `false` = tree-walking interpreter).
    pub fn use_vm(mut self, on: bool) -> Self {
        self.no_vm = !on;
        self
    }

    /// Parse a role spec: `local`, `launcher`, or `worker:<stage>`
    /// (stage is zero-based).
    pub fn parse_role(spec: &str) -> Result<NetRole, CoreError> {
        match spec.trim() {
            "" | "local" => Ok(NetRole::Local),
            "launcher" => Ok(NetRole::Launcher),
            s => {
                let stage = s.strip_prefix("worker:").and_then(|r| r.parse().ok());
                stage.map(NetRole::Worker).ok_or_else(|| {
                    CoreError::Config(format!(
                        "role: expected `local`, `launcher`, or `worker:<stage>`, got `{s}`"
                    ))
                })
            }
        }
    }
}

/// Run a compiled plan on real threads through the DataCutter runtime.
/// `widths[j]` is the number of transparent copies of pipeline unit `j`
/// (`None` = all width 1). Returns the epilogue's `print` output.
pub fn run_plan_threaded(
    plan: Arc<FilterPlan>,
    host_builder: HostBuilder,
    widths: Option<&[usize]>,
) -> Result<Vec<String>, CoreError> {
    run_plan_threaded_opts(plan, host_builder, widths, &ExecOptions::default())
}

/// [`run_plan_threaded`] with explicit fault-tolerance options.
pub fn run_plan_threaded_opts(
    plan: Arc<FilterPlan>,
    host_builder: HostBuilder,
    widths: Option<&[usize]>,
    opts: &ExecOptions,
) -> Result<Vec<String>, CoreError> {
    run_plan_threaded_stats(plan, host_builder, widths, opts).map(|(out, _)| out)
}

/// [`run_plan_threaded_opts`] that also returns the runtime's per-stage
/// statistics, so callers can surface failure/retry/recovery counters
/// (the bench harness prints these for chaos runs).
pub fn run_plan_threaded_stats(
    plan: Arc<FilterPlan>,
    host_builder: HostBuilder,
    widths: Option<&[usize]>,
    opts: &ExecOptions,
) -> Result<(Vec<String>, RunStats), CoreError> {
    let (pipeline, output) = build_pipeline(plan, host_builder, widths, opts)?;
    let stats = pipeline.run().map_err(CoreError::Runtime)?;
    let mut out = output.lock().unwrap_or_else(|e| e.into_inner());
    Ok((std::mem::take(&mut *out), stats))
}

/// Run only pipeline unit `stage` of the plan in this process, as one
/// worker of a distributed run ([`Pipeline::run_worker`]).
///
/// The caller supplies a bound `listener` for the stage's ingress link
/// (required iff `stage > 0` — binding before the run lets launchers
/// learn ephemeral ports first) and the downstream worker's address
/// (required iff `stage` is not the last). All workers must be given the
/// same program, compile options, and `widths` so they derive the same
/// plan and topology. The returned output lines are non-empty only for
/// the last stage's worker.
pub fn run_plan_worker(
    plan: Arc<FilterPlan>,
    host_builder: HostBuilder,
    stage: usize,
    listener: Option<TcpListener>,
    connect: Option<String>,
    widths: Option<&[usize]>,
    opts: &ExecOptions,
) -> Result<(Vec<String>, RunStats), CoreError> {
    run_plan_worker_io(
        plan,
        host_builder,
        stage,
        listener.map(WorkerIngress::Tcp),
        connect,
        widths,
        opts,
    )
}

/// Ingress endpoint for a worker's upstream link: a bound TCP listener
/// (cross-host, or same-host fallback) or pre-created shared-memory
/// rings (same-host fast path — see [`cgp_datacutter::ShmIngress`]).
#[derive(Debug)]
pub enum WorkerIngress {
    Tcp(TcpListener),
    Shm(ShmIngress),
}

/// [`run_plan_worker`] with a transport-generic ingress endpoint. The
/// egress transport is chosen by the `connect` address: `shm:<base>`
/// attaches to the downstream worker's shared-memory rings, anything
/// else is dialled over TCP.
pub fn run_plan_worker_io(
    plan: Arc<FilterPlan>,
    host_builder: HostBuilder,
    stage: usize,
    ingress: Option<WorkerIngress>,
    connect: Option<String>,
    widths: Option<&[usize]>,
    opts: &ExecOptions,
) -> Result<(Vec<String>, RunStats), CoreError> {
    let (pipeline, output) = build_pipeline(plan, host_builder, widths, opts)?;
    let (listener, shm_ingress) = match ingress {
        Some(WorkerIngress::Tcp(l)) => (Some(l), None),
        Some(WorkerIngress::Shm(s)) => (None, Some(s)),
        None => (None, None),
    };
    let stats = pipeline
        .run_worker(WorkerEndpoints {
            stage,
            listener,
            shm_ingress,
            connect,
        })
        .map_err(CoreError::Runtime)?;
    let mut out = output.lock().unwrap_or_else(|e| e.into_inner());
    Ok((std::mem::take(&mut *out), stats))
}

/// Shared plan→pipeline construction for local and worker runs: the
/// stage list (names `f1..fm`, factories, statefulness) and every
/// fault-tolerance knob are identical in both modes, which is what makes
/// a distributed run byte-identical to the in-process one.
type BuiltPipeline = (Pipeline, Arc<Mutex<Vec<String>>>);

fn build_pipeline(
    plan: Arc<FilterPlan>,
    host_builder: HostBuilder,
    widths: Option<&[usize]>,
    opts: &ExecOptions,
) -> Result<BuiltPipeline, CoreError> {
    let m = plan.m;
    let widths: Vec<usize> = match widths {
        Some(w) => {
            if w.len() != m {
                return Err(CoreError::Config(format!(
                    "widths has {} entries for {} pipeline units",
                    w.len(),
                    m
                )));
            }
            if *w.last().expect("m >= 1") != 1 {
                return Err(CoreError::Config(
                    "the final (view) stage cannot be transparently copied — results are \
                     merged and viewed at one host"
                        .into(),
                ));
            }
            w.to_vec()
        }
        None => vec![1; m],
    };
    let output: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let batch = opts.batch.unwrap_or(DEFAULT_BATCH).max(1);
    let use_vm = !opts.no_vm;
    let autoscale_cfg = match &opts.autoscale {
        Some(spec) => {
            let mut cfg = AutoscaleConfig::parse(spec)
                .map_err(|e| CoreError::Config(format!("autoscale: {e}")))?;
            if let (Some(cfg), Some(max)) = (cfg.as_mut(), opts.max_copies) {
                cfg.max_copies = max;
            }
            cfg
        }
        None => None,
    };

    let mut pipeline = Pipeline::new()
        .with_capacity(32)
        .with_batch(batch)
        .with_pool(BufferPool::new())
        .with_faults(opts.faults.clone())
        .with_retry(opts.retry)
        .with_same_host_rings(!opts.no_rings);
    if let Some(d) = opts.deadline {
        pipeline = pipeline.with_deadline(d);
    }
    if let Some(s) = opts.stall_timeout {
        pipeline = pipeline.with_stall_timeout(s);
    }
    if opts.recover {
        let mut recovery = RecoveryOptions::on();
        if let Some(k) = opts.checkpoint_every {
            recovery = recovery.with_checkpoint_every(k);
        }
        pipeline = pipeline.with_recovery(recovery);
        if opts.checkpoint_log.is_some() || opts.checkpoint_dir.is_some() {
            let mut store = match &opts.checkpoint_log {
                Some(path) => CheckpointStore::with_jsonl(path)
                    .map_err(|e| CoreError::Config(format!("checkpoint log `{path}`: {e}")))?,
                None => CheckpointStore::in_memory(),
            };
            if let Some(dir) = &opts.checkpoint_dir {
                store = store
                    .with_durable(dir)
                    .map_err(|e| CoreError::Config(format!("checkpoint dir `{dir}`: {e}")))?;
            }
            pipeline = pipeline.with_checkpoint_store(store);
        }
    }
    if opts.heartbeat.is_some() || opts.supervised {
        pipeline = pipeline.with_net_tuning(NetTuning {
            heartbeat: opts.heartbeat,
            supervised: opts.supervised,
            ..Default::default()
        });
    }
    if let Some(reg) = &opts.metrics {
        pipeline = pipeline.with_metrics(Arc::clone(reg));
    }
    if let Some(cfg) = &autoscale_cfg {
        pipeline = pipeline.with_autoscale(cfg.clone());
    }
    if opts.busy_carry.iter().any(|c| !c.is_empty()) {
        pipeline = pipeline.with_busy_carry(opts.busy_carry.clone());
    }
    // An explicit zero cadence means "no in-flight sampling": alone it
    // leaves telemetry off entirely; combined with a log/aggregator it
    // keeps the final snapshot but skips the sampler loop. Autoscaling
    // rides the sampler clock, so enabling it turns telemetry on too.
    let sampling = opts.sampling_enabled();
    if sampling
        || opts.telemetry_log.is_some()
        || opts.telemetry_addr.is_some()
        || autoscale_cfg.is_some()
    {
        let every = opts.status_every.unwrap_or(Duration::from_millis(500));
        // Status lines go to stderr (worker stdout is protocol-reserved);
        // suppress them when a launcher aggregates the merged line.
        let mut sampler = TelemetrySampler::new(every)
            .with_status_line(sampling && opts.telemetry_addr.is_none());
        if let Some(path) = &opts.telemetry_log {
            sampler = sampler
                .with_log_path(path)
                .map_err(|e| CoreError::Config(format!("telemetry log `{path}`: {e}")))?;
        }
        let source = match opts.role {
            NetRole::Worker(k) => format!("worker:{k}"),
            _ => "local".to_string(),
        };
        let mut cfg = TelemetryConfig::new(Arc::new(sampler), source);
        if let Some(addr) = &opts.telemetry_addr {
            cfg = cfg.ship_to(addr.clone());
        }
        pipeline = pipeline.with_telemetry(cfg);
        if opts.metrics.is_none() {
            // The final telemetry frame ships a registry snapshot (the
            // launcher merges them for calibration), so a telemetered
            // run needs one even when the caller won't read it.
            pipeline = pipeline.with_metrics(Arc::new(Mutex::new(MetricsRegistry::default())));
        }
    }
    for (j, &width) in widths.iter().enumerate() {
        let plan = Arc::clone(&plan);
        let hb = Arc::clone(&host_builder);
        let out = Arc::clone(&output);
        let mut stage = StageSpec::new(
            format!("f{}", j + 1),
            width,
            Box::new(move |copy| {
                Box::new(PlanFilter {
                    plan: Arc::clone(&plan),
                    host_builder: Arc::clone(&hb),
                    j,
                    copy,
                    width,
                    m,
                    batch,
                    use_vm,
                    output: Arc::clone(&out),
                    pending_restore: None,
                })
            }),
        );
        // Every non-source unit carries reduction state across packets:
        // under recovery those stages checkpoint (and ack only at
        // commits); the source regenerates its packets deterministically
        // and needs no snapshot.
        if j > 0 {
            stage = stage.stateful();
        }
        pipeline = pipeline.add_stage(stage);
    }
    Ok((pipeline, output))
}

struct PlanFilter {
    plan: Arc<FilterPlan>,
    host_builder: HostBuilder,
    j: usize,
    copy: usize,
    width: usize,
    m: usize,
    batch: usize,
    use_vm: bool,
    output: Arc<Mutex<Vec<String>>>,
    /// Checkpoint bytes handed to `Filter::restore` before `process`
    /// runs; decoded and merged into the fresh reduction state once the
    /// stepper exists (`Value` state is not `Send`, so the raw encoding
    /// is carried across the restart instead).
    pending_restore: Option<Vec<u8>>,
}

impl PlanFilter {
    /// Build a tagged packet in pooled storage (tag byte + payload).
    fn tagged(io: &mut FilterIo, tag: u8, payload: &[u8]) -> Buffer {
        let mut buf = io.alloc(payload.len() + 1);
        buf.push(tag);
        buf.extend_from_slice(payload);
        io.seal(buf)
    }
}

impl PlanFilter {
    fn run_unit_of_work(&mut self, io: &mut FilterIo) -> Result<(), CoreError> {
        let host = (self.host_builder)();
        let plan = Arc::clone(&self.plan);
        let mut stepper = FilterStepper::new(&plan, &host)
            .map_err(CoreError::Compile)?
            .with_vm(self.use_vm);
        let j = self.j;

        if j == 0 {
            // Source: generate this copy's share of the packets, shipping
            // them in batches so downstream queue synchronization is
            // amortized over `batch` packets.
            let ((lo, hi), n_packets) = stepper.loop_bounds().map_err(CoreError::Compile)?;
            let mut pending: Vec<Buffer> = Vec::with_capacity(self.batch);
            for (i, (plo, phi)) in split_domain(lo, hi, n_packets as usize).iter().enumerate() {
                if i % self.width != self.copy {
                    continue;
                }
                let out = stepper
                    .step(0, (*plo, *phi), None)
                    .map_err(CoreError::Compile)?;
                if let Some(payload) = out {
                    pending.push(Self::tagged(io, TAG_DATA, &payload));
                    if pending.len() >= self.batch {
                        let batch = std::mem::replace(&mut pending, Vec::with_capacity(self.batch));
                        io.write_batch(batch).map_err(CoreError::Runtime)?;
                    }
                }
            }
            io.write_batch(pending).map_err(CoreError::Runtime)?;
        } else {
            // Interior/terminal: consume tagged buffers until end-of-work.
            if let Some(bytes) = self.pending_restore.take() {
                // Restoring a checkpoint is the same operation as merging
                // a sibling copy's partial reduction: fold the snapshot
                // into the fresh zero state.
                let saved = decode_state(&bytes).map_err(CoreError::Codec)?;
                stepper
                    .merge_reduction(j, &saved)
                    .map_err(CoreError::Compile)?;
            }
            while let Some(buf) = io.read() {
                let bytes = buf.as_slice();
                let (tag, body) = bytes
                    .split_first()
                    .ok_or_else(|| CoreError::Config("empty buffer".into()))?;
                match *tag {
                    TAG_DATA => {
                        // Packet header: lo, hi.
                        if body.len() < 16 {
                            return Err(CoreError::Config("short packet header".into()));
                        }
                        let lo = i64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
                        let hi = i64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
                        let out = stepper
                            .step(j, (lo, hi), Some(body))
                            .map_err(CoreError::Compile)?;
                        if let Some(payload) = out {
                            let fwd = Self::tagged(io, TAG_DATA, &payload);
                            io.write(fwd).map_err(CoreError::Runtime)?;
                        }
                    }
                    TAG_REDUCTION => {
                        let partial = decode_state(body).map_err(CoreError::Codec)?;
                        stepper
                            .merge_reduction(j, &partial)
                            .map_err(CoreError::Compile)?;
                    }
                    t => return Err(CoreError::Config(format!("unknown buffer tag {t}"))),
                }
                if io.checkpoint_due() {
                    let snap = encode_state(&stepper.reduction_state(j));
                    io.commit_checkpoint(&snap).map_err(CoreError::Runtime)?;
                }
            }
        }

        // End of work: ship reduction state downstream, or finish here.
        if j < self.m - 1 {
            let state = stepper.reduction_state(j);
            let buf = Self::tagged(io, TAG_REDUCTION, &encode_state(&state));
            io.write(buf).map_err(CoreError::Runtime)?;
        } else {
            let lines = stepper.epilogue_at(j).map_err(CoreError::Compile)?;
            self.output
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(lines);
        }
        Ok(())
    }
}

impl Filter for PlanFilter {
    fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        self.run_unit_of_work(io).map_err(|e| match e {
            // Stream/injected errors are already structured — pass them
            // through so kind/retryable survive (the executor renames
            // them to this stage's label).
            CoreError::Runtime(fe) => fe,
            other => cgp_datacutter::FilterError::new(
                format!("f{}[{}]", self.j + 1, self.copy),
                other.to_string(),
            ),
        })
    }

    fn name(&self) -> &str {
        "plan-filter"
    }

    fn restore(&mut self, snapshot: &[u8]) -> FilterResult<()> {
        // Validate eagerly so a corrupt snapshot fails the restart loudly
        // instead of poisoning the reduction mid-run.
        decode_state(snapshot).map_err(|e| {
            cgp_datacutter::FilterError::new(
                format!("f{}[{}]", self.j + 1, self.copy),
                format!("corrupt checkpoint: {e}"),
            )
        })?;
        self.pending_restore = Some(snapshot.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_compiler::cost::PipelineEnv;
    use cgp_compiler::{compile, CompileOptions};
    use cgp_lang::interp::Interp;
    use cgp_lang::Value;

    const SRC: &str = r#"
        extern int n;
        extern double[] data;
        runtime_define int num_packets;
        class Acc implements Reducinterface {
            double total;
            void reduce(Acc other) { total = total + other.total; }
            void add(double x) { total = total + x; }
        }
        class A {
            void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; num_packets) {
                    foreach (i in pkt) {
                        double v = data[i] * 2.0 + 1.0;
                        if (v > 60.0) {
                            acc.add(v);
                        }
                    }
                }
                print(acc.total);
            }
        }
    "#;

    fn host() -> HostEnv {
        let data = Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
            (0..200)
                .map(|i| Value::Double((i * 13 % 101) as f64))
                .collect(),
        )));
        HostEnv::new()
            .bind("n", Value::Int(200))
            .bind("num_packets", Value::Int(10))
            .bind("data", data)
    }

    fn oracle() -> Vec<String> {
        let tp = cgp_lang::frontend(SRC).unwrap();
        let mut it = Interp::new(&tp, host());
        it.run_main().unwrap();
        it.output
    }

    #[test]
    fn threaded_run_matches_oracle() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let out = run_plan_threaded(Arc::new(c.plan), Arc::new(host), None).unwrap();
        assert_eq!(out, oracle());
    }

    #[test]
    fn threaded_run_with_transparent_copies() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        for widths in [[1usize, 2, 1], [2, 2, 1], [4, 4, 1]] {
            let out =
                run_plan_threaded(Arc::new(c.plan.clone()), Arc::new(host), Some(&widths)).unwrap();
            assert_eq!(out, oracle(), "widths={widths:?}");
        }
    }

    #[test]
    fn single_unit_plan_runs() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(1, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let out = run_plan_threaded(Arc::new(c.plan), Arc::new(host), None).unwrap();
        assert_eq!(out, oracle());
    }

    #[test]
    fn injected_panic_is_isolated_and_named() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let exec = ExecOptions {
            faults: FaultPlan::new().panic_at("f2", 0, 3),
            deadline: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let err = run_plan_threaded_opts(Arc::new(c.plan), Arc::new(host), None, &exec)
            .expect_err("injected panic must fail the run");
        let CoreError::Runtime(fe) = err else {
            panic!("expected a runtime error, got {err}");
        };
        assert_eq!(fe.kind, cgp_datacutter::ErrorKind::Panicked);
        assert!(fe.filter.contains("f2"), "error names the stage: {fe}");
    }

    #[test]
    fn recovery_masks_an_injected_panic_and_matches_oracle() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let exec = ExecOptions {
            faults: FaultPlan::new().panic_at("f2", 0, 3),
            deadline: Some(Duration::from_secs(30)),
            recover: true,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let (out, stats) =
            run_plan_threaded_stats(Arc::new(c.plan), Arc::new(host), None, &exec).unwrap();
        assert_eq!(out, oracle(), "recovered run must be byte-identical");
        assert_eq!(stats.recoveries(), 1, "one restart for the one panic");
        assert!(
            stats.checkpoints() >= 1,
            "10 packets with checkpoint_every=2 must commit checkpoints"
        );
    }

    #[test]
    fn recovery_with_copies_restores_checkpointed_state() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        // Panic late enough (packet 4 of ~5 seen by this copy) that the
        // restart must restore a committed checkpoint rather than merely
        // replaying from zero.
        let exec = ExecOptions {
            faults: FaultPlan::new().panic_at("f2", 1, 4),
            deadline: Some(Duration::from_secs(30)),
            recover: true,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let widths = [1usize, 2, 1];
        let (out, stats) =
            run_plan_threaded_stats(Arc::new(c.plan), Arc::new(host), Some(&widths), &exec)
                .unwrap();
        assert_eq!(out, oracle(), "recovered run must be byte-identical");
        assert_eq!(stats.recoveries(), 1);
        assert!(stats.checkpoint_bytes() > 0);
    }

    /// Host one worker per pipeline unit (on threads — the process
    /// boundary is exercised by the bench launcher; the sockets and
    /// topology are identical) and compare to the interpreter oracle.
    fn run_distributed(plan: &FilterPlan, widths: [usize; 3], exec: ExecOptions) -> Vec<String> {
        run_distributed_io(plan, widths, exec, false)
    }

    /// Same topology over shared-memory rings instead of loopback TCP.
    fn run_distributed_shm(
        plan: &FilterPlan,
        widths: [usize; 3],
        exec: ExecOptions,
    ) -> Vec<String> {
        run_distributed_io(plan, widths, exec, true)
    }

    fn run_distributed_io(
        plan: &FilterPlan,
        widths: [usize; 3],
        exec: ExecOptions,
        shm: bool,
    ) -> Vec<String> {
        use cgp_datacutter::{DEFAULT_SHM_CAPACITY, SHM_PREFIX};
        let plan = Arc::new(plan.clone());
        let (mut ingresses, connects): ([Option<WorkerIngress>; 3], [Option<String>; 3]) = if shm {
            // The downstream worker creates its rings before any
            // producer attaches, mirroring the launcher's create-then-
            // announce ordering.
            let unique = format!("{}-{:?}", std::process::id(), std::thread::current().id())
                .replace(['(', ')'], "");
            let base1 = cgp_datacutter::shm_dir()
                .join(format!("cgp-core-test-{unique}.l1"))
                .display()
                .to_string();
            let base2 = cgp_datacutter::shm_dir()
                .join(format!("cgp-core-test-{unique}.l2"))
                .display()
                .to_string();
            // Ring count per link = the upstream stage's *provisioned*
            // width (autoscale provisions interior stages at the cap).
            let p1 = exec.provisioned_width(0, 3, widths[0]).unwrap();
            let p2 = exec.provisioned_width(1, 3, widths[1]).unwrap();
            let s1 = ShmIngress::create(&base1, p1, DEFAULT_SHM_CAPACITY, None).unwrap();
            let s2 = ShmIngress::create(&base2, p2, DEFAULT_SHM_CAPACITY, None).unwrap();
            (
                [
                    None,
                    Some(WorkerIngress::Shm(s1)),
                    Some(WorkerIngress::Shm(s2)),
                ],
                [
                    Some(format!("{SHM_PREFIX}{base1}")),
                    Some(format!("{SHM_PREFIX}{base2}")),
                    None,
                ],
            )
        } else {
            let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
            let l2 = TcpListener::bind("127.0.0.1:0").unwrap();
            let a1 = l1.local_addr().unwrap().to_string();
            let a2 = l2.local_addr().unwrap().to_string();
            (
                [
                    None,
                    Some(WorkerIngress::Tcp(l1)),
                    Some(WorkerIngress::Tcp(l2)),
                ],
                [Some(a1), Some(a2), None],
            )
        };
        let handles: Vec<_> = (0..3)
            .map(|s| {
                let plan = Arc::clone(&plan);
                let ingress = ingresses[s].take();
                let connect = connects[s].clone();
                let exec = exec.clone();
                std::thread::spawn(move || {
                    run_plan_worker_io(
                        plan,
                        Arc::new(host),
                        s,
                        ingress,
                        connect,
                        Some(&widths),
                        &exec,
                    )
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        // Only the last stage's worker produces output; interior workers
        // report network traffic on their links.
        assert!(results[0].0.is_empty() && results[1].0.is_empty());
        assert!(
            results[1]
                .1
                .net_links
                .iter()
                .any(|(l, st)| *l == 1 && st.frames > 0),
            "middle worker saw ingress traffic: {:?}",
            results[1].1.net_links
        );
        assert!(
            results[1]
                .1
                .net_links
                .iter()
                .any(|(l, st)| *l == 2 && st.frames > 0),
            "middle worker saw egress traffic: {:?}",
            results[1].1.net_links
        );
        results.into_iter().next_back().unwrap().0
    }

    #[test]
    fn distributed_workers_match_in_process_run() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let out = run_distributed(&c.plan, [1, 2, 1], ExecOptions::default());
        assert_eq!(out, oracle(), "distributed run must be byte-identical");
    }

    #[test]
    fn distributed_recovery_masks_a_fault_and_matches_oracle() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let exec = ExecOptions {
            faults: FaultPlan::new().panic_at("f2", 0, 3),
            deadline: Some(Duration::from_secs(30)),
            recover: true,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let out = run_distributed(&c.plan, [1, 2, 1], exec);
        assert_eq!(out, oracle(), "recovered distributed run must match");
    }

    #[test]
    fn distributed_shm_workers_match_in_process_run() {
        if !cgp_datacutter::shm_supported() {
            return;
        }
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let out = run_distributed_shm(&c.plan, [1, 2, 1], ExecOptions::default());
        assert_eq!(out, oracle(), "shm-transport run must be byte-identical");
    }

    #[test]
    fn distributed_shm_recovery_masks_a_fault_and_matches_oracle() {
        if !cgp_datacutter::shm_supported() {
            return;
        }
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        // The fault is injected inside the middle worker and masked by
        // its local checkpointed restart; the shm links on either side
        // must deliver byte-identical output regardless.
        let exec = ExecOptions {
            faults: FaultPlan::new().panic_at("f2", 0, 3),
            deadline: Some(Duration::from_secs(30)),
            recover: true,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let out = run_distributed_shm(&c.plan, [1, 2, 1], exec);
        assert_eq!(out, oracle(), "recovered shm run must match");
    }

    #[test]
    fn telemetered_run_matches_oracle_and_feeds_calibration() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let reg = Arc::new(Mutex::new(MetricsRegistry::default()));
        let exec = ExecOptions {
            status_every: Some(Duration::from_millis(5)),
            metrics: Some(Arc::clone(&reg)),
            ..Default::default()
        };
        let (out, stats) =
            run_plan_threaded_stats(Arc::new(c.plan), Arc::new(host), None, &exec).unwrap();
        assert_eq!(out, oracle(), "telemetry must not perturb output");
        assert!(stats.e2e_us.count > 0, "end-to-end latencies recorded");
        assert!(stats.stages[1].residence_us.count > 0);
        let reg = reg.lock().unwrap();
        assert!(reg.get_counter("stage.f2.buffers_in") > 0);
        assert!(reg.get_counter("stage.f3.busy_us") > 0);
        assert!(reg.get_histogram("pipeline.e2e_us").is_some());
        let cal = cgp_compiler::CalibrationReport::from_run(&c.report, &reg)
            .expect("telemetered registry is calibratable");
        assert_eq!(cal.stages.len(), 3);
        let text = cal.render_text();
        assert!(text.contains("measured bottleneck"), "{text}");
    }

    #[test]
    fn autoscaled_run_matches_oracle_and_provisions_to_cap() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let exec = ExecOptions {
            autoscale: Some("max=3,cooldown=0".into()),
            status_every: Some(Duration::from_millis(2)),
            ..Default::default()
        };
        let (out, stats) =
            run_plan_threaded_stats(Arc::new(c.plan), Arc::new(host), None, &exec).unwrap();
        assert_eq!(out, oracle(), "autoscaled run must be byte-identical");
        // The interior stage is provisioned at the cap (routing gates
        // decide how many copies see traffic); endpoints keep spec width.
        assert_eq!(stats.stages[1].busy_per_copy.len(), 3);
        assert_eq!(stats.stages[0].busy_per_copy.len(), 1);
        assert_eq!(stats.stages[2].busy_per_copy.len(), 1);
    }

    #[test]
    fn max_copies_overrides_the_autoscale_cap() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let exec = ExecOptions {
            autoscale: Some("on".into()),
            max_copies: Some(2),
            status_every: Some(Duration::from_millis(2)),
            ..Default::default()
        };
        let (out, stats) =
            run_plan_threaded_stats(Arc::new(c.plan), Arc::new(host), None, &exec).unwrap();
        assert_eq!(out, oracle());
        assert_eq!(stats.stages[1].busy_per_copy.len(), 2, "cap overridden");
    }

    #[test]
    fn autoscale_config_errors_are_surfaced() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let bad = ExecOptions {
            autoscale: Some("nonsense".into()),
            status_every: Some(Duration::from_millis(2)),
            ..Default::default()
        };
        let err = run_plan_threaded_opts(Arc::new(c.plan.clone()), Arc::new(host), None, &bad)
            .expect_err("bad autoscale spec must fail");
        assert!(matches!(err, CoreError::Config(_)), "{err}");
        // Autoscaling rides the sampler clock: an explicit zero cadence
        // contradicts it and is rejected rather than silently ignored.
        let no_clock = ExecOptions {
            autoscale: Some("on".into()),
            status_every: Some(Duration::ZERO),
            ..Default::default()
        };
        let err = run_plan_threaded_opts(Arc::new(c.plan), Arc::new(host), None, &no_clock)
            .expect_err("autoscale without a sampling cadence must fail");
        assert!(err.to_string().contains("cadence"), "{err}");
    }

    #[test]
    fn autoscaled_distributed_run_matches_oracle() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        // Every worker derives the same provisioned widths from the
        // shared autoscale config, so boundary streams line up even
        // though each process widens (or not) on its own telemetry.
        let exec = ExecOptions {
            autoscale: Some("max=3".into()),
            status_every: Some(Duration::from_millis(2)),
            ..Default::default()
        };
        let out = run_distributed(&c.plan, [1, 1, 1], exec);
        assert_eq!(out, oracle(), "autoscaled distributed run must match");
    }

    #[test]
    fn autoscaled_distributed_recovery_masks_a_fault_and_matches_oracle() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        // A mid-run fault inside the elastic middle worker must be
        // masked by its checkpointed restart without disturbing the
        // width gates or the byte-identical output.
        let exec = ExecOptions {
            faults: FaultPlan::new().panic_at("f2", 0, 3),
            deadline: Some(Duration::from_secs(30)),
            recover: true,
            checkpoint_every: Some(2),
            autoscale: Some("max=3".into()),
            status_every: Some(Duration::from_millis(2)),
            ..Default::default()
        };
        let out = run_distributed(&c.plan, [1, 1, 1], exec);
        assert_eq!(out, oracle(), "fault under autoscale must be masked");
    }

    #[test]
    fn provisioned_width_sizes_interior_links_at_the_cap() {
        let fixed = ExecOptions::default();
        assert_eq!(fixed.provisioned_width(1, 3, 2).unwrap(), 2);
        let elastic = ExecOptions {
            autoscale: Some("max=3".into()),
            ..Default::default()
        };
        // Endpoints keep the spec width; interior stages are provisioned
        // at the cap (and a wider spec wins over a narrower cap).
        assert_eq!(elastic.provisioned_width(0, 3, 1).unwrap(), 1);
        assert_eq!(elastic.provisioned_width(1, 3, 1).unwrap(), 3);
        assert_eq!(elastic.provisioned_width(2, 3, 1).unwrap(), 1);
        assert_eq!(elastic.provisioned_width(1, 3, 5).unwrap(), 5);
        let overridden = ExecOptions {
            autoscale: Some("on".into()),
            max_copies: Some(2),
            ..Default::default()
        };
        assert_eq!(overridden.provisioned_width(1, 3, 1).unwrap(), 2);
        let off = ExecOptions {
            autoscale: Some("off".into()),
            ..Default::default()
        };
        assert_eq!(off.provisioned_width(1, 3, 1).unwrap(), 1);
        let bad = ExecOptions {
            autoscale: Some("max=zero".into()),
            ..Default::default()
        };
        assert!(bad.provisioned_width(1, 3, 1).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn autoscaled_distributed_shm_run_matches_oracle() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        // Over shared memory the ingress ring count is fixed at create
        // time, so it must be derived from the *provisioned* width of
        // the upstream stage — one ring per provisioned copy — or the
        // widened copies find no ring to write into.
        let exec = ExecOptions {
            autoscale: Some("max=3".into()),
            status_every: Some(Duration::from_millis(2)),
            ..Default::default()
        };
        let out = run_distributed_shm(&c.plan, [1, 1, 1], exec);
        assert_eq!(out, oracle(), "autoscaled shm run must match");
    }

    #[test]
    fn vm_and_interpreter_runs_are_byte_identical() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let plan = Arc::new(c.plan);
        let vm_out = run_plan_threaded_opts(
            Arc::clone(&plan),
            Arc::new(host),
            None,
            &ExecOptions::default().use_vm(true),
        )
        .unwrap();
        let it_out = run_plan_threaded_opts(
            Arc::clone(&plan),
            Arc::new(host),
            None,
            &ExecOptions::default().use_vm(false),
        )
        .unwrap();
        assert_eq!(vm_out, it_out, "engines diverged");
        assert_eq!(vm_out, oracle());
    }

    #[test]
    fn vm_run_under_injected_fault_and_recovery_matches_oracle() {
        // The chaos case: a panic injected mid-stream, masked by the
        // recovery layer, must be byte-identical whichever engine runs
        // the packet steps.
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let plan = Arc::new(c.plan);
        for on in [true, false] {
            let exec = ExecOptions {
                faults: FaultPlan::new().panic_at("f2", 0, 3),
                deadline: Some(Duration::from_secs(30)),
                recover: true,
                checkpoint_every: Some(2),
                ..Default::default()
            }
            .use_vm(on);
            let (out, stats) =
                run_plan_threaded_stats(Arc::clone(&plan), Arc::new(host), None, &exec).unwrap();
            assert_eq!(out, oracle(), "use_vm={on}");
            assert_eq!(stats.recoveries(), 1, "use_vm={on}");
        }
    }

    #[test]
    fn parse_role_accepts_the_documented_forms() {
        assert_eq!(ExecOptions::parse_role("local").unwrap(), NetRole::Local);
        assert_eq!(ExecOptions::parse_role("").unwrap(), NetRole::Local);
        assert_eq!(
            ExecOptions::parse_role("launcher").unwrap(),
            NetRole::Launcher
        );
        assert_eq!(
            ExecOptions::parse_role("worker:2").unwrap(),
            NetRole::Worker(2)
        );
        assert!(ExecOptions::parse_role("worker").is_err());
        assert!(ExecOptions::parse_role("worker:x").is_err());
        assert!(ExecOptions::parse_role("supervisor").is_err());
    }

    #[test]
    fn status_every_zero_disables_sampling() {
        // Table: cadence → whether the in-flight sampler may run.
        let cases: &[(Option<Duration>, bool)] = &[
            (None, false),
            (Some(Duration::ZERO), false),
            (Some(Duration::from_millis(1)), true),
            (Some(Duration::from_millis(500)), true),
        ];
        for &(status_every, want) in cases {
            let opts = ExecOptions {
                status_every,
                ..Default::default()
            };
            assert_eq!(
                opts.sampling_enabled(),
                want,
                "status_every={status_every:?}"
            );
        }
    }

    #[test]
    fn status_every_zero_runs_to_completion() {
        // A zero cadence must not spin, divide by zero, or change the
        // output — it simply runs without the sampler thread.
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let exec = ExecOptions {
            status_every: Some(Duration::ZERO),
            ..Default::default()
        };
        let (out, _) =
            run_plan_threaded_stats(Arc::new(c.plan), Arc::new(host), None, &exec).unwrap();
        assert_eq!(out, oracle());
    }

    #[test]
    fn exec_options_from_env_rejects_bad_spec() {
        // Exercise the parser directly (env vars are process-global, so
        // don't set them in a test).
        assert!(FaultPlan::parse("nonsense spec !!").is_err());
        assert!(FaultPlan::parse("f2[0]@3:panic; seed=7").is_ok());
    }

    #[test]
    fn bad_widths_rejected() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 20).with_symbol("n", 200);
        let c = compile(SRC, &opts).unwrap();
        let err = run_plan_threaded(Arc::new(c.plan), Arc::new(host), Some(&[1, 2]));
        assert!(err.is_err());
    }
}
