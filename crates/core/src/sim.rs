//! Glue: run an application variant's real computation and replay it on a
//! simulated grid (the figure-generation path).

use cgp_apps::profile::{run_all_min, to_sim_packets, AppVariant};
use cgp_grid::{simulate, GridConfig, SimResult};

/// Measurement rounds per variant; the per-packet minimum is kept
/// (see [`cgp_apps::profile::run_all_min`]).
pub const MEASURE_ROUNDS: usize = 3;

/// Calibration constant: how many simulator "standard ops" one measured
/// second equals. Host powers in [`GridConfig`]s used with
/// [`simulate_variant`] should be expressed on the same scale, so a host of
/// power `CALIBRATION` executes one measured-second of work per simulated
/// second.
pub const CALIBRATION: f64 = 1.0e9;

/// How much slower the paper's 700 MHz Pentium III nodes are than the
/// machine measuring the per-packet work. The figures' *shape* (who wins,
/// crossovers) depends on the compute-to-communication ratio; measuring
/// work on a modern core but keeping Myrinet-class links would make every
/// experiment link-bound, which the paper's testbed was not. A factor
/// around 25 (clock × IPC) restores the paper's regime; EXPERIMENTS.md
/// records the sensitivity of each figure to this constant.
pub const PENTIUM_SLOWDOWN: f64 = 25.0;

/// Outcome of simulating one application variant on one configuration.
#[derive(Debug, Clone)]
pub struct VariantRun {
    pub name: String,
    pub makespan: f64,
    pub result_digest: u64,
    pub sim: SimResult,
}

/// Execute every packet of `variant` for real, then simulate the pipeline
/// schedule on `grid`.
pub fn simulate_variant(variant: &mut dyn AppVariant, grid: &GridConfig) -> VariantRun {
    let (profiles, digest) = run_all_min(variant, MEASURE_ROUNDS);
    let packets = to_sim_packets(&profiles, CALIBRATION);
    let fin = variant.finalize_bytes();
    let sim = simulate(grid, &packets, &fin);
    VariantRun {
        name: variant.name(),
        makespan: sim.makespan,
        result_digest: digest,
        sim,
    }
}

/// Effective end-to-end stream throughput of the paper's testbed:
/// DataCutter's buffer-at-a-time streams over Myrinet LANai 7.0 delivered
/// well below the raw ~100 MB/s wire rate; 50 MB/s is a representative
/// middleware-level figure. EXPERIMENTS.md records each figure's
/// sensitivity to this constant.
pub const LINK_BANDWIDTH: f64 = 5.0e7;

/// The paper's testbed as a `w-w-1` grid: 700 MHz-class hosts (measured
/// work slowed by [`PENTIUM_SLOWDOWN`]) on Myrinet-class links at the
/// effective [`LINK_BANDWIDTH`], 20 µs latency.
pub fn paper_grid(w: usize) -> GridConfig {
    GridConfig::w_w_1(
        w,
        CALIBRATION / PENTIUM_SLOWDOWN,
        cgp_grid::LinkSpec {
            bandwidth: LINK_BANDWIDTH,
            latency: 2.0e-5,
        },
    )
}

/// 2003-era sequential disk bandwidth (~35 MB/s) for datasets that live in
/// files at the data nodes (isosurface grids, microscope slides).
pub const DISK_BANDWIDTH: f64 = 3.5e7;

/// [`paper_grid`] with local disks at the data nodes.
pub fn paper_grid_disk(w: usize) -> GridConfig {
    paper_grid(w).with_stage0_disk(DISK_BANDWIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_apps::isosurface::{IsoPipeline, IsoVersion, Renderer, ScalarGrid};

    fn variant(version: IsoVersion) -> IsoPipeline {
        IsoPipeline::new(
            ScalarGrid::synthetic(16, 16, 16, 4),
            0.8,
            8,
            32,
            Renderer::ZBuffer,
            version,
            "sim-test",
        )
    }

    #[test]
    fn simulate_variant_produces_times_and_digest() {
        let g = paper_grid(1);
        let run = simulate_variant(&mut variant(IsoVersion::Decomp), &g);
        assert!(run.makespan > 0.0);
        assert!(run.name.contains("Decomp"));
    }

    #[test]
    fn variants_agree_and_widths_speed_up() {
        let r1 = simulate_variant(&mut variant(IsoVersion::Decomp), &paper_grid(1));
        let r2 = simulate_variant(&mut variant(IsoVersion::Decomp), &paper_grid(2));
        assert_eq!(r1.result_digest, r2.result_digest);
        // More width never hurts the simulated makespan (same measured work
        // modulo timing noise; allow 25% slack).
        assert!(
            r2.makespan <= r1.makespan * 1.25,
            "{} vs {}",
            r2.makespan,
            r1.makespan
        );
    }
}
