//! Unified error type for the facade crate.

use std::fmt;

/// Anything that can go wrong compiling or executing a pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// Frontend / analysis / codegen error.
    Compile(cgp_compiler::CompileError),
    /// Runtime (filter/stream) error.
    Runtime(cgp_datacutter::FilterError),
    /// Value codec error.
    Codec(crate::codec::CodecError),
    /// Configuration mistake (widths, tags, …).
    Config(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Compile(e) => write!(f, "{e}"),
            CoreError::Runtime(e) => write!(f, "{e}"),
            CoreError::Codec(e) => write!(f, "{e}"),
            CoreError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<cgp_compiler::CompileError> for CoreError {
    fn from(e: cgp_compiler::CompileError) -> Self {
        CoreError::Compile(e)
    }
}

impl From<cgp_datacutter::FilterError> for CoreError {
    fn from(e: cgp_datacutter::FilterError) -> Self {
        CoreError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        let e: CoreError = cgp_compiler::CompileError::new("x").into();
        assert!(matches!(e, CoreError::Compile(_)));
    }
}
