//! A small self-describing codec for interpreter [`Value`]s.
//!
//! Used by the threaded executor's finalization protocol: each filter's
//! reduction-variable state must travel downstream as bytes at end-of-work.
//! (Per-packet data uses the compiler's typed [`cgp_compiler::packing`]
//! layouts instead — this codec is only for whole-object state transfer.)

use cgp_lang::value::{ObjectVal, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Encoding error (decode side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_VOID: u8 = 4;
const TAG_NULL: u8 = 5;
const TAG_DOMAIN: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;
/// Homogeneous `f64` array: count + one contiguous run of LE bit patterns.
const TAG_ARRAY_F64: u8 = 9;
/// Homogeneous `i64` array: count + one contiguous run of LE values.
const TAG_ARRAY_I64: u8 = 10;

/// Scratch size (in 8-byte words) for chunked LE conversion: large enough
/// that the per-chunk `extend_from_slice` amortizes to nothing, small
/// enough to stay in cache and on the stack.
const RUN_CHUNK: usize = 64;

/// Append a run of `u64` LE words in chunks: each chunk is converted on
/// the stack, then copied into `out` as one byte slice — no per-element
/// `Vec` growth or push (safe on any endianness).
fn extend_u64_run(out: &mut Vec<u8>, words: impl Iterator<Item = u64>) {
    let mut scratch = [0u8; RUN_CHUNK * 8];
    let mut filled = 0usize;
    for w in words {
        scratch[filled * 8..filled * 8 + 8].copy_from_slice(&w.to_le_bytes());
        filled += 1;
        if filled == RUN_CHUNK {
            out.extend_from_slice(&scratch);
            filled = 0;
        }
    }
    if filled > 0 {
        out.extend_from_slice(&scratch[..filled * 8]);
    }
}

/// Element kind of a homogeneous array (qualifying it for a bulk tag).
enum Homogeneous {
    F64,
    I64,
    No,
}

fn homogeneity(a: &[Value]) -> Homogeneous {
    let mut iter = a.iter();
    match iter.next() {
        Some(Value::Double(_)) => {
            if iter.all(|v| matches!(v, Value::Double(_))) {
                Homogeneous::F64
            } else {
                Homogeneous::No
            }
        }
        Some(Value::Int(_)) => {
            if iter.all(|v| matches!(v, Value::Int(_))) {
                Homogeneous::I64
            } else {
                Homogeneous::No
            }
        }
        _ => Homogeneous::No,
    }
}

/// Exact size in bytes of `encode_value(v)` (so encoders reserve once).
pub fn encoded_len(v: &Value) -> usize {
    match v {
        Value::Int(_) | Value::Double(_) => 9,
        Value::Bool(_) => 2,
        Value::Void | Value::Null => 1,
        Value::Domain(_, _) => 17,
        Value::Array(a) => {
            let a = a.borrow();
            match homogeneity(&a) {
                Homogeneous::F64 | Homogeneous::I64 => 9 + 8 * a.len(),
                Homogeneous::No => 9 + a.iter().map(encoded_len).sum::<usize>(),
            }
        }
        Value::Object(o) => {
            let o = o.borrow();
            let fields: usize = o
                .fields
                .iter()
                .map(|(k, v)| 4 + k.len() + encoded_len(v))
                .sum();
            1 + 4 + o.class.len() + 8 + fields
        }
    }
}

/// Append the encoding of `v` to `out`, reserving the exact size first.
/// Homogeneous `f64`/`i64` arrays travel as one contiguous LE run
/// (`TAG_ARRAY_F64`/`TAG_ARRAY_I64`) instead of per-element tagged
/// encodings — the common reduction-state shape is a large numeric array.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    out.reserve(encoded_len(v));
    encode_value_inner(v, out);
}

fn encode_value_inner(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(x) => {
            out.push(TAG_INT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Double(x) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Bool(x) => {
            out.push(TAG_BOOL);
            out.push(*x as u8);
        }
        Value::Void => out.push(TAG_VOID),
        Value::Null => out.push(TAG_NULL),
        Value::Domain(lo, hi) => {
            out.push(TAG_DOMAIN);
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        Value::Array(a) => {
            let a = a.borrow();
            match homogeneity(&a) {
                Homogeneous::F64 => {
                    out.push(TAG_ARRAY_F64);
                    out.extend_from_slice(&(a.len() as u64).to_le_bytes());
                    extend_u64_run(
                        out,
                        a.iter().map(|v| match v {
                            Value::Double(x) => x.to_bits(),
                            _ => unreachable!("homogeneity checked"),
                        }),
                    );
                }
                Homogeneous::I64 => {
                    out.push(TAG_ARRAY_I64);
                    out.extend_from_slice(&(a.len() as u64).to_le_bytes());
                    extend_u64_run(
                        out,
                        a.iter().map(|v| match v {
                            Value::Int(x) => *x as u64,
                            _ => unreachable!("homogeneity checked"),
                        }),
                    );
                }
                Homogeneous::No => {
                    out.push(TAG_ARRAY);
                    out.extend_from_slice(&(a.len() as u64).to_le_bytes());
                    for e in a.iter() {
                        encode_value_inner(e, out);
                    }
                }
            }
        }
        Value::Object(o) => {
            out.push(TAG_OBJECT);
            let o = o.borrow();
            encode_str(&o.class, out);
            // sorted fields for deterministic encodings
            let mut keys: Vec<&String> = o.fields.keys().collect();
            keys.sort();
            out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
            for k in keys {
                encode_str(k, out);
                encode_value_inner(&o.fields[k], out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode a named map of values (a filter's reduction state). The output
/// vector is reserved exactly once at its final size.
pub fn encode_state(state: &HashMap<String, Value>) -> Vec<u8> {
    let mut keys: Vec<&String> = state.keys().collect();
    keys.sort();
    let total: usize = 8 + keys
        .iter()
        .map(|k| 4 + k.len() + encoded_len(&state[*k]))
        .sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
    for k in keys {
        encode_str(k, &mut out);
        encode_value_inner(&state[k], &mut out);
    }
    debug_assert_eq!(out.len(), total, "encoded_len must be exact");
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| CodecError("malformed input: length overflows".into()))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| CodecError("unexpected end of input".into()))?;
        self.pos = end;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Validate a declared element/key count against the bytes actually left
    /// in the buffer *before* any allocation sized from it. Each element of
    /// the container needs at least `min_bytes_each` bytes of encoding, so a
    /// count exceeding `remaining / min_bytes_each` cannot possibly decode —
    /// reject it as malformed instead of letting `with_capacity` reserve
    /// attacker-chosen amounts of memory.
    fn check_count(&self, n: usize, min_bytes_each: usize) -> Result<(), CodecError> {
        let need = n.checked_mul(min_bytes_each);
        match need {
            Some(need) if need <= self.remaining() => Ok(()),
            _ => Err(CodecError(format!(
                "malformed input: declared count {n} needs >= {} bytes but only {} remain",
                n.saturating_mul(min_bytes_each),
                self.remaining()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| CodecError(e.to_string()))
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        match self.u8()? {
            TAG_INT => Ok(Value::Int(self.i64()?)),
            TAG_DOUBLE => Ok(Value::Double(f64::from_bits(self.u64()?))),
            TAG_BOOL => Ok(Value::Bool(self.u8()? != 0)),
            TAG_VOID => Ok(Value::Void),
            TAG_NULL => Ok(Value::Null),
            TAG_DOMAIN => Ok(Value::Domain(self.i64()?, self.i64()?)),
            TAG_ARRAY => {
                let n = self.u64()? as usize;
                // Every element takes at least one tag byte.
                self.check_count(n, 1)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(self.value()?);
                }
                Ok(Value::Array(Rc::new(RefCell::new(v))))
            }
            TAG_ARRAY_F64 => {
                let n = self.u64()? as usize;
                self.check_count(n, 8)?;
                // One bounds check for the whole run, then chunked LE
                // conversion straight off the slice.
                let run = self.take(n * 8)?;
                let v: Vec<Value> = run
                    .chunks_exact(8)
                    .map(|c| {
                        Value::Double(f64::from_bits(u64::from_le_bytes(
                            c.try_into().expect("8-byte chunk"),
                        )))
                    })
                    .collect();
                Ok(Value::Array(Rc::new(RefCell::new(v))))
            }
            TAG_ARRAY_I64 => {
                let n = self.u64()? as usize;
                self.check_count(n, 8)?;
                let run = self.take(n * 8)?;
                let v: Vec<Value> = run
                    .chunks_exact(8)
                    .map(|c| Value::Int(i64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
                    .collect();
                Ok(Value::Array(Rc::new(RefCell::new(v))))
            }
            TAG_OBJECT => {
                let class = self.string()?;
                let n = self.u64()? as usize;
                // Each entry needs a 4-byte key length plus a 1-byte value tag.
                self.check_count(n, 5)?;
                let mut fields = HashMap::with_capacity(n);
                for _ in 0..n {
                    let k = self.string()?;
                    fields.insert(k, self.value()?);
                }
                Ok(Value::Object(Rc::new(RefCell::new(ObjectVal {
                    class,
                    fields,
                }))))
            }
            t => Err(CodecError(format!("unknown tag {t}"))),
        }
    }
}

/// Decode one value.
pub fn decode_value(buf: &[u8]) -> Result<Value, CodecError> {
    let mut r = Reader { buf, pos: 0 };
    r.value()
}

/// Decode a state map produced by [`encode_state`].
pub fn decode_state(buf: &[u8]) -> Result<HashMap<String, Value>, CodecError> {
    let mut r = Reader { buf, pos: 0 };
    let n = r.u64()? as usize;
    // Each entry needs a 4-byte key length plus a 1-byte value tag.
    r.check_count(n, 5)?;
    let mut out = HashMap::with_capacity(n);
    for _ in 0..n {
        let k = r.string()?;
        out.insert(k, r.value()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let back = decode_value(&buf).unwrap();
        assert!(v.deep_eq(&back), "{v} vs {back}");
        back
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(Value::Int(-42));
        roundtrip(Value::Double(std::f64::consts::PI));
        roundtrip(Value::Bool(true));
        roundtrip(Value::Void);
        roundtrip(Value::Null);
        roundtrip(Value::Domain(3, 99));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let arr = Value::new_array(3, Value::Double(1.5));
        let mut fields = HashMap::new();
        fields.insert("xs".to_string(), arr);
        fields.insert("n".to_string(), Value::Int(7));
        let obj = Value::new_object("Acc", fields);
        let outer = Value::Array(Rc::new(RefCell::new(vec![obj, Value::Null])));
        roundtrip(outer);
    }

    #[test]
    fn state_map_roundtrip() {
        let mut st = HashMap::new();
        st.insert("acc".to_string(), Value::new_object("A", HashMap::new()));
        st.insert("count".to_string(), Value::Int(10));
        let buf = encode_state(&st);
        let back = decode_state(&buf).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back["count"].deep_eq(&Value::Int(10)));
    }

    #[test]
    fn homogeneous_arrays_use_bulk_tags_and_roundtrip() {
        // f64 run (larger than one conversion chunk, exercising the
        // chunked copy).
        let xs = Value::Array(Rc::new(RefCell::new(
            (0..1000).map(|i| Value::Double(i as f64 * 0.5)).collect(),
        )));
        let mut buf = Vec::new();
        encode_value(&xs, &mut buf);
        assert_eq!(buf[0], TAG_ARRAY_F64);
        assert_eq!(buf.len(), encoded_len(&xs));
        assert_eq!(
            buf.len(),
            9 + 8 * 1000,
            "count + raw run, no per-element tags"
        );
        assert!(decode_value(&buf).unwrap().deep_eq(&xs));

        // i64 run.
        let ys = Value::Array(Rc::new(RefCell::new((-500..500).map(Value::Int).collect())));
        let mut buf = Vec::new();
        encode_value(&ys, &mut buf);
        assert_eq!(buf[0], TAG_ARRAY_I64);
        assert!(decode_value(&buf).unwrap().deep_eq(&ys));

        // Mixed arrays keep the generic element-wise encoding.
        let mixed = Value::Array(Rc::new(RefCell::new(vec![
            Value::Int(1),
            Value::Double(2.0),
        ])));
        let mut buf = Vec::new();
        encode_value(&mixed, &mut buf);
        assert_eq!(buf[0], TAG_ARRAY);
        assert_eq!(buf.len(), encoded_len(&mixed));
        assert!(decode_value(&buf).unwrap().deep_eq(&mixed));
    }

    #[test]
    fn bulk_run_preserves_exotic_doubles() {
        let xs = Value::Array(Rc::new(RefCell::new(vec![
            Value::Double(f64::NAN),
            Value::Double(f64::INFINITY),
            Value::Double(-0.0),
            Value::Double(f64::MIN_POSITIVE),
        ])));
        let mut buf = Vec::new();
        encode_value(&xs, &mut buf);
        let Value::Array(back) = decode_value(&buf).unwrap() else {
            panic!("not an array");
        };
        let back = back.borrow();
        assert!(matches!(back[0], Value::Double(x) if x.is_nan()));
        assert!(matches!(back[1], Value::Double(x) if x == f64::INFINITY));
        assert!(matches!(back[2], Value::Double(x) if x == 0.0 && x.is_sign_negative()));
    }

    #[test]
    fn truncated_bulk_run_errors() {
        let xs = Value::Array(Rc::new(RefCell::new(
            (0..10).map(|i| Value::Double(i as f64)).collect(),
        )));
        let mut buf = Vec::new();
        encode_value(&xs, &mut buf);
        buf.truncate(buf.len() - 3);
        assert!(decode_value(&buf).is_err());
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        encode_value(&Value::Int(5), &mut buf);
        buf.truncate(buf.len() - 1);
        assert!(decode_value(&buf).is_err());
    }

    /// Build a header-only frame: `tag` followed by a u64 count, no payload.
    fn count_frame(tag: u8, n: u64) -> Vec<u8> {
        let mut buf = vec![tag];
        buf.extend_from_slice(&n.to_le_bytes());
        buf
    }

    #[test]
    fn oversized_count_prefix_is_rejected_before_allocating() {
        // A hostile frame declaring billions of elements with (almost) no
        // payload must be rejected up front — decoding it must neither
        // reserve gigabytes nor loop over the phantom elements.
        for tag in [TAG_ARRAY, TAG_ARRAY_F64, TAG_ARRAY_I64] {
            for n in [u64::MAX, u64::MAX / 8, 1 << 40, 1 << 21] {
                let err = decode_value(&count_frame(tag, n)).unwrap_err();
                assert!(err.0.contains("malformed"), "tag={tag} n={n}: {err}");
            }
        }
        // Object field count, after an empty class name.
        let mut buf = vec![TAG_OBJECT];
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_value(&buf).unwrap_err().0.contains("malformed"));
        // State-map entry count.
        let buf = u64::MAX.to_le_bytes().to_vec();
        assert!(decode_state(&buf).unwrap_err().0.contains("malformed"));
    }

    #[test]
    fn count_times_width_overflow_does_not_wrap() {
        // n * 8 would wrap to a small number in release builds without the
        // checked multiply; the declared count must still be rejected.
        let n = (u64::MAX / 8) + 1; // n * 8 wraps to 8 on u64
        let mut buf = count_frame(TAG_ARRAY_F64, n);
        buf.extend_from_slice(&[0u8; 16]);
        assert!(decode_value(&buf).is_err());
    }

    #[test]
    fn truncated_prefix_fuzz_every_length() {
        // Every proper prefix of a valid nested encoding must fail cleanly
        // (no panic, no bogus success).
        let mut fields = HashMap::new();
        fields.insert(
            "xs".to_string(),
            Value::Array(Rc::new(RefCell::new(
                (0..16).map(|i| Value::Double(i as f64)).collect(),
            ))),
        );
        fields.insert("n".to_string(), Value::Int(7));
        let v = Value::Array(Rc::new(RefCell::new(vec![
            Value::new_object("Acc", fields),
            Value::Domain(1, 9),
            Value::Bool(true),
        ])));
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        assert!(decode_value(&buf).is_ok());
        for cut in 0..buf.len() {
            assert!(decode_value(&buf[..cut]).is_err(), "prefix len {cut}");
        }
    }

    #[test]
    fn corrupted_count_bytes_never_panic() {
        // Flip each byte of a valid encoding to 0xff one at a time; decoding
        // may succeed or fail but must never panic or over-allocate.
        let mut st = HashMap::new();
        st.insert(
            "a".to_string(),
            Value::Array(Rc::new(RefCell::new((0..8).map(Value::Int).collect()))),
        );
        let buf = encode_state(&st);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] = 0xff;
            let _ = decode_state(&bad);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut f1 = HashMap::new();
        f1.insert("b".to_string(), Value::Int(1));
        f1.insert("a".to_string(), Value::Int(2));
        let o = Value::new_object("C", f1);
        let mut b1 = Vec::new();
        encode_value(&o, &mut b1);
        let mut b2 = Vec::new();
        encode_value(&o, &mut b2);
        assert_eq!(b1, b2);
    }
}
