//! A small self-describing codec for interpreter [`Value`]s.
//!
//! Used by the threaded executor's finalization protocol: each filter's
//! reduction-variable state must travel downstream as bytes at end-of-work.
//! (Per-packet data uses the compiler's typed [`cgp_compiler::packing`]
//! layouts instead — this codec is only for whole-object state transfer.)

use cgp_lang::value::{ObjectVal, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Encoding error (decode side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_VOID: u8 = 4;
const TAG_NULL: u8 = 5;
const TAG_DOMAIN: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;

/// Append the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(x) => {
            out.push(TAG_INT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Double(x) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Bool(x) => {
            out.push(TAG_BOOL);
            out.push(*x as u8);
        }
        Value::Void => out.push(TAG_VOID),
        Value::Null => out.push(TAG_NULL),
        Value::Domain(lo, hi) => {
            out.push(TAG_DOMAIN);
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        Value::Array(a) => {
            out.push(TAG_ARRAY);
            let a = a.borrow();
            out.extend_from_slice(&(a.len() as u64).to_le_bytes());
            for e in a.iter() {
                encode_value(e, out);
            }
        }
        Value::Object(o) => {
            out.push(TAG_OBJECT);
            let o = o.borrow();
            encode_str(&o.class, out);
            // sorted fields for deterministic encodings
            let mut keys: Vec<&String> = o.fields.keys().collect();
            keys.sort();
            out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
            for k in keys {
                encode_str(k, out);
                encode_value(&o.fields[k], out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode a named map of values (a filter's reduction state).
pub fn encode_state(state: &HashMap<String, Value>) -> Vec<u8> {
    let mut keys: Vec<&String> = state.keys().collect();
    keys.sort();
    let mut out = Vec::new();
    out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
    for k in keys {
        encode_str(k, &mut out);
        encode_value(&state[k], &mut out);
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos + n;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| CodecError("unexpected end of input".into()))?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| CodecError(e.to_string()))
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        match self.u8()? {
            TAG_INT => Ok(Value::Int(self.i64()?)),
            TAG_DOUBLE => Ok(Value::Double(f64::from_bits(self.u64()?))),
            TAG_BOOL => Ok(Value::Bool(self.u8()? != 0)),
            TAG_VOID => Ok(Value::Void),
            TAG_NULL => Ok(Value::Null),
            TAG_DOMAIN => Ok(Value::Domain(self.i64()?, self.i64()?)),
            TAG_ARRAY => {
                let n = self.u64()? as usize;
                let mut v = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    v.push(self.value()?);
                }
                Ok(Value::Array(Rc::new(RefCell::new(v))))
            }
            TAG_OBJECT => {
                let class = self.string()?;
                let n = self.u64()? as usize;
                let mut fields = HashMap::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let k = self.string()?;
                    fields.insert(k, self.value()?);
                }
                Ok(Value::Object(Rc::new(RefCell::new(ObjectVal {
                    class,
                    fields,
                }))))
            }
            t => Err(CodecError(format!("unknown tag {t}"))),
        }
    }
}

/// Decode one value.
pub fn decode_value(buf: &[u8]) -> Result<Value, CodecError> {
    let mut r = Reader { buf, pos: 0 };
    r.value()
}

/// Decode a state map produced by [`encode_state`].
pub fn decode_state(buf: &[u8]) -> Result<HashMap<String, Value>, CodecError> {
    let mut r = Reader { buf, pos: 0 };
    let n = r.u64()? as usize;
    let mut out = HashMap::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let k = r.string()?;
        out.insert(k, r.value()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let back = decode_value(&buf).unwrap();
        assert!(v.deep_eq(&back), "{v} vs {back}");
        back
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(Value::Int(-42));
        roundtrip(Value::Double(std::f64::consts::PI));
        roundtrip(Value::Bool(true));
        roundtrip(Value::Void);
        roundtrip(Value::Null);
        roundtrip(Value::Domain(3, 99));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let arr = Value::new_array(3, Value::Double(1.5));
        let mut fields = HashMap::new();
        fields.insert("xs".to_string(), arr);
        fields.insert("n".to_string(), Value::Int(7));
        let obj = Value::new_object("Acc", fields);
        let outer = Value::Array(Rc::new(RefCell::new(vec![obj, Value::Null])));
        roundtrip(outer);
    }

    #[test]
    fn state_map_roundtrip() {
        let mut st = HashMap::new();
        st.insert("acc".to_string(), Value::new_object("A", HashMap::new()));
        st.insert("count".to_string(), Value::Int(10));
        let buf = encode_state(&st);
        let back = decode_state(&buf).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back["count"].deep_eq(&Value::Int(10)));
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        encode_value(&Value::Int(5), &mut buf);
        buf.truncate(buf.len() - 1);
        assert!(decode_value(&buf).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut f1 = HashMap::new();
        f1.insert("b".to_string(), Value::Int(1));
        f1.insert("a".to_string(), Value::Int(2));
        let o = Value::new_object("C", f1);
        let mut b1 = Vec::new();
        encode_value(&o, &mut b1);
        let mut b2 = Vec::new();
        encode_value(&o, &mut b2);
        assert_eq!(b1, b2);
    }
}
