//! Integration tests for the live telemetry plane: in-process sampling,
//! latency percentiles, and cross-process aggregation over real sockets.

use cgp_datacutter::{
    decode_frame, decode_telemetry_payload, encode_frame, encode_telemetry_payload,
    serve_telemetry, Buffer, ClosureFilter, FilterIo, Frame, Pipeline, RunControl, StageSpec,
    TelemetryClient, TelemetryConfig, WorkerEndpoints,
};
use cgp_obs::{MetricsRegistry, TelemetrySampler};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Three-stage source → double → sum pipeline; `total` receives the sum.
fn pipeline(n: u64, width: usize, total: Arc<AtomicU64>) -> Pipeline {
    Pipeline::new()
        .with_capacity(8)
        .add_stage(StageSpec::new(
            "source",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("source", move |io: &mut FilterIo| {
                    for i in 0..n {
                        io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "double",
            width,
            Box::new(|_| {
                Box::new(ClosureFilter::new("double", |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                        io.write(Buffer::from_vec((v * 2).to_le_bytes().to_vec()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "sum",
            1,
            Box::new(move |_| {
                let total = Arc::clone(&total);
                Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                        total.fetch_add(v, Ordering::Relaxed);
                    }
                    Ok(())
                }))
            }),
        ))
}

/// In-process run with telemetry attached: latency histograms fill, the
/// sampler records at least the final fin sample, calibration counters
/// land in the registry — and the computed result is identical to an
/// untelemetered run.
#[test]
fn in_process_telemetry_records_latencies_and_counters() {
    let plain = Arc::new(AtomicU64::new(0));
    pipeline(200, 2, Arc::clone(&plain)).run().unwrap();
    let expect = plain.load(Ordering::Relaxed);

    let total = Arc::new(AtomicU64::new(0));
    let sampler = Arc::new(TelemetrySampler::new(Duration::from_millis(5)));
    let registry = Arc::new(Mutex::new(MetricsRegistry::new()));
    let stats = pipeline(200, 2, Arc::clone(&total))
        .with_metrics(Arc::clone(&registry))
        .with_telemetry(TelemetryConfig::new(Arc::clone(&sampler), "local"))
        .run()
        .unwrap();
    assert_eq!(total.load(Ordering::Relaxed), expect, "output unchanged");

    // Every packet that crossed a stream got a residence measurement;
    // every packet delivered at the sink got an end-to-end one.
    assert_eq!(stats.stages[1].residence_us.count, 200, "double residence");
    assert_eq!(stats.stages[2].residence_us.count, 200, "sum residence");
    assert_eq!(stats.e2e_us.count, 200, "end-to-end at the sink");
    assert!(stats.e2e_us.percentile(0.5) <= stats.e2e_us.percentile(0.99));

    // The final fin-stamped sample is always recorded.
    assert!(sampler.samples() >= 1);
    let last = sampler.latest().expect("final sample");
    assert!(last.fin);
    assert_eq!(last.source, "local");
    assert_eq!(last.e2e_count, 200);
    assert_eq!(last.stages.len(), 3);
    let sum_stage = last.stages.iter().find(|s| s.stage == "sum").unwrap();
    assert_eq!(sum_stage.buffers_in, 200);
    assert!(
        sum_stage.busy_us_per_copy[0] > 0,
        "finished copy reports busy time"
    );

    // Calibration counters + histograms in the registry.
    let reg = registry.lock().unwrap();
    assert_eq!(reg.get_counter("stage.double.buffers_in"), 200);
    assert_eq!(reg.get_counter("stage.double.buffers_out"), 200);
    assert!(reg.get_counter("stage.sum.busy_us") > 0);
    assert_eq!(
        reg.get_histogram("stage.sum.residence_us").unwrap().count,
        200
    );
    assert_eq!(reg.get_histogram("pipeline.e2e_us").unwrap().count, 200);
}

/// Telemetry off: no histograms, no sampler, no calibration counters —
/// and the result is still exact.
#[test]
fn telemetry_off_leaves_no_trace() {
    let total = Arc::new(AtomicU64::new(0));
    let registry = Arc::new(Mutex::new(MetricsRegistry::new()));
    let stats = pipeline(50, 2, Arc::clone(&total))
        .with_metrics(Arc::clone(&registry))
        .run()
        .unwrap();
    assert_eq!(stats.e2e_us.count, 0);
    assert!(stats.stages.iter().all(|s| s.residence_us.count == 0));
    let reg = registry.lock().unwrap();
    assert_eq!(reg.get_counter("stage.double.buffers_in"), 0);
    assert!(reg.get_histogram("pipeline.e2e_us").is_none());
}

/// The wire-merge satellite: worker-side registry snapshots round-trip
/// through a real `Telemetry` frame encode/decode and the launcher-side
/// merge equals the in-process merge — including `net.link<k>.*` keys.
#[test]
fn wire_merge_equals_in_process_registry() {
    let mut worker1 = MetricsRegistry::new();
    worker1.counter("net.link1.frames", 100);
    worker1.counter("net.link1.bytes", 800);
    worker1.counter("stage.double.busy_us", 1234);
    worker1.counter("stage.double.buffers_in", 100);
    for v in [10, 20, 300] {
        worker1.observe("stage.double.residence_us", v);
    }
    let mut worker2 = MetricsRegistry::new();
    worker2.counter("net.link1.frames", 7); // overlaps worker1
    worker2.counter("net.link2.frames", 100);
    worker2.counter("stage.sum.busy_us", 999);
    for v in [5, 15, 25, 1000] {
        worker2.observe("pipeline.e2e_us", v);
    }

    // Reference: merge the two registries directly in-process.
    let mut reference = MetricsRegistry::new();
    reference.merge(&worker1);
    reference.merge(&worker2);

    // Wire path: payload → Telemetry frame → raw bytes → decode → merge.
    let mut merged = MetricsRegistry::new();
    for (source, reg) in [("worker:1", &worker1), ("worker:2", &worker2)] {
        let payload = encode_telemetry_payload(source, true, None, Some(reg));
        let bytes = encode_frame(&Frame::Telemetry { payload });
        let Ok((Frame::Telemetry { payload }, used)) = decode_frame(&bytes) else {
            panic!("telemetry frame must decode");
        };
        assert_eq!(used, bytes.len());
        let update = decode_telemetry_payload(&payload).unwrap();
        assert_eq!(update.source, source);
        assert!(update.fin);
        merged.merge(&update.registry.unwrap());
    }

    assert_eq!(
        merged.get_counter("net.link1.frames"),
        reference.get_counter("net.link1.frames")
    );
    for (name, value) in reference.counters() {
        assert_eq!(merged.get_counter(name), value, "counter {name}");
    }
    for (name, h) in reference.histograms() {
        assert_eq!(merged.get_histogram(name), Some(h), "histogram {name}");
    }
}

/// Cross-process aggregation over real sockets: three workers ship
/// samples and final registries to a launcher-side `serve_telemetry`
/// loop; every worker shows up, the merged registry covers every stage,
/// and the distributed result matches the in-process run.
#[test]
fn three_workers_ship_telemetry_to_the_launcher() {
    let plain = Arc::new(AtomicU64::new(0));
    pipeline(100, 2, Arc::clone(&plain)).run().unwrap();
    let expect = plain.load(Ordering::Relaxed);

    let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
    let l2 = TcpListener::bind("127.0.0.1:0").unwrap();
    let lt = TcpListener::bind("127.0.0.1:0").unwrap();
    let a1 = l1.local_addr().unwrap().to_string();
    let a2 = l2.local_addr().unwrap().to_string();
    let at = lt.local_addr().unwrap().to_string();
    let total = Arc::new(AtomicU64::new(0));
    let mut listeners = [None, Some(l1), Some(l2)];
    let connects = [Some(a1), Some(a2), None];

    // Launcher-side aggregator: keep the LATEST registry per source
    // (snapshots are cumulative), merge only at the end.
    type Update = (String, bool, Option<MetricsRegistry>);
    let updates: Arc<Mutex<Vec<Update>>> = Arc::new(Mutex::new(Vec::new()));
    let u2 = Arc::clone(&updates);
    let serve = std::thread::spawn(move || {
        serve_telemetry(lt, 3, None, move |_, payload| {
            if let Ok(up) = decode_telemetry_payload(&payload) {
                u2.lock().unwrap().push((up.source, up.fin, up.registry));
            }
        })
    });

    std::thread::scope(|scope| {
        for stage in 0..3 {
            let listener = listeners[stage].take();
            let connect = connects[stage].clone();
            let total = Arc::clone(&total);
            let at = at.clone();
            scope.spawn(move || {
                let sampler = Arc::new(TelemetrySampler::new(Duration::from_millis(5)));
                let registry = Arc::new(Mutex::new(MetricsRegistry::new()));
                pipeline(100, 2, total)
                    .with_metrics(registry)
                    .with_telemetry(
                        TelemetryConfig::new(sampler, format!("worker:{stage}")).ship_to(at),
                    )
                    .run_worker(WorkerEndpoints {
                        stage,
                        listener,
                        shm_ingress: None,
                        connect,
                    })
                    .unwrap_or_else(|e| panic!("worker {stage}: {e}"));
            });
        }
    });
    serve.join().unwrap().unwrap();
    assert_eq!(total.load(Ordering::Relaxed), expect, "output unchanged");

    let updates = updates.lock().unwrap();
    let mut latest: Vec<(String, MetricsRegistry)> = Vec::new();
    for stage in 0..3 {
        let source = format!("worker:{stage}");
        let fin = updates
            .iter()
            .find(|(s, fin, _)| *s == source && *fin)
            .unwrap_or_else(|| panic!("{source} must ship a final update"));
        latest.push((
            source,
            fin.2.clone().expect("final update carries registry"),
        ));
    }
    let mut merged = MetricsRegistry::new();
    for (_, reg) in &latest {
        merged.merge(reg);
    }
    // Every boundary link and every stage is visible in the merge.
    assert_eq!(merged.get_counter("net.link1.frames"), 200, "tx + rx");
    assert_eq!(merged.get_counter("net.link2.frames"), 200);
    assert_eq!(merged.get_counter("stage.source.buffers_out"), 100);
    assert_eq!(merged.get_counter("stage.double.buffers_in"), 100);
    assert_eq!(merged.get_counter("stage.sum.buffers_in"), 100);
    assert!(merged.get_counter("stage.double.busy_us") > 0);
    // Residence is measured on both TCP hops (fresh ingress stamps).
    assert_eq!(
        merged
            .get_histogram("stage.double.residence_us")
            .unwrap()
            .count,
        100
    );
    assert_eq!(
        merged
            .get_histogram("stage.sum.residence_us")
            .unwrap()
            .count,
        100
    );
    // End-to-end needs origin stamps, which never cross a process
    // boundary (per-process clocks aren't comparable): absent here.
    assert!(merged.get_histogram("pipeline.e2e_us").is_none());
}

/// A worker whose launcher vanished mid-run must still finish cleanly:
/// shipping is best-effort.
#[test]
fn dead_aggregator_never_fails_the_run() {
    let lt = TcpListener::bind("127.0.0.1:0").unwrap();
    let at = lt.local_addr().unwrap().to_string();
    // Accept one connection, handshake, then slam it shut.
    let accept = std::thread::spawn(move || {
        serve_telemetry(lt, 1, Some(RunControl::new()), |_, _| {
            panic!("no payload expected before the drop")
        })
    });
    // Connect and drop immediately: the worker-side client sees a dead
    // peer on its first send.
    let client = TelemetryClient::connect(&at, 0, None).unwrap();
    drop(client);
    // The serve loop sees the disconnect and returns.
    accept.join().unwrap().unwrap();

    let total = Arc::new(AtomicU64::new(0));
    let sampler = Arc::new(TelemetrySampler::new(Duration::from_millis(5)));
    // Ship to a port with nothing listening: connects fail, run succeeds.
    pipeline(50, 1, Arc::clone(&total))
        .with_telemetry(TelemetryConfig::new(sampler, "local").ship_to("127.0.0.1:1"))
        .run()
        .unwrap();
    assert_eq!(
        total.load(Ordering::Relaxed),
        (0..50u64).map(|i| i * 2).sum()
    );
}
