//! Recovery suite: under panic / retryable-failure / delay injection with
//! recovery enabled, a pipeline must *complete* with effectively-exactly-
//! once results — the sink sees every packet exactly once and every
//! stateful stage's reduction equals the fault-free value — and must leak
//! no threads doing it.
//!
//! Drop faults are deliberately excluded from the exactness properties:
//! `DropPacket` models intentional loss at the injection point, which
//! recovery does not (and must not) resurrect.

use cgp_datacutter::{
    Buffer, CheckpointStore, ClosureFilter, FaultAction, FaultPlan, FaultRule, Filter, FilterIo,
    FilterResult, Pipeline, RecoveryOptions, RetryPolicy, StageSpec, Trigger,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const N: u64 = 300;
/// Marker packets (a stage's end-of-work reduction shipped to the sink)
/// are 24 bytes: magic, stage id, sum.
const MARKER_MAGIC: u64 = u64::MAX;

fn source(n: u64) -> cgp_datacutter::FilterFactory {
    Box::new(move |_| {
        Box::new(ClosureFilter::new("source", move |io: &mut FilterIo| {
            for i in 0..n {
                io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
            }
            Ok(())
        }))
    })
}

/// A stateful stage: forwards every data packet unchanged while keeping a
/// running sum (its reduction state), checkpointing via the runtime's
/// protocol and emitting the final sum as a marker packet at end-of-work.
struct StatefulSum {
    stage_id: u64,
    sum: u64,
}

impl Filter for StatefulSum {
    fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        while let Some(b) = io.read() {
            if b.len() == 24 {
                // An upstream stage's marker: forward untouched.
                io.write(b)?;
                continue;
            }
            self.sum = self.sum.wrapping_add(b.u64_le("stateful-sum")?);
            io.write(b)?;
            if io.checkpoint_due() {
                io.commit_checkpoint(&self.sum.to_le_bytes())?;
            }
        }
        let mut m = Vec::with_capacity(24);
        m.extend_from_slice(&MARKER_MAGIC.to_le_bytes());
        m.extend_from_slice(&self.stage_id.to_le_bytes());
        m.extend_from_slice(&self.sum.to_le_bytes());
        io.write(Buffer::from_vec(m))?;
        Ok(())
    }

    fn restore(&mut self, snapshot: &[u8]) -> FilterResult<()> {
        self.sum =
            u64::from_le_bytes(snapshot.try_into().map_err(|_| {
                cgp_datacutter::FilterError::malformed("stateful-sum", "bad snapshot")
            })?);
        Ok(())
    }

    fn name(&self) -> &str {
        "stateful-sum"
    }
}

fn stateful(stage_id: u64) -> cgp_datacutter::FilterFactory {
    Box::new(move |_| Box::new(StatefulSum { stage_id, sum: 0 }))
}

/// Sink tallies: packets seen, their sum, and each stage's marker sums.
#[derive(Default)]
struct Tally {
    count: AtomicU64,
    sum: AtomicU64,
    markers: Mutex<Vec<(u64, u64)>>,
}

fn sink(tally: Arc<Tally>) -> cgp_datacutter::FilterFactory {
    Box::new(move |_| {
        let tally = Arc::clone(&tally);
        Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
            while let Some(b) = io.read() {
                if b.len() == 24 {
                    let s = b.as_slice();
                    let stage = u64::from_le_bytes(s[8..16].try_into().unwrap());
                    let sum = u64::from_le_bytes(s[16..24].try_into().unwrap());
                    tally.markers.lock().unwrap().push((stage, sum));
                } else {
                    tally.count.fetch_add(1, Ordering::Relaxed);
                    tally.sum.fetch_add(b.u64_le("sink")?, Ordering::Relaxed);
                }
            }
            Ok(())
        }))
    })
}

/// source → stateful mid1 (width 2) → stateful mid2 → counting sink.
fn recovering_pipeline(tally: Arc<Tally>, checkpoint_every: u64) -> Pipeline {
    Pipeline::new()
        .with_capacity(8)
        .with_deadline(Duration::from_secs(60))
        .with_retry(RetryPolicy::retries(3).with_backoff(Duration::from_millis(1)))
        .with_recovery(
            RecoveryOptions::on()
                .with_checkpoint_every(checkpoint_every)
                .with_max_restarts(8),
        )
        .add_stage(StageSpec::new("source", 1, source(N)))
        .add_stage(StageSpec::new("mid1", 2, stateful(1)).stateful())
        .add_stage(StageSpec::new("mid2", 1, stateful(2)).stateful())
        .add_stage(StageSpec::new("sink", 1, sink(tally)))
}

fn expected_sum() -> u64 {
    (0..N).sum()
}

/// Assert the exactly-once properties: every packet reached the sink once,
/// and every stateful stage's reduction matches the fault-free value.
fn assert_exact(tally: &Tally, ctx: &str) {
    assert_eq!(
        tally.count.load(Ordering::Relaxed),
        N,
        "{ctx}: sink must see every packet exactly once"
    );
    assert_eq!(
        tally.sum.load(Ordering::Relaxed),
        expected_sum(),
        "{ctx}: no duplicated or lost packet values"
    );
    let markers = tally.markers.lock().unwrap();
    for stage in [1u64, 2] {
        let total: u64 = markers
            .iter()
            .filter(|(s, _)| *s == stage)
            .map(|(_, v)| v)
            .sum();
        assert_eq!(
            total,
            expected_sum(),
            "{ctx}: stage {stage} reduction must match the fault-free run"
        );
    }
    let stage1 = markers.iter().filter(|(s, _)| *s == 1).count();
    let stage2 = markers.iter().filter(|(s, _)| *s == 2).count();
    assert_eq!((stage1, stage2), (2, 1), "{ctx}: one marker per copy");
}

/// Deterministic per-seed pseudo-random fault plans over the recoverable
/// actions (panic, retryable fail, delay) at random stages/copies/packets.
fn random_plan(seed: u64) -> FaultPlan {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    };
    let mut plan = FaultPlan::new();
    for _ in 0..(1 + next() % 3) {
        let (stage, copies) = if next() % 2 == 0 {
            ("mid1", 2)
        } else {
            ("mid2", 1)
        };
        let copy = (next() % copies) as usize;
        let packet = next() % 120;
        plan = plan.rule(FaultRule {
            stage: Some(stage.into()),
            copy: Some(copy),
            trigger: Trigger::Packet(packet),
            action: match next() % 3 {
                0 => FaultAction::Panic,
                1 => FaultAction::Fail { retryable: true },
                _ => FaultAction::Delay(Duration::from_millis(2)),
            },
        });
    }
    plan
}

#[test]
fn recovery_is_exactly_once_under_random_fault_plans() {
    for seed in 0..10u64 {
        let tally = Arc::new(Tally::default());
        let plan = random_plan(seed);
        let stats = recovering_pipeline(Arc::clone(&tally), 16)
            .with_faults(plan.clone())
            .run()
            .unwrap_or_else(|e| panic!("seed {seed}: recovery must complete ({plan:?}): {e}"));
        assert_exact(&tally, &format!("seed {seed}"));
        // Replays stay bounded by checkpoint spacing + channel capacity
        // per restart.
        assert!(
            stats.replayed_packets()
                <= stats.recoveries() * (16 + 8 + 2) + stats.retries() * (16 + 8 + 2),
            "seed {seed}: replay bounded: {} replayed over {} restarts",
            stats.replayed_packets(),
            stats.recoveries()
        );
    }
}

#[test]
fn fault_free_recovery_run_is_exact_with_zero_overhead_counters() {
    let tally = Arc::new(Tally::default());
    let stats = recovering_pipeline(Arc::clone(&tally), 16)
        .run()
        .expect("clean run");
    assert_exact(&tally, "fault-free");
    assert_eq!(stats.recoveries(), 0);
    assert_eq!(stats.replayed_packets(), 0);
    assert!(stats.checkpoints() > 0, "stateful stages still checkpoint");
}

#[test]
fn recovered_run_matches_fault_free_run_byte_for_byte() {
    let clean = Arc::new(Tally::default());
    recovering_pipeline(Arc::clone(&clean), 16)
        .run()
        .expect("clean run");
    let chaotic = Arc::new(Tally::default());
    let stats = recovering_pipeline(Arc::clone(&chaotic), 16)
        .with_faults(
            FaultPlan::new()
                .panic_at("mid1", 0, 40)
                .panic_at("mid2", 0, 90),
        )
        .run()
        .expect("recovery completes");
    assert!(stats.recoveries() >= 2);
    assert_eq!(
        clean.count.load(Ordering::Relaxed),
        chaotic.count.load(Ordering::Relaxed)
    );
    assert_eq!(
        clean.sum.load(Ordering::Relaxed),
        chaotic.sum.load(Ordering::Relaxed)
    );
    let mut a = clean.markers.lock().unwrap().clone();
    let mut b = chaotic.markers.lock().unwrap().clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "per-stage reductions identical to the clean run");
}

#[test]
fn jsonl_checkpoint_log_records_commits() {
    let path = format!(
        "{}/recovery_ckpt_{}.jsonl",
        env!("CARGO_TARGET_TMPDIR"),
        std::process::id()
    );
    let _ = std::fs::remove_file(&path);
    let store = CheckpointStore::with_jsonl(&path).expect("create checkpoint log");
    let tally = Arc::new(Tally::default());
    recovering_pipeline(Arc::clone(&tally), 16)
        .with_checkpoint_store(store.clone())
        .with_faults(FaultPlan::new().panic_at("mid2", 0, 100))
        .run()
        .expect("recovery completes");
    assert_exact(&tally, "jsonl");
    let log = std::fs::read_to_string(&path).expect("read checkpoint log");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len() as u64, store.commits(), "one line per commit");
    assert!(store.commits() > 0);
    for l in &lines {
        assert!(
            l.starts_with('{') && l.ends_with('}') && l.contains("\"stage\""),
            "JSONL line shape: {l}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Current thread count of this process (Linux; leak checks gated on it).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[cfg(target_os = "linux")]
#[test]
fn recovery_chaos_leaks_no_threads() {
    // Warm up, then hammer the restart path: every recovery attempt must
    // join its replaced worker threads.
    let tally = Arc::new(Tally::default());
    let _ = recovering_pipeline(Arc::clone(&tally), 16).run();
    let before = thread_count();
    for seed in 0..3u64 {
        let tally = Arc::new(Tally::default());
        let _ = recovering_pipeline(Arc::clone(&tally), 8)
            .with_faults(random_plan(seed))
            .run();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let after = thread_count();
        if after <= before {
            break;
        }
        if std::time::Instant::now() > deadline {
            panic!("thread count must return to baseline: before={before} after={after}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
