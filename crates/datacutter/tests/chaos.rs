//! Chaos suite: the runtime must terminate promptly, with a structured
//! error naming the failing stage and copy, under every injected failure
//! mode — no hangs, no secondary panics, no leaked threads.

use cgp_datacutter::{
    Buffer, ClosureFilter, ErrorKind, FaultAction, FaultPlan, FaultRule, FilterError, FilterIo,
    Pipeline, RetryPolicy, StageSpec, Trigger,
};
use cgp_obs::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const N: u64 = 500;

fn source(n: u64) -> cgp_datacutter::FilterFactory {
    Box::new(move |_| {
        Box::new(ClosureFilter::new("source", move |io: &mut FilterIo| {
            for i in 0..n {
                io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
            }
            Ok(())
        }))
    })
}

fn forward() -> cgp_datacutter::FilterFactory {
    Box::new(|_| {
        Box::new(ClosureFilter::new("mid", |io: &mut FilterIo| {
            while let Some(b) = io.read() {
                io.write(b)?;
            }
            Ok(())
        }))
    })
}

fn counting_sink(count: Arc<AtomicU64>) -> cgp_datacutter::FilterFactory {
    Box::new(move |_| {
        let count = Arc::clone(&count);
        Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
            while io.read().is_some() {
                count.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        }))
    })
}

fn three_stage(mid_width: usize, count: Arc<AtomicU64>) -> Pipeline {
    Pipeline::new()
        .with_capacity(8)
        .add_stage(StageSpec::new("source", 1, source(N)))
        .add_stage(StageSpec::new("mid", mid_width, forward()))
        .add_stage(StageSpec::new("sink", 1, counting_sink(count)))
}

/// Current thread count of this process (Linux; the suite's leak checks
/// are gated on it).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn panic_mid_stream_terminates_with_named_error() {
    let count = Arc::new(AtomicU64::new(0));
    let t = Instant::now();
    let err = three_stage(2, count)
        .with_faults(FaultPlan::new().panic_at("mid", 1, 50))
        .with_deadline(Duration::from_secs(30))
        .run()
        .expect_err("injected panic must fail the run");
    assert_eq!(err.kind, ErrorKind::Panicked);
    assert_eq!(err.filter, "mid[1]", "error names stage and copy: {err}");
    assert!(err.message.contains("packet 50"), "{err}");
    assert!(t.elapsed() < Duration::from_secs(10), "no hang on panic");
}

#[test]
fn error_after_n_packets_terminates_and_counts() {
    let count = Arc::new(AtomicU64::new(0));
    let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
    let err = three_stage(1, count)
        .with_faults(FaultPlan::new().fail_at("mid", 0, 100))
        .with_deadline(Duration::from_secs(30))
        .with_metrics(Arc::clone(&metrics))
        .run()
        .expect_err("injected failure must fail the run");
    assert_eq!(err.kind, ErrorKind::Failed);
    assert_eq!(err.filter, "mid[0]");
    assert!(!err.retryable);
    let reg = metrics.lock().unwrap();
    assert_eq!(reg.get_counter("stage.mid.failures"), 1);
    assert_eq!(reg.get_counter("stage.mid.panics"), 0);
}

#[test]
fn retryable_failure_recovers_under_retry_policy() {
    // The source fails retryably on its very first packet — before any
    // output — so re-running the unit of work is safe and the pipeline
    // completes with the full data set.
    let count = Arc::new(AtomicU64::new(0));
    let plan = FaultPlan::new().rule(FaultRule {
        stage: Some("source".into()),
        copy: Some(0),
        trigger: Trigger::Packet(0),
        action: FaultAction::Fail { retryable: true },
    });
    let stats = three_stage(1, Arc::clone(&count))
        .with_faults(plan)
        .with_retry(RetryPolicy::retries(3).with_backoff(Duration::from_millis(1)))
        .with_deadline(Duration::from_secs(30))
        .run()
        .expect("retry must recover a retryable failure");
    assert_eq!(count.load(Ordering::Relaxed), N);
    assert_eq!(stats.retries(), 1);
    assert_eq!(stats.failures(), 1, "the failed attempt is still counted");
}

#[test]
fn retries_exhausted_surfaces_the_error() {
    let count = Arc::new(AtomicU64::new(0));
    let plan = FaultPlan::new().rule(FaultRule {
        stage: Some("mid".into()),
        copy: Some(0),
        trigger: Trigger::Every,
        action: FaultAction::Fail { retryable: true },
    });
    let err = three_stage(1, count)
        .with_faults(plan)
        .with_retry(RetryPolicy::retries(2).with_backoff(Duration::from_millis(1)))
        .with_deadline(Duration::from_secs(30))
        .run()
        .expect_err("always-failing stage exhausts retries");
    assert_eq!(err.kind, ErrorKind::Failed);
    assert!(err.retryable, "the surfaced error keeps its retryable flag");
    assert_eq!(err.filter, "mid[0]");
}

#[test]
fn injected_stall_is_caught_by_deadline_and_names_the_blockage() {
    // A sink that never reads wedges the whole pipeline: the source
    // fills the queues and blocks in send. The watchdog must cancel,
    // every thread must join, and the error must say who was stuck.
    let t = Instant::now();
    let err = Pipeline::new()
        .with_capacity(2)
        .with_deadline(Duration::from_millis(250))
        .add_stage(StageSpec::new("source", 1, source(N)))
        .add_stage(StageSpec::new(
            "wedged",
            1,
            Box::new(|_| {
                Box::new(ClosureFilter::new("wedged", |io: &mut FilterIo| {
                    while !io.cancelled() {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(FilterError::cancelled("wedged", "cancelled"))
                }))
            }),
        ))
        .run()
        .expect_err("stalled run must fail");
    assert_eq!(err.kind, ErrorKind::Stalled);
    assert!(err.message.contains("deadline"), "{err}");
    assert!(
        err.message.contains("source[0] blocked in send"),
        "stall report names the blocked copy: {err}"
    );
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "watchdog fired promptly"
    );
}

#[test]
fn stall_timeout_catches_no_progress() {
    let t = Instant::now();
    let err = Pipeline::new()
        .with_capacity(2)
        .with_stall_timeout(Duration::from_millis(200))
        .add_stage(StageSpec::new("source", 1, source(N)))
        .add_stage(StageSpec::new(
            "wedged",
            1,
            Box::new(|_| {
                Box::new(ClosureFilter::new("wedged", |io: &mut FilterIo| {
                    while !io.cancelled() {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Ok(())
                }))
            }),
        ))
        .run()
        .expect_err("stalled run must fail");
    assert_eq!(err.kind, ErrorKind::Stalled);
    assert!(err.message.contains("stall timeout"), "{err}");
    assert!(t.elapsed() < Duration::from_secs(5));
}

#[test]
fn dropped_packets_reduce_delivery_without_failing() {
    let count = Arc::new(AtomicU64::new(0));
    let stats = three_stage(1, Arc::clone(&count))
        .with_faults(FaultPlan::new().drop_at("mid", 0, 10).drop_at("mid", 0, 20))
        .run()
        .expect("drops are silent");
    assert_eq!(count.load(Ordering::Relaxed), N - 2);
    assert_eq!(stats.failures(), 0);
}

#[test]
fn probabilistic_faults_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let count = Arc::new(AtomicU64::new(0));
        let plan = FaultPlan::new().with_seed(seed).rule(FaultRule {
            stage: Some("mid".into()),
            copy: None,
            trigger: Trigger::Prob(0.2),
            action: FaultAction::DropPacket,
        });
        three_stage(1, Arc::clone(&count))
            .with_faults(plan)
            .run()
            .expect("drops are silent");
        count.load(Ordering::Relaxed)
    };
    let a = run(7);
    assert_eq!(a, run(7), "same seed, same drops");
    assert!(a < N, "some packets dropped");
    assert_ne!(a, run(8), "different seed, different drops");
}

#[test]
fn panic_in_one_copy_does_not_poison_siblings_stats() {
    // Width-4 middle stage, one copy panics; the other three finish and
    // their stats still aggregate (poison-tolerant locking).
    let count = Arc::new(AtomicU64::new(0));
    let err = three_stage(4, Arc::clone(&count))
        .with_faults(FaultPlan::new().panic_at("mid", 2, 0))
        .with_deadline(Duration::from_secs(30))
        .run()
        .expect_err("one copy panicked");
    assert_eq!(err.filter, "mid[2]");
    // Siblings forwarded their share before/while the panic unwound.
    assert!(count.load(Ordering::Relaxed) > 0, "siblings made progress");
}

#[cfg(target_os = "linux")]
#[test]
fn no_leaked_threads_after_failures() {
    // Warm up then measure: every failure mode must join all its threads.
    let count = Arc::new(AtomicU64::new(0));
    let _ = three_stage(2, Arc::clone(&count)).run();
    let before = thread_count();
    for _ in 0..3 {
        let _ = three_stage(2, Arc::clone(&count))
            .with_faults(FaultPlan::new().panic_at("mid", 0, 10))
            .with_deadline(Duration::from_secs(30))
            .run();
        let _ = Pipeline::new()
            .with_capacity(2)
            .with_deadline(Duration::from_millis(100))
            .add_stage(StageSpec::new("source", 1, source(N)))
            .add_stage(StageSpec::new(
                "wedged",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("wedged", |io: &mut FilterIo| {
                        while !io.cancelled() {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Ok(())
                    }))
                }),
            ))
            .run();
    }
    // The count is process-wide and other tests in this binary spawn
    // pipelines concurrently, so poll until it settles back rather than
    // sampling once.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let after = thread_count();
        if after <= before {
            break;
        }
        if Instant::now() > deadline {
            panic!("thread count must return to baseline: before={before} after={after}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn faults_target_exact_packet_indices_through_batches() {
    // Transport batching must not smear per-packet fault semantics:
    // injection happens at the FilterIo boundary, so with an 8-packet
    // batch a panic at packet 123 of mid[1] still fires there and the
    // error still names that exact packet.
    let count = Arc::new(AtomicU64::new(0));
    let err = three_stage(2, count)
        .with_batch(8)
        .with_faults(FaultPlan::new().panic_at("mid", 1, 123))
        .with_deadline(Duration::from_secs(30))
        .run()
        .expect_err("injected panic must fail the batched run");
    assert_eq!(err.kind, ErrorKind::Panicked);
    assert_eq!(err.filter, "mid[1]", "{err}");
    assert!(err.message.contains("packet 123"), "{err}");

    // Drops remove exactly the targeted packets, nothing adjacent in
    // the same batch.
    let count = Arc::new(AtomicU64::new(0));
    let stats = three_stage(1, Arc::clone(&count))
        .with_batch(8)
        .with_faults(FaultPlan::new().drop_at("mid", 0, 10).drop_at("mid", 0, 20))
        .run()
        .expect("drops are silent");
    assert_eq!(count.load(Ordering::Relaxed), N - 2);
    assert_eq!(stats.failures(), 0);
}

#[test]
fn spec_parsed_plan_behaves_like_builder_plan() {
    let count = Arc::new(AtomicU64::new(0));
    let plan = FaultPlan::parse("mid[0]@25:panic").expect("valid spec");
    let err = three_stage(1, count)
        .with_faults(plan)
        .with_deadline(Duration::from_secs(30))
        .run()
        .expect_err("parsed panic fires");
    assert_eq!(err.kind, ErrorKind::Panicked);
    assert_eq!(err.filter, "mid[0]");
    assert!(err.message.contains("packet 25"), "{err}");
}
