//! Loopback-TCP integration tests for the distributed stream transport:
//! real sockets, real worker topologies, chaos through the wire.

use cgp_datacutter::{
    egress_pump, logical_stream, serve_ingress, Buffer, ClosureFilter, Distribution, FaultPlan,
    FilterIo, Frame, Pipeline, RecoveryOptions, RunControl, StageSpec, WorkerEndpoints,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Encode a frame to raw bytes (tests drive the wire by hand).
fn raw(f: &Frame) -> Vec<u8> {
    cgp_datacutter::encode_frame(f)
}

fn hello(link: u32, producer: u32) -> Vec<u8> {
    raw(&Frame::Hello { link, producer })
}

fn data(from: u32, seq: u64, payload: &[u8]) -> Vec<u8> {
    raw(&Frame::Data {
        from,
        seq,
        payload: payload.to_vec(),
    })
}

/// Read the 9-byte HelloAck and return its resume_seq.
fn read_hello_ack(s: &mut TcpStream) -> u64 {
    let mut buf = [0u8; 9];
    s.read_exact(&mut buf).expect("HelloAck");
    assert_eq!(buf[0], 2, "HelloAck tag");
    u64::from_le_bytes(buf[1..9].try_into().unwrap())
}

/// Three-stage source → double → sum pipeline; `total` receives the sum.
fn worker_pipeline(n: u64, width: usize, total: Arc<AtomicU64>) -> Pipeline {
    Pipeline::new()
        .with_capacity(8)
        .add_stage(StageSpec::new(
            "source",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("source", move |io: &mut FilterIo| {
                    for i in 0..n {
                        io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "double",
            width,
            Box::new(|_| {
                Box::new(ClosureFilter::new("double", |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                        io.write(Buffer::from_vec((v * 2).to_le_bytes().to_vec()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "sum",
            1,
            Box::new(move |_| {
                let total = Arc::clone(&total);
                Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                        total.fetch_add(v, Ordering::Relaxed);
                    }
                    Ok(())
                }))
            }),
        ))
}

/// Run the three-stage pipeline as three workers over loopback and
/// return the sum.
fn run_three_workers(n: u64, width: usize, faults: Option<FaultPlan>) -> u64 {
    let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
    let l2 = TcpListener::bind("127.0.0.1:0").unwrap();
    let a1 = l1.local_addr().unwrap().to_string();
    let a2 = l2.local_addr().unwrap().to_string();
    let total = Arc::new(AtomicU64::new(0));
    let mut listeners = [None, Some(l1), Some(l2)];
    let connects = [Some(a1), Some(a2), None];
    std::thread::scope(|scope| {
        for stage in 0..3 {
            let listener = listeners[stage].take();
            let connect = connects[stage].clone();
            let total = Arc::clone(&total);
            let faults = faults.clone();
            scope.spawn(move || {
                let mut p = worker_pipeline(n, width, total);
                if let Some(f) = faults {
                    p = p.with_faults(f).with_recovery(RecoveryOptions::on());
                }
                p.run_worker(WorkerEndpoints {
                    stage,
                    listener,
                    shm_ingress: None,
                    connect,
                })
                .unwrap_or_else(|e| panic!("worker {stage}: {e}"));
            });
        }
    });
    total.load(Ordering::Relaxed)
}

#[test]
fn three_workers_match_in_process_for_all_widths() {
    for width in [1usize, 2, 4] {
        let total = Arc::new(AtomicU64::new(0));
        worker_pipeline(100, width, Arc::clone(&total))
            .run()
            .unwrap();
        let expect = total.load(Ordering::Relaxed);
        assert_eq!(run_three_workers(100, width, None), expect, "width={width}");
    }
}

#[test]
fn chaos_fault_at_exact_packet_index_through_the_socket_is_recovered() {
    let expect: u64 = (0..200u64).map(|i| i * 2).sum();
    // Panic in the middle worker at packet 20: the restart replays the
    // unacked ingress tail, the egress pump dedups nothing (its acks are
    // per transmitted packet), and the result is exact.
    let plan = FaultPlan::new().panic_at("double", 0, 20);
    assert_eq!(run_three_workers(200, 2, Some(plan)), expect);
}

/// Per-producer FIFO: each producer's packets arrive in send order even
/// with several producers interleaving on separate connections.
#[test]
fn ingress_preserves_fifo_per_producer() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let producers = 3u32;
    let (writers, readers) = logical_stream(producers as usize, 1, 64, Distribution::RoundRobin);
    let serve = std::thread::spawn(move || serve_ingress(listener, 7, writers, None));
    let senders: Vec<_> = (0..producers)
        .map(|p| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(&hello(7, p)).unwrap();
                assert_eq!(read_hello_ack(&mut s), 0);
                for i in 0..50u64 {
                    s.write_all(&data(p, i, &[p as u8, i as u8])).unwrap();
                }
                s.write_all(&raw(&Frame::End { from: p })).unwrap();
                s.write_all(&raw(&Frame::Close)).unwrap();
            })
        })
        .collect();
    let mut last_seen = vec![None::<u8>; producers as usize];
    let mut reader = readers.into_iter().next().unwrap();
    let mut count = 0;
    while let Some(b) = reader.read() {
        let &[p, i] = b.as_slice() else {
            panic!("2-byte payload")
        };
        if let Some(prev) = last_seen[p as usize] {
            assert!(i > prev, "producer {p} out of order: {i} after {prev}");
        }
        last_seen[p as usize] = Some(i);
        count += 1;
    }
    assert_eq!(count, 150);
    for s in senders {
        s.join().unwrap();
    }
    let stats = serve.join().unwrap().unwrap();
    assert_eq!(stats.frames, 150);
    assert_eq!(stats.bytes, 300);
    assert_eq!(stats.deduped, 0);
}

/// Backpressure propagates through TCP: with a gated consumer and far
/// more in-flight data than the stream capacity + socket buffers can
/// hold, the producer must stall until the gate opens — and everything
/// still arrives intact.
#[test]
fn backpressure_bounds_the_producer_through_the_socket() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // Consumer side: capacity 2, a gate holding the reader shut.
    let (writers, readers) = logical_stream(1, 1, 2, Distribution::RoundRobin);
    let gate = Arc::new(AtomicBool::new(false));
    let serve = std::thread::spawn(move || serve_ingress(listener, 1, writers, None));
    let gate2 = Arc::clone(&gate);
    let consumer = std::thread::spawn(move || {
        while !gate2.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut reader = readers.into_iter().next().unwrap();
        let mut bytes = 0u64;
        let mut frames = 0u64;
        while let Some(b) = reader.read() {
            bytes += b.len() as u64;
            frames += 1;
        }
        (frames, bytes)
    });
    // Producer side: 16 × 4 MiB — far beyond what the capacity-2 stream
    // plus kernel socket buffers can absorb.
    let (mut pw, pr) = logical_stream(1, 1, 4, Distribution::RoundRobin);
    let done_sending = Arc::new(AtomicBool::new(false));
    let done2 = Arc::clone(&done_sending);
    let producer = std::thread::spawn(move || {
        for i in 0..16u8 {
            pw[0].write(Buffer::from_vec(vec![i; 4 << 20])).unwrap();
        }
        pw[0].close();
        done2.store(true, Ordering::Release);
    });
    let pump = std::thread::spawn(move || {
        egress_pump(pr.into_iter().next().unwrap(), &addr, 1, 0, None).unwrap()
    });
    // With the gate shut the producer cannot finish: 64 MiB has nowhere
    // to go.
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        !done_sending.load(Ordering::Acquire),
        "producer finished 64 MiB with the consumer gated — no backpressure"
    );
    gate.store(true, Ordering::Release);
    producer.join().unwrap();
    let (frames, bytes) = consumer.join().unwrap();
    assert_eq!(frames, 16);
    assert_eq!(bytes, 16 * (4 << 20) as u64);
    let egress = pump.join().unwrap();
    assert_eq!(egress.frames, 16);
    let ingress = serve.join().unwrap().unwrap();
    assert_eq!(ingress.bytes, egress.bytes);
}

/// A producer that dies mid-frame is corruption, not a clean disconnect:
/// the link fails with a Malformed error instead of hanging or silently
/// truncating the stream.
#[test]
fn disconnect_mid_frame_fails_the_link_loudly() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let control = RunControl::new();
    let (writers, readers) = logical_stream(1, 1, 16, Distribution::RoundRobin);
    let c2 = Arc::clone(&control);
    let serve = std::thread::spawn(move || serve_ingress(listener, 1, writers, Some(c2)));
    let drain = std::thread::spawn(move || {
        let mut r = readers.into_iter().next().unwrap();
        let mut n = 0;
        while r.read().is_some() {
            n += 1;
        }
        n
    });
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&hello(1, 0)).unwrap();
    assert_eq!(read_hello_ack(&mut s), 0);
    s.write_all(&data(0, 0, b"complete")).unwrap();
    // Truncate the next frame: header promises 100 bytes, deliver 3 and
    // slam the connection.
    let partial = data(0, 1, &[9u8; 100]);
    s.write_all(&partial[..partial.len() - 97]).unwrap();
    drop(s);
    let err = serve.join().unwrap().unwrap_err();
    assert_eq!(err.kind, cgp_datacutter::ErrorKind::Malformed, "{err}");
    assert!(control.is_cancelled(), "a failed link cancels the run");
    // The local reader was unblocked (writers closed on the error path)
    // and saw only the complete packet.
    assert_eq!(drain.join().unwrap(), 1);
}

/// A clean disconnect + reconnect re-sending in-flight frames: the slot's
/// sequence watermark survives the connection, dedups the duplicates, and
/// the published resume watermark never regresses.
#[test]
fn reconnect_dedups_duplicates_and_never_regresses_acks() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (writers, readers) = logical_stream(1, 1, 16, Distribution::RoundRobin);
    let serve = std::thread::spawn(move || serve_ingress(listener, 3, writers, None));
    let drain = std::thread::spawn(move || {
        let mut r = readers.into_iter().next().unwrap();
        let mut seen = Vec::new();
        while let Some(b) = r.read() {
            seen.push(b.as_slice()[0]);
        }
        seen
    });
    // First connection: deliver 0..3, then vanish cleanly (as a crashed-
    // and-restarted upstream process that had frames in flight would).
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&hello(3, 0)).unwrap();
    assert_eq!(read_hello_ack(&mut s), 0);
    for i in 0..3u64 {
        s.write_all(&data(0, i, &[i as u8])).unwrap();
    }
    s.write_all(&raw(&Frame::Close)).unwrap();
    drop(s);
    // Give the handler thread time to park the feeder back in the slot
    // table (a real restarted process takes far longer to come back).
    std::thread::sleep(Duration::from_millis(300));
    // Reconnect: the watermark still stands at 3 — nothing regressed.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&hello(3, 0)).unwrap();
    assert_eq!(
        read_hello_ack(&mut s),
        3,
        "resume watermark after reconnect"
    );
    // Re-send the duplicated in-flight tail (1, 2), then fresh data.
    for i in 1..5u64 {
        s.write_all(&data(0, i, &[i as u8])).unwrap();
    }
    s.write_all(&raw(&Frame::End { from: 0 })).unwrap();
    s.write_all(&raw(&Frame::Close)).unwrap();
    drop(s);
    assert_eq!(drain.join().unwrap(), vec![0, 1, 2, 3, 4], "exactly once");
    let stats = serve.join().unwrap().unwrap();
    assert_eq!(stats.frames, 5, "5 unique frames delivered");
    assert_eq!(stats.deduped, 2, "2 duplicated in-flight frames dropped");
}

/// Handshake hardening: wrong link, out-of-range producer, bad magic.
#[test]
fn handshake_rejects_wrong_link_and_producer() {
    for (hello_bytes, what) in [
        (hello(99, 0), "wrong link"),
        (hello(5, 7), "producer out of range"),
        (b"XXXX-garbage-that-is-not-a-frame".to_vec(), "bad tag"),
    ] {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (writers, readers) = logical_stream(1, 1, 16, Distribution::RoundRobin);
        let serve = std::thread::spawn(move || serve_ingress(listener, 5, writers, None));
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&hello_bytes).unwrap();
        let err = serve.join().unwrap().unwrap_err();
        assert_eq!(
            err.kind,
            cgp_datacutter::ErrorKind::Malformed,
            "{what}: {err}"
        );
        drop(s);
        // The local reader is released rather than stranded.
        let mut r = readers.into_iter().next().unwrap();
        assert!(r.read().is_none(), "{what}: reader unblocked");
    }
}

/// Current thread count of this process (Linux; leak checks gated on it).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// Distributed runs — including faulted ones — must join every bridge
/// and handler thread.
#[cfg(target_os = "linux")]
#[test]
fn distributed_runs_leak_no_threads() {
    let _ = run_three_workers(50, 2, None); // warm-up
    let before = thread_count();
    for _ in 0..2 {
        let _ = run_three_workers(50, 2, None);
        let _ = run_three_workers(50, 2, Some(FaultPlan::new().panic_at("double", 0, 10)));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let after = thread_count();
        if after <= before {
            break;
        }
        if std::time::Instant::now() > deadline {
            panic!("thread count must return to baseline: before={before} after={after}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
