//! Chrome-trace round-trip: run a real 3-stage pipeline with the
//! [`cgp_obs::ChromeTraceSink`] installed, parse the emitted JSON back with
//! the obs crate's own parser, and check the trace structure — per-filter
//! spans for every stage, per-packet events with byte counts, and valid
//! `trace_event` fields throughout.
//!
//! Global-sink note: this file holds a single `#[test]` because the trace
//! sink is process-global; integration-test files run as separate
//! processes, so other suites are unaffected.

use cgp_datacutter::{Buffer, ClosureFilter, FilterIo, Pipeline, StageSpec};
use cgp_obs::json::Json;
use cgp_obs::trace;
use cgp_obs::{ChromeTraceSink, TraceSink};
use std::io::Write;
use std::sync::{Arc, Mutex};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

const PACKETS: usize = 12;
const PAYLOAD: usize = 256;

fn three_stage_pipeline() -> Pipeline {
    Pipeline::new()
        .with_capacity(4)
        .add_stage(StageSpec::new(
            "source",
            1,
            Box::new(|_copy| {
                Box::new(ClosureFilter::new("source", |io: &mut FilterIo| {
                    for i in 0..PACKETS {
                        let mut v = vec![0u8; PAYLOAD];
                        v[0] = i as u8;
                        io.write(Buffer::from_vec(v))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "transform",
            2,
            Box::new(|_copy| {
                Box::new(ClosureFilter::new("transform", |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        // Halve the payload so stage boundaries are visible
                        // in the byte counts.
                        io.write(b.slice(0..b.len() / 2))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "sink",
            1,
            Box::new(|_copy| {
                Box::new(ClosureFilter::new("sink", |io: &mut FilterIo| {
                    let mut n = 0usize;
                    while let Some(_b) = io.read() {
                        n += 1;
                    }
                    assert_eq!(n, PACKETS);
                    Ok(())
                }))
            }),
        ))
}

#[test]
fn chrome_trace_round_trips_through_a_three_stage_pipeline() {
    let buf = SharedBuf::default();
    let sink: Arc<dyn TraceSink> = Arc::new(ChromeTraceSink::new(Box::new(buf.clone())));
    trace::install_sink(sink);

    let stats = three_stage_pipeline().run().expect("pipeline runs");
    trace::clear_sink();

    // The run itself behaved: 3 stages, all packets through.
    assert_eq!(stats.stages.len(), 3);
    assert_eq!(stats.stages[0].buffers_out, PACKETS as u64);
    assert_eq!(stats.stages[2].buffers_in, PACKETS as u64);

    // Parse the emitted JSON back with the obs parser.
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let json = Json::parse(&text).expect("trace is valid JSON");
    let events = json.as_arr().expect("Chrome trace is a JSON array");
    assert!(!events.is_empty());

    // Every event carries the mandatory trace_event fields.
    for e in events {
        assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        assert!(e.get("ph").and_then(|v| v.as_str()).is_some());
        assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(e.get("pid").and_then(|v| v.as_f64()).is_some());
        assert!(e.get("tid").and_then(|v| v.as_f64()).is_some());
    }

    // One filter-copy span per copy: source, transform[0..2], sink.
    let spans: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|v| v.as_str()) == Some("filter")
                && e.get("ph").and_then(|v| v.as_str()) == Some("X")
        })
        .map(|e| e.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(spans.len(), 4, "{spans:?}");
    for name in ["source[0]", "transform[0]", "transform[1]", "sink[0]"] {
        assert!(spans.contains(&name), "missing span {name}: {spans:?}");
    }

    // Per-packet send events carry byte counts matching the payloads.
    let send_bytes: Vec<f64> = events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|v| v.as_str()) == Some("packet")
                && e.get("name").and_then(|v| v.as_str()) == Some("send")
        })
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(|b| b.as_f64())
                .expect("send event has bytes arg")
        })
        .collect();
    // Source sends PACKETS full payloads; transforms send PACKETS halves.
    assert_eq!(send_bytes.len(), 2 * PACKETS, "{send_bytes:?}");
    assert_eq!(
        send_bytes.iter().filter(|b| **b == PAYLOAD as f64).count(),
        PACKETS
    );
    assert_eq!(
        send_bytes
            .iter()
            .filter(|b| **b == (PAYLOAD / 2) as f64)
            .count(),
        PACKETS
    );

    // Distinct tids: each of the 4 filter copies got its own virtual thread.
    let mut tids: Vec<i64> = events
        .iter()
        .filter(|e| e.get("cat").and_then(|v| v.as_str()) == Some("filter"))
        .map(|e| e.get("tid").unwrap().as_f64().unwrap() as i64)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 4);
}
