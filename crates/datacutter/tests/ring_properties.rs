//! Property-style tests for the lock-free SPSC ring (`cgp_datacutter::spsc`).
//!
//! Cases are drawn from a seeded PRNG (the build is offline, so no
//! proptest) — failures reproduce deterministically from the printed
//! case parameters.

use cgp_datacutter::{spsc, CancelToken};
use cgp_obs::SmallRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// FIFO: with a concurrent producer using a random mix of `send` and
/// `send_batch`, the consumer (mixing `recv` and `try_recv_batch`)
/// observes exactly 0..n in order, for many capacities and sizes.
#[test]
fn fifo_order_survives_random_batching() {
    let mut rng = SmallRng::seed_from_u64(0x51C0);
    for case in 0..24 {
        let capacity = rng.gen_range(1, 33);
        let total = rng.gen_range(1, 2049) as u64;
        let tx_seed = rng.next_u64();
        let rx_seed = rng.next_u64();
        let (tx, rx) = spsc::<u64>(capacity, None);

        let producer = thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(tx_seed);
            let mut next = 0u64;
            while next < total {
                if rng.gen_bool(0.5) {
                    tx.send(next).expect("receiver alive");
                    next += 1;
                } else {
                    let n = rng.gen_range(1, 17).min((total - next) as usize);
                    let mut batch: VecDeque<u64> = (next..next + n as u64).collect();
                    tx.send_batch(&mut batch).expect("receiver alive");
                    assert!(batch.is_empty(), "send_batch left a remainder");
                    next += n as u64;
                }
            }
        });

        let mut rng = SmallRng::seed_from_u64(rx_seed);
        let mut expect = 0u64;
        while expect < total {
            if rng.gen_bool(0.5) {
                let got = rx.recv().expect("sender alive or queue non-empty");
                assert_eq!(
                    got, expect,
                    "case {case}: capacity={capacity} total={total} out of order"
                );
                expect += 1;
            } else {
                let mut out: Vec<u64> = Vec::new();
                let max = rng.gen_range(1, 17);
                let taken = rx.try_recv_batch(max, &mut out).expect("connected");
                assert!(taken <= max);
                for got in out {
                    assert_eq!(
                        got, expect,
                        "case {case}: capacity={capacity} total={total} out of order"
                    );
                    expect += 1;
                }
            }
        }
        producer.join().unwrap();
        assert!(rx.is_empty(), "case {case}: ring not drained");
    }
}

/// Backpressure: the queue never holds more than `capacity` messages,
/// even though the slot array is rounded up to a power of two. Observed
/// from both endpoints while the consumer drains slowly.
#[test]
fn backpressure_never_exceeds_capacity() {
    let mut rng = SmallRng::seed_from_u64(0xBAC0);
    for _ in 0..12 {
        let capacity = rng.gen_range(1, 20); // mostly non-powers-of-two
        let total = 64 + capacity as u64 * 8;
        let (tx, rx) = spsc::<u64>(capacity, None);

        let cap = capacity;
        let producer = thread::spawn(move || {
            for i in 0..total {
                assert!(tx.len() <= cap, "tx saw len {} > capacity {cap}", tx.len());
                tx.send(i).expect("receiver alive");
            }
        });

        for _ in 0..total {
            assert!(
                rx.len() <= capacity,
                "rx saw len {} > capacity {capacity}",
                rx.len()
            );
            // Drain slowly so the producer actually hits the bound.
            thread::yield_now();
            rx.recv().expect("sender alive or queue non-empty");
        }
        producer.join().unwrap();
    }
}

/// Wraparound: cursors cross the capacity boundary thousands of times
/// without corrupting or reordering payloads, for capacities at and
/// around powers of two.
#[test]
fn wraparound_at_capacity_boundaries_is_clean() {
    for capacity in [1usize, 2, 3, 4, 7, 8, 9, 15, 16, 17] {
        let total = (capacity as u64) * 4096 + 13;
        let (tx, rx) = spsc::<u64>(capacity, None);
        let producer = thread::spawn(move || {
            for i in 0..total {
                // A payload that detects slot aliasing, not just reordering.
                tx.send(i.wrapping_mul(0x9e3779b97f4a7c15))
                    .expect("receiver alive");
            }
        });
        for i in 0..total {
            let got = rx.recv().expect("sender alive or queue non-empty");
            assert_eq!(
                got,
                i.wrapping_mul(0x9e3779b97f4a7c15),
                "capacity={capacity}: corrupt payload at message {i}"
            );
        }
        producer.join().unwrap();
    }
}

/// Disconnect mid-batch: when the receiver drops while a `send_batch`
/// is blocked on backpressure, the error hands back exactly the unsent
/// remainder (no loss, no duplication of what was already queued).
#[test]
fn receiver_drop_mid_batch_returns_the_remainder() {
    let mut rng = SmallRng::seed_from_u64(0xD15C);
    for case in 0..16 {
        let capacity = rng.gen_range(1, 9);
        let batch_len = capacity + rng.gen_range(1, 9); // guaranteed to block
        let drain = rng.gen_range(0, capacity + 1);
        let (tx, rx) = spsc::<u64>(capacity, None);

        let producer = thread::spawn(move || {
            let mut batch: VecDeque<u64> = (0..batch_len as u64).collect();
            let err = tx
                .send_batch(&mut batch)
                .expect_err("receiver drop must fail the batch");
            assert!(batch.is_empty(), "failed send_batch must take the queue");
            err.0
        });

        // Accept a prefix, then walk away mid-batch.
        let mut got: Vec<u64> = Vec::new();
        while got.len() < drain {
            got.push(rx.recv().expect("sender still batching"));
        }
        drop(rx);
        let remainder = producer.join().unwrap();

        // Everything received is a prefix of 0..batch_len, and the
        // remainder resumes after the last message the ring accepted
        // (received or still queued at the drop).
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, i as u64, "case {case}: received out of order");
        }
        let first_unsent = remainder.front().copied().unwrap_or(batch_len as u64);
        assert!(
            first_unsent >= got.len() as u64 && first_unsent <= (drain + capacity) as u64,
            "case {case}: capacity={capacity} batch_len={batch_len} drain={drain} \
             remainder starts at {first_unsent}, received {}",
            got.len()
        );
        let tail: Vec<u64> = remainder.iter().copied().collect();
        let want: Vec<u64> = (first_unsent..batch_len as u64).collect();
        assert_eq!(tail, want, "case {case}: remainder not a contiguous suffix");
    }
}

/// Cancellation beats queued data and unblocks both parked endpoints:
/// a blocked `recv` and a backpressured `send` each fail promptly once
/// the token fires, exactly like the mutex channel.
#[test]
fn cancel_unparks_both_endpoints_and_beats_queued_data() {
    // Parked receiver, empty ring.
    let token = CancelToken::new();
    let (tx, rx) = spsc::<u64>(4, Some(&token));
    let consumer = thread::spawn(move || rx.recv());
    thread::sleep(Duration::from_millis(20)); // let it reach the park path
    token.cancel();
    assert!(consumer.join().unwrap().is_err(), "cancel must wake recv");
    assert!(tx.send(1).is_err(), "send after cancel must fail");

    // Parked sender, full ring — and queued data is not delivered after
    // cancellation.
    let token = CancelToken::new();
    let (tx, rx) = spsc::<u64>(2, Some(&token));
    tx.send(1).unwrap();
    tx.send(2).unwrap();
    let producer = thread::spawn(move || tx.send(3));
    thread::sleep(Duration::from_millis(20));
    token.cancel();
    assert!(producer.join().unwrap().is_err(), "cancel must wake send");
    assert!(rx.recv().is_err(), "cancellation beats queued data");
}

/// No leaked threads: every blocking participant in a randomized
/// produce/consume/disconnect schedule reaches `join()`, including
/// producers parked on a full ring at receiver-drop and consumers
/// parked on an empty ring at sender-drop.
#[test]
fn disconnects_release_every_parked_thread() {
    let mut rng = SmallRng::seed_from_u64(0x7EAD);
    for case in 0..16 {
        let capacity = rng.gen_range(1, 9);
        let drop_rx_first = rng.gen_bool(0.5);
        let (tx, rx) = spsc::<u64>(capacity, None);
        let parked = Arc::new(AtomicBool::new(false));

        if drop_rx_first {
            // Producer fills the ring, then blocks; receiver drop frees it.
            let flag = Arc::clone(&parked);
            let producer = thread::spawn(move || {
                for i in 0.. {
                    if i == capacity as u64 {
                        flag.store(true, Ordering::Release);
                    }
                    if tx.send(i).is_err() {
                        return i;
                    }
                }
                unreachable!()
            });
            while !parked.load(Ordering::Acquire) {
                thread::yield_now();
            }
            thread::sleep(Duration::from_millis(5)); // reach the park path
            drop(rx);
            let sent = producer.join().unwrap();
            assert!(
                sent >= capacity as u64,
                "case {case}: producer failed before filling capacity {capacity}"
            );
        } else {
            // Consumer drains the ring, then blocks; sender drop frees it.
            let flag = Arc::clone(&parked);
            let consumer = thread::spawn(move || {
                let mut got = 0u64;
                loop {
                    match rx.recv() {
                        Ok(v) => {
                            assert_eq!(v, got);
                            got += 1;
                            if got == capacity as u64 {
                                flag.store(true, Ordering::Release);
                            }
                        }
                        Err(_) => return got,
                    }
                }
            });
            for i in 0..capacity as u64 {
                tx.send(i).unwrap();
            }
            while !parked.load(Ordering::Acquire) {
                thread::yield_now();
            }
            thread::sleep(Duration::from_millis(5));
            drop(tx);
            let got = consumer.join().unwrap();
            assert_eq!(
                got, capacity as u64,
                "case {case}: consumer lost queued messages at disconnect"
            );
        }
    }
}
