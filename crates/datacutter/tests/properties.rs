//! Property-style tests for the filter-stream runtime: buffers are
//! conserved across arbitrary pipeline shapes, regardless of widths,
//! capacities and distribution policy. Cases are drawn from a seeded
//! PRNG (the build is offline, so no proptest) — failures reproduce
//! deterministically from the printed case parameters.

use cgp_datacutter::{
    channel, Buffer, BufferBuilder, BufferPool, CancelToken, ClosureFilter, Distribution, FilterIo,
    Pipeline, StageSpec,
};
use cgp_obs::SmallRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

#[test]
fn every_buffer_arrives_exactly_once() {
    let mut rng = SmallRng::seed_from_u64(0xDC01);
    for _case in 0..40 {
        let n = rng.gen_range(1, 300) as u64;
        let w1 = rng.gen_range(1, 4);
        let w2 = rng.gen_range(1, 4);
        let cap = rng.gen_range(1, 32);
        let shared = rng.gen_bool(0.5);

        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (s2, c2) = (Arc::clone(&sum), Arc::clone(&count));
        let dist = if shared {
            Distribution::Shared
        } else {
            Distribution::RoundRobin
        };
        Pipeline::new()
            .with_capacity(cap)
            .with_distribution(dist)
            .add_stage(StageSpec::new(
                "src",
                1,
                Box::new(move |_| {
                    Box::new(ClosureFilter::new("src", move |io: &mut FilterIo| {
                        for i in 0..n {
                            io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "mid",
                w1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("mid", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            io.write(b)?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "sink",
                w2,
                Box::new(move |_| {
                    let s = Arc::clone(&s2);
                    let c = Arc::clone(&c2);
                    Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            s.fetch_add(b.u64_le("sink")?, Ordering::Relaxed);
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        let ctx = format!("n={n} w1={w1} w2={w2} cap={cap} shared={shared}");
        assert_eq!(count.load(Ordering::Relaxed), n, "{ctx}");
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "{ctx}");
    }
}

#[test]
fn buffer_builder_reassembles() {
    let mut rng = SmallRng::seed_from_u64(0xDC02);
    for _case in 0..100 {
        let len = rng.gen_range(0, 5000);
        let cap = rng.gen_range(1, 512);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range_u64(256) as u8).collect();

        let mut b = BufferBuilder::new(cap);
        b.push(&payload);
        let bufs = b.finish();
        for buf in &bufs {
            assert!(buf.len() <= cap, "len={len} cap={cap}");
        }
        assert_eq!(
            cgp_datacutter::reassemble(&bufs).as_slice(),
            payload.as_slice(),
            "len={len} cap={cap}"
        );
    }
}

/// A width-1 chain with batching and pooling enabled delivers every
/// packet exactly once and in exact FIFO order; random-width middles
/// still conserve the multiset. Sources allocate from the pool and
/// flush through `write_batch` so the whole batched surface is on the
/// data path.
#[test]
fn batched_streams_preserve_order_and_conserve() {
    let mut rng = SmallRng::seed_from_u64(0xDC03);
    for _case in 0..25 {
        let n = rng.gen_range(1, 300) as u64;
        let batch = rng.gen_range(2, 16);
        let cap = rng.gen_range(1, 32);
        let w = rng.gen_range(1, 4);
        let ctx = format!("n={n} batch={batch} cap={cap} w={w}");

        let batched_source = move || -> cgp_datacutter::FilterFactory {
            Box::new(move |_| {
                Box::new(ClosureFilter::new("src", move |io: &mut FilterIo| {
                    let mut pending = Vec::with_capacity(batch);
                    for i in 0..n {
                        let mut v = io.alloc(8);
                        v.extend_from_slice(&i.to_le_bytes());
                        pending.push(io.seal(v));
                        if pending.len() >= batch {
                            io.write_batch(std::mem::take(&mut pending))?;
                        }
                    }
                    io.write_batch(pending)
                }))
            })
        };

        // Width-1 chain: exact end-to-end FIFO order.
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        Pipeline::new()
            .with_capacity(cap)
            .with_batch(batch)
            .with_pool(BufferPool::new())
            .add_stage(StageSpec::new("src", 1, batched_source()))
            .add_stage(StageSpec::new(
                "mid",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("mid", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            io.write(b)?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "sink",
                1,
                Box::new(move |_| {
                    let seen = Arc::clone(&sink_seen);
                    Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            seen.lock().unwrap().push(b.u64_le("sink")?);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        assert_eq!(
            *seen.lock().unwrap(),
            (0..n).collect::<Vec<_>>(),
            "FIFO order through batches: {ctx}"
        );

        // Random-width middle: conservation of count and sum.
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (s2, c2) = (Arc::clone(&sum), Arc::clone(&count));
        Pipeline::new()
            .with_capacity(cap)
            .with_batch(batch)
            .with_pool(BufferPool::new())
            .add_stage(StageSpec::new("src", 1, batched_source()))
            .add_stage(StageSpec::new(
                "mid",
                w,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("mid", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            io.write(b)?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "sink",
                1,
                Box::new(move |_| {
                    let (s, c) = (Arc::clone(&s2), Arc::clone(&c2));
                    Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            s.fetch_add(b.u64_le("sink")?, Ordering::Relaxed);
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), n, "{ctx}");
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "{ctx}");
    }
}

/// Channel-level property: under arbitrary producer chunking and a
/// consumer that mixes blocking `recv` with `try_recv_batch`, the
/// sequence arrives in exact FIFO order and the queue never exceeds its
/// capacity (the backpressure bound survives batching).
#[test]
fn channel_batched_ops_preserve_fifo_and_backpressure_bound() {
    let mut rng = SmallRng::seed_from_u64(0xDC04);
    for _case in 0..30 {
        let n = rng.gen_range(1, 1500) as u64;
        let cap = rng.gen_range(1, 16);
        let chunk = rng.gen_range(1, 24) as u64;
        let drain = rng.gen_range(1, 8);
        let consumer_seed = rng.gen_range_u64(u64::MAX);
        let ctx = format!("n={n} cap={cap} chunk={chunk} drain={drain}");

        let (tx, rx) = channel::bounded::<u64>(cap);
        let watcher = tx.clone();
        let producer = thread::spawn(move || {
            let mut i = 0u64;
            while i < n {
                let m = chunk.min(n - i);
                let mut batch: VecDeque<u64> = (i..i + m).collect();
                tx.send_batch(&mut batch).expect("receiver alive");
                i += m;
            }
        });

        let mut consumer_rng = SmallRng::seed_from_u64(consumer_seed);
        let mut got: Vec<u64> = Vec::with_capacity(n as usize);
        while got.len() < n as usize {
            assert!(watcher.len() <= cap, "queue exceeded capacity: {ctx}");
            got.push(rx.recv().expect("producer alive"));
            let max = consumer_rng.gen_range(0, drain + 1);
            if max > 0 {
                let _ = rx.try_recv_batch(max, &mut got).expect("connected");
            }
            assert!(watcher.len() <= cap, "queue exceeded capacity: {ctx}");
        }
        producer.join().unwrap();
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "FIFO violated: {ctx}");
    }
}

/// Disconnect mid-batch: the delivered prefix stays delivered, the
/// unsent suffix comes back contiguously, and only in-queue packets
/// (bounded by capacity) sit in between.
#[test]
fn disconnect_mid_batch_returns_unsent_suffix() {
    // No receiver at all: the whole batch comes back.
    let (tx, rx) = channel::bounded::<u64>(4);
    drop(rx);
    let mut batch: VecDeque<u64> = (0..10).collect();
    let err = tx.send_batch(&mut batch).unwrap_err();
    assert_eq!(
        err.0.into_iter().collect::<Vec<_>>(),
        (0..10).collect::<Vec<_>>()
    );

    // Receiver takes a prefix then hangs up mid-batch.
    const CAP: usize = 4;
    let (tx, rx) = channel::bounded::<u64>(CAP);
    let producer = thread::spawn(move || {
        let mut batch: VecDeque<u64> = (0..32).collect();
        tx.send_batch(&mut batch).expect_err("receiver hangs up")
    });
    let mut got = Vec::new();
    for _ in 0..6 {
        got.push(rx.recv().unwrap());
    }
    drop(rx);
    let rest = producer.join().unwrap().0;
    assert_eq!(got, (0..6u64).collect::<Vec<_>>(), "prefix in order");
    assert!(
        !rest.is_empty(),
        "sender blocked mid-batch must get a suffix back"
    );
    let first = *rest.front().unwrap();
    assert!(
        rest.iter().copied().eq(first..first + rest.len() as u64),
        "returned suffix is contiguous: {rest:?}"
    );
    assert!(
        (first as usize - got.len()) <= CAP,
        "only in-queue packets lost, bounded by capacity (first={first})"
    );
}

/// Cancellation mid-batch unblocks a sender stuck on a full queue
/// (returning the unsent suffix) and beats queued data on the receive
/// side, for batched receives just like scalar ones.
#[test]
fn cancel_mid_batch_unblocks_both_sides() {
    let token = CancelToken::new();
    let (tx, rx) = channel::bounded_cancellable::<u64>(2, &token);
    let watcher = tx.clone();
    let producer = thread::spawn(move || {
        let mut batch: VecDeque<u64> = (0..100).collect();
        tx.send_batch(&mut batch).expect_err("cancelled mid-batch")
    });
    // Wait until the sender has filled the queue and blocked.
    while watcher.len() < 2 {
        thread::yield_now();
    }
    token.cancel();
    let rest = producer.join().unwrap().0;
    assert!(!rest.is_empty(), "unsent suffix returned on cancel");
    assert!(rest.len() >= 100 - 2 - 2, "at most capacity+in-flight sent");

    // Cancel takes priority over the (non-empty) queue on receive.
    let mut out: Vec<u64> = Vec::new();
    assert!(rx.try_recv_batch(8, &mut out).is_err(), "cancel beats data");
    assert!(out.is_empty(), "no packets leak past cancellation");
    assert!(rx.recv().is_err());
}
