//! Property-style tests for the filter-stream runtime: buffers are
//! conserved across arbitrary pipeline shapes, regardless of widths,
//! capacities and distribution policy. Cases are drawn from a seeded
//! PRNG (the build is offline, so no proptest) — failures reproduce
//! deterministically from the printed case parameters.

use cgp_datacutter::{
    Buffer, BufferBuilder, ClosureFilter, Distribution, FilterIo, Pipeline, StageSpec,
};
use cgp_obs::SmallRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn every_buffer_arrives_exactly_once() {
    let mut rng = SmallRng::seed_from_u64(0xDC01);
    for _case in 0..40 {
        let n = rng.gen_range(1, 300) as u64;
        let w1 = rng.gen_range(1, 4);
        let w2 = rng.gen_range(1, 4);
        let cap = rng.gen_range(1, 32);
        let shared = rng.gen_bool(0.5);

        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (s2, c2) = (Arc::clone(&sum), Arc::clone(&count));
        let dist = if shared {
            Distribution::Shared
        } else {
            Distribution::RoundRobin
        };
        Pipeline::new()
            .with_capacity(cap)
            .with_distribution(dist)
            .add_stage(StageSpec::new(
                "src",
                1,
                Box::new(move |_| {
                    Box::new(ClosureFilter::new("src", move |io: &mut FilterIo| {
                        for i in 0..n {
                            io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "mid",
                w1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("mid", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            io.write(b)?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "sink",
                w2,
                Box::new(move |_| {
                    let s = Arc::clone(&s2);
                    let c = Arc::clone(&c2);
                    Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            s.fetch_add(b.u64_le("sink")?, Ordering::Relaxed);
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        let ctx = format!("n={n} w1={w1} w2={w2} cap={cap} shared={shared}");
        assert_eq!(count.load(Ordering::Relaxed), n, "{ctx}");
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "{ctx}");
    }
}

#[test]
fn buffer_builder_reassembles() {
    let mut rng = SmallRng::seed_from_u64(0xDC02);
    for _case in 0..100 {
        let len = rng.gen_range(0, 5000);
        let cap = rng.gen_range(1, 512);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range_u64(256) as u8).collect();

        let mut b = BufferBuilder::new(cap);
        b.push(&payload);
        let bufs = b.finish();
        for buf in &bufs {
            assert!(buf.len() <= cap, "len={len} cap={cap}");
        }
        assert_eq!(
            cgp_datacutter::reassemble(&bufs),
            payload,
            "len={len} cap={cap}"
        );
    }
}
