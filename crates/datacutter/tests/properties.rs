//! Property-based tests for the filter-stream runtime: buffers are
//! conserved across arbitrary pipeline shapes, regardless of widths,
//! capacities and distribution policy.

use cgp_datacutter::{
    Buffer, BufferBuilder, ClosureFilter, Distribution, FilterIo, Pipeline, StageSpec,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_buffer_arrives_exactly_once(
        n in 1u64..300,
        w1 in 1usize..4,
        w2 in 1usize..4,
        cap in 1usize..32,
        shared in any::<bool>(),
    ) {
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (s2, c2) = (Arc::clone(&sum), Arc::clone(&count));
        let dist = if shared { Distribution::Shared } else { Distribution::RoundRobin };
        Pipeline::new()
            .with_capacity(cap)
            .with_distribution(dist)
            .add_stage(StageSpec::new(
                "src",
                1,
                Box::new(move |_| {
                    Box::new(ClosureFilter::new("src", move |io: &mut FilterIo| {
                        for i in 0..n {
                            io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "mid",
                w1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("mid", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            io.write(b)?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "sink",
                w2,
                Box::new(move |_| {
                    let s = Arc::clone(&s2);
                    let c = Arc::clone(&c2);
                    Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            s.fetch_add(
                                u64::from_le_bytes(b.as_slice().try_into().unwrap()),
                                Ordering::Relaxed,
                            );
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        prop_assert_eq!(count.load(Ordering::Relaxed), n);
        prop_assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn buffer_builder_reassembles(payload in proptest::collection::vec(any::<u8>(), 0..5000), cap in 1usize..512) {
        let mut b = BufferBuilder::new(cap);
        b.push(&payload);
        let bufs = b.finish();
        for buf in &bufs {
            prop_assert!(buf.len() <= cap);
        }
        prop_assert_eq!(cgp_datacutter::reassemble(&bufs), payload);
    }
}
