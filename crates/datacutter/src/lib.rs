//! # cgp-datacutter — filter-stream runtime
//!
//! A Rust implementation of the DataCutter middleware abstractions the
//! paper targets (Section 2.2): applications are sets of interacting
//! **filters** with `init` / `process` / `finalize` interfaces, connected
//! by **streams** that move fixed-size **buffers**, with **transparent
//! copies** providing width-w parallelism behind a single logical stream
//! (round-robin buffer delivery for load balance).
//!
//! ```
//! use cgp_datacutter::{Buffer, ClosureFilter, FilterIo, Pipeline, StageSpec};
//! use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
//!
//! let total = Arc::new(AtomicU64::new(0));
//! let t2 = Arc::clone(&total);
//! Pipeline::new()
//!     .add_stage(StageSpec::new("source", 1, Box::new(|_| Box::new(
//!         ClosureFilter::new("source", |io: &mut FilterIo| {
//!             for i in 0u64..10 {
//!                 io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
//!             }
//!             Ok(())
//!         })))))
//!     .add_stage(StageSpec::new("sink", 2, Box::new(move |_| {
//!         let total = Arc::clone(&t2);
//!         Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
//!             while let Some(b) = io.read() {
//!                 total.fetch_add(b.u64_le("sink")?, Ordering::Relaxed);
//!             }
//!             Ok(())
//!         }))
//!     })))
//!     .run()
//!     .unwrap();
//! assert_eq!(total.load(Ordering::Relaxed), 45);
//! ```

pub mod buffer;
pub mod channel;
pub mod error;
pub mod exec;
pub mod fault;
pub mod filter;
pub mod net;
pub mod placement;
pub mod recover;
pub mod ring;
pub mod shm;
pub mod stream;
pub mod telemetry;
pub mod width;

pub use buffer::{
    reassemble, Buffer, BufferBuilder, BufferPool, BufferWriter, PoolStats, DEFAULT_BUFFER_CAPACITY,
};
pub use channel::CancelToken;
pub use error::{ErrorKind, FilterError, FilterResult};
pub use exec::{Pipeline, RunStats, StageSpec, StageStats, WorkerEndpoints};
pub use fault::{FaultAction, FaultPlan, FaultRule, RetryPolicy, RunControl, Trigger};
pub use filter::{ClosureFilter, Filter, FilterFactory, FilterIo};
pub use net::{
    connect_with_retry, decode_frame, egress_pump, egress_pump_probed, egress_pump_tuned,
    encode_frame, is_heartbeat_timeout, serve_ingress, serve_ingress_probed, serve_ingress_tuned,
    serve_telemetry, serve_telemetry_events, Frame, IngressFeeder, NetLinkStats, NetTuning,
    RemoteStreamReader, RemoteStreamWriter, TelemetryClient, MAX_FRAME_PAYLOAD, NET_MAGIC,
    NET_VERSION, TELEMETRY_LINK,
};
pub use placement::{HostId, Placement, StageAssignment, StagePlacement};
pub use recover::{decode_snapshot, Checkpoint, CheckpointStore, RecoveryOptions, Snapshot};
pub use ring::{spsc, RingReceiver, RingSender};
pub use shm::{
    remove_ring_files, shm_dir, shm_egress_pump_probed, shm_supported, ShmIngress, ShmReceiver,
    ShmSender, DEFAULT_SHM_CAPACITY, SHM_PREFIX,
};
pub use stream::{logical_stream, Distribution, StreamReader, StreamWriter};
pub use telemetry::{
    decode_telemetry_payload, encode_telemetry_payload, CopyProbe, LinkProbe, StageProbe,
    TelemetryConfig, TelemetryUpdate,
};
pub use width::{AutoscaleConfig, AutoscaleEvent, AutoscaleReport, StageWidth, WidthController};
