//! The filter interface (Section 2.2).
//!
//! "The interface for filters consists of an initialization function
//! (`init`), a processing function (`process`), and a finalization function
//! (`finalize`)." Filter operations progress as unit-of-work cycles: the
//! service calls `init`, then `process` reads buffers arriving on the input
//! stream until end-of-work, then `finalize` releases resources (and may
//! flush final results — e.g. reduction state — downstream).

use crate::buffer::{Buffer, BufferPool};
use crate::error::{FilterError, FilterResult};
use crate::fault::{FaultAction, FaultInjector, RunControl};
use crate::recover::{CheckpointStore, Snapshot};
use crate::stream::{StreamReader, StreamWriter};
use cgp_obs::trace::{self, PID_RUNTIME};
use std::sync::Arc;
use std::time::Duration;

/// Per-copy recovery bookkeeping attached to a [`FilterIo`] when the
/// pipeline runs with recovery enabled.
pub(crate) struct RecoveryCtx {
    pub(crate) store: CheckpointStore,
    /// `stage` / `copy` key this copy checkpoints under.
    pub(crate) stage: String,
    pub(crate) copy: usize,
    /// Checkpoint cadence (accepted packets) for stateful stages.
    pub(crate) checkpoint_every: u64,
    /// Stateless stages acknowledge inputs as they are consumed (a
    /// packet is acked once the *next* read begins, i.e. after its
    /// outputs were written); stateful stages acknowledge only at
    /// checkpoint commits.
    pub(crate) auto_ack: bool,
    /// Inputs accepted since the last checkpoint commit.
    pub(crate) accepted: u64,
    /// Inputs accepted over the whole unit of work (snapshot metadata).
    pub(crate) accepted_total: u64,
    /// Output write index at the last ack boundary; restarts rewind the
    /// writer here.
    pub(crate) committed_out: u64,
    /// Checkpoint commits / snapshot bytes by this copy.
    pub(crate) checkpoints: u64,
    pub(crate) checkpoint_bytes: u64,
    /// Trace thread id of the owning filter copy.
    pub(crate) tid: u32,
}

/// I/O endpoints handed to a filter copy for one unit of work.
pub struct FilterIo {
    /// Input stream (absent for the first filter, which reads the data
    /// source itself).
    pub input: Option<StreamReader>,
    /// Output stream (absent for the last filter, which delivers results).
    pub output: Option<StreamWriter>,
    /// Which transparent copy of the logical filter this instance is.
    pub copy_index: usize,
    /// Total transparent copies of this logical filter.
    pub width: usize,
    /// Per-copy fault injection (chaos testing); interposed on the
    /// packet path by [`read`](FilterIo::read)/[`write`](FilterIo::write).
    pub(crate) injector: Option<FaultInjector>,
    /// Run-wide cancellation/progress state, when the executor runs with
    /// a deadline or stall watchdog.
    pub(crate) control: Option<Arc<RunControl>>,
    /// Shared packet-storage pool ([`Pipeline::with_pool`]); when absent,
    /// [`alloc`](FilterIo::alloc)/[`seal`](FilterIo::seal) fall through
    /// to plain heap allocation.
    ///
    /// [`Pipeline::with_pool`]: crate::exec::Pipeline::with_pool
    pub(crate) pool: Option<BufferPool>,
    /// Pool hits/misses by this copy's [`alloc`](FilterIo::alloc) calls
    /// (aggregated into `StageStats` by the executor).
    pub(crate) pool_hits: u64,
    pub(crate) pool_misses: u64,
    /// Recovery bookkeeping (checkpoint cadence, ack policy), present
    /// only when the pipeline runs with recovery enabled.
    pub(crate) recovery: Option<RecoveryCtx>,
}

impl FilterIo {
    /// Build the I/O endpoints for one filter copy (mostly useful in
    /// tests; the executor builds these itself).
    pub fn new(
        input: Option<StreamReader>,
        output: Option<StreamWriter>,
        copy_index: usize,
        width: usize,
    ) -> Self {
        FilterIo {
            input,
            output,
            copy_index,
            width,
            injector: None,
            control: None,
            pool: None,
            pool_hits: 0,
            pool_misses: 0,
            recovery: None,
        }
    }

    /// Get scratch storage for building an output packet: recycled from
    /// the pipeline's [`BufferPool`] when one is attached, freshly
    /// allocated otherwise. Pair with [`seal`](FilterIo::seal).
    pub fn alloc(&mut self, capacity: usize) -> Vec<u8> {
        match &self.pool {
            Some(p) => {
                let (v, hit) = p.alloc_counted(capacity);
                if hit {
                    self.pool_hits += 1;
                } else {
                    self.pool_misses += 1;
                }
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Seal scratch storage (from [`alloc`](FilterIo::alloc)) into a
    /// [`Buffer`] — zero-copy; a pooled allocation returns to the pool
    /// when the last clone of the buffer drops.
    pub fn seal(&self, v: Vec<u8>) -> Buffer {
        match &self.pool {
            Some(p) => p.seal(v),
            None => Buffer::from_vec(v),
        }
    }

    /// Read the next input buffer; `None` at end-of-work.
    ///
    /// With a fault injector attached this is also where input-side
    /// faults fire: dropped packets are skipped, delays sleep
    /// (cancellably), injected failures park a structured error (the
    /// executor surfaces it) and signal end-of-work, injected panics
    /// panic — exercising the executor's panic isolation.
    ///
    /// Under recovery, a *stateless* stage acknowledges here: when read
    /// N+1 begins, packet N has been fully processed and its outputs
    /// written, so the delivered prefix is durable and the output index
    /// is a committed boundary.
    pub fn read(&mut self) -> Option<crate::buffer::Buffer> {
        if let Some(rc) = &mut self.recovery {
            if rc.auto_ack {
                if let Some(w) = &self.output {
                    rc.committed_out = w.write_index();
                }
                if let Some(r) = &mut self.input {
                    r.commit_acks();
                }
            }
        }
        let buf = self.read_inner()?;
        if let Some(rc) = &mut self.recovery {
            rc.accepted += 1;
            rc.accepted_total += 1;
        }
        // Telemetry: propagate the packet's ingest-origin tick onto the
        // output side, so end-to-end latency survives the stage hop.
        // Origins are only non-zero when telemetry is on, so untelemetered
        // runs pay one branch here.
        let origin = self
            .input
            .as_ref()
            .map_or(0, crate::stream::StreamReader::last_origin_us);
        if origin != 0 {
            if let Some(w) = &mut self.output {
                w.set_origin(origin);
            }
        }
        Some(buf)
    }

    fn read_inner(&mut self) -> Option<crate::buffer::Buffer> {
        loop {
            let buf = self.input.as_mut().and_then(StreamReader::read)?;
            let Some(inj) = self.injector.as_mut() else {
                return Some(buf);
            };
            let packet = inj.packets_seen();
            match inj.on_packet() {
                None => return Some(buf),
                Some(FaultAction::DropPacket) => continue,
                Some(FaultAction::Delay(d)) => {
                    if let Err(e) = Self::fault_sleep(&self.control, d, inj.label()) {
                        inj.set_pending(e);
                        return None;
                    }
                    return Some(buf);
                }
                Some(FaultAction::Fail { retryable }) => {
                    let e = inj.injected_error(packet, retryable);
                    inj.set_pending(e);
                    return None;
                }
                Some(FaultAction::Panic) => {
                    panic!("injected panic at {} packet {packet}", inj.label())
                }
                Some(FaultAction::Kill) => crate::fault::die_hard(),
            }
        }
    }

    /// Write one buffer downstream.
    ///
    /// For source stages (no input) this is where faults fire, counted
    /// per written packet.
    pub fn write(&mut self, buf: crate::buffer::Buffer) -> FilterResult<()> {
        if self
            .injector
            .as_ref()
            .is_some_and(FaultInjector::has_pending)
        {
            // An input-side injected failure is parked: this attempt is
            // doomed and running against a fabricated end-of-work, so any
            // output it produces past the failure point (e.g. an
            // end-of-stream reduction) is an artifact of the truncated
            // input. Swallow it — sending would burn sequence numbers
            // that the retried attempt regenerates with *different*
            // content, desynchronizing replay suppression.
            return Ok(());
        }
        if self.input.is_none() {
            if let Some(inj) = self.injector.as_mut() {
                let packet = inj.packets_seen();
                match inj.on_packet() {
                    None => {}
                    Some(FaultAction::DropPacket) => return Ok(()),
                    Some(FaultAction::Delay(d)) => {
                        Self::fault_sleep(&self.control, d, inj.label())?;
                    }
                    Some(FaultAction::Fail { retryable }) => {
                        return Err(inj.injected_error(packet, retryable));
                    }
                    Some(FaultAction::Panic) => {
                        panic!("injected panic at {} packet {packet}", inj.label())
                    }
                    Some(FaultAction::Kill) => crate::fault::die_hard(),
                }
            }
        }
        match self.output.as_mut() {
            Some(w) => w.write(buf),
            None => Ok(()), // terminal filter: writes are results, kept by the filter itself
        }
    }

    /// Write a run of buffers downstream, amortizing synchronization over
    /// the whole run (one lock acquisition + one wakeup per target queue
    /// instead of per packet).
    ///
    /// With a fault injector attached this degrades to per-packet
    /// [`write`](FilterIo::write): injected faults must keep firing at
    /// exact packet indices, so a copy under test never skips the
    /// per-packet interposition point.
    pub fn write_batch(&mut self, bufs: Vec<Buffer>) -> FilterResult<()> {
        if self.injector.is_some() {
            for buf in bufs {
                self.write(buf)?;
            }
            return Ok(());
        }
        match self.output.as_mut() {
            Some(w) => w.write_batch(bufs),
            None => Ok(()),
        }
    }

    /// Pool hits/misses accumulated by this copy's
    /// [`alloc`](FilterIo::alloc) calls.
    pub fn pool_counts(&self) -> (u64, u64) {
        (self.pool_hits, self.pool_misses)
    }

    pub fn has_input(&self) -> bool {
        self.input.is_some()
    }

    pub fn has_output(&self) -> bool {
        self.output.is_some()
    }

    /// Whether the run has been cancelled (deadline/stall watchdog).
    /// Long-running compute loops should poll this and bail out so a
    /// cancelled run can join all threads promptly.
    pub fn cancelled(&self) -> bool {
        self.control.as_ref().is_some_and(|c| c.is_cancelled())
    }

    /// Whether a stateful filter should checkpoint now: recovery is on,
    /// this stage acks at checkpoints, and `checkpoint_every` packets
    /// were accepted since the last commit. Always `false` for stateless
    /// stages and non-recovery runs, so filters can call it
    /// unconditionally from their process loop.
    pub fn checkpoint_due(&self) -> bool {
        self.recovery
            .as_ref()
            .is_some_and(|rc| !rc.auto_ack && rc.accepted >= rc.checkpoint_every)
    }

    /// Commit a state snapshot: persist it to the checkpoint store, then
    /// acknowledge the delivered input prefix (in that order — the
    /// snapshot is what makes those packets durable) and record the
    /// current output index as the restart boundary. A no-op without
    /// recovery, so filters can call it unconditionally.
    pub fn commit_checkpoint(&mut self, snapshot: &[u8]) -> FilterResult<()> {
        if self
            .injector
            .as_ref()
            .is_some_and(FaultInjector::has_pending)
        {
            // Doomed attempt (see `write`): must not acknowledge input —
            // the faulted packet was consumed from the stream but never
            // delivered, and only a replay can deliver it.
            return Ok(());
        }
        let out_index = self
            .output
            .as_ref()
            .map_or(0, crate::stream::StreamWriter::write_index);
        let Some(rc) = &mut self.recovery else {
            return Ok(());
        };
        rc.store.save(
            &rc.stage,
            rc.copy,
            Snapshot {
                state: snapshot.to_vec(),
                out_index,
                packets: rc.accepted_total,
            },
        )?;
        if let Some(r) = &mut self.input {
            r.commit_acks();
        }
        rc.committed_out = out_index;
        rc.accepted = 0;
        rc.checkpoints += 1;
        rc.checkpoint_bytes += snapshot.len() as u64;
        if trace::enabled() {
            trace::instant(
                "checkpoint",
                "recovery",
                PID_RUNTIME,
                rc.tid,
                vec![
                    ("bytes", (snapshot.len() as u64).into()),
                    ("packets", rc.accepted_total.into()),
                    ("out_index", out_index.into()),
                ],
            );
        }
        Ok(())
    }

    /// The latest committed snapshot for this copy, if any (the executor
    /// feeds it to [`Filter::restore`] before a restarted attempt).
    pub(crate) fn latest_snapshot(&self) -> Option<Vec<u8>> {
        let rc = self.recovery.as_ref()?;
        rc.store.load(&rc.stage, rc.copy).map(|s| s.state)
    }

    /// Reset the endpoints for a restarted unit-of-work attempt: rewind
    /// the writer to the committed output boundary and pre-load the
    /// unacknowledged input tail for replay.
    pub(crate) fn begin_attempt(&mut self) {
        let Some(rc) = &mut self.recovery else {
            return;
        };
        rc.accepted = 0;
        let committed_out = rc.committed_out;
        if let Some(w) = &mut self.output {
            w.rewind_for_replay(committed_out);
        }
        if let Some(r) = &mut self.input {
            r.begin_attempt();
        }
    }

    /// Final ack on a successfully completed unit of work: everything
    /// delivered has been fully processed, so release the replay buffers
    /// feeding this copy.
    pub(crate) fn commit_final(&mut self) {
        if self.recovery.is_some() {
            if let Some(w) = &self.output {
                let idx = w.write_index();
                if let Some(rc) = &mut self.recovery {
                    rc.committed_out = idx;
                }
            }
            if let Some(r) = &mut self.input {
                r.commit_acks();
            }
        }
    }

    /// Checkpoint commits and snapshot bytes by this copy.
    pub(crate) fn checkpoint_counts(&self) -> (u64, u64) {
        self.recovery
            .as_ref()
            .map_or((0, 0), |rc| (rc.checkpoints, rc.checkpoint_bytes))
    }

    /// Take the error an input-side injected failure parked (the read
    /// path can only signal end-of-work).
    pub(crate) fn take_injected_error(&mut self) -> Option<FilterError> {
        self.injector.as_mut().and_then(FaultInjector::take_pending)
    }

    fn fault_sleep(control: &Option<Arc<RunControl>>, d: Duration, who: &str) -> FilterResult<()> {
        match control {
            Some(c) => c.cancellable_sleep(d, who),
            None => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

/// A user-defined filter. One instance exists per transparent copy; state
/// is per-copy (the runtime merges cross-copy results in `finalize`
/// protocols defined by the application, e.g. reduction objects flushed
/// downstream).
pub trait Filter: Send {
    /// Pre-allocate resources for the unit of work.
    fn init(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        let _ = io;
        Ok(())
    }

    /// Restore state from a checkpoint snapshot (recovery restarts only;
    /// called between `init` and `process` on a fresh instance when a
    /// committed snapshot exists for this copy). Stateful filters that
    /// participate in checkpointing must override this; the default
    /// refuses, which fails the restart rather than silently recomputing
    /// from a wrong state.
    fn restore(&mut self, snapshot: &[u8]) -> FilterResult<()> {
        let _ = snapshot;
        Err(FilterError::new(
            self.name().to_string(),
            "filter has a checkpoint but no restore support \
             (mark the stage stateless or implement Filter::restore)",
        ))
    }

    /// Consume input buffers / produce output buffers until end-of-work.
    fn process(&mut self, io: &mut FilterIo) -> FilterResult<()>;

    /// Called after `process` returns; may flush final state downstream
    /// (the executor closes the output stream afterwards).
    fn finalize(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        let _ = io;
        Ok(())
    }

    /// Display name for errors and stats.
    fn name(&self) -> &str {
        "filter"
    }
}

/// Factory producing one filter instance per transparent copy. `Sync`
/// because the executor re-invokes it from worker threads when retrying
/// a failed unit of work with a fresh filter instance.
pub type FilterFactory = Box<dyn Fn(usize) -> Box<dyn Filter> + Send + Sync>;

/// Convenience: a filter from three closures (init/process/finalize are
/// often tiny in tests and examples).
pub struct ClosureFilter<P> {
    pub name: String,
    pub process_fn: P,
}

impl<P> ClosureFilter<P>
where
    P: FnMut(&mut FilterIo) -> FilterResult<()> + Send,
{
    pub fn new(name: impl Into<String>, process_fn: P) -> Self {
        ClosureFilter {
            name: name.into(),
            process_fn,
        }
    }
}

impl<P> Filter for ClosureFilter<P>
where
    P: FnMut(&mut FilterIo) -> FilterResult<()> + Send,
{
    fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        (self.process_fn)(io)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::stream::{logical_stream, Distribution};

    #[test]
    fn closure_filter_passes_through() {
        let (ws, mut rs) = logical_stream(1, 1, 8, Distribution::RoundRobin);
        let (mut ws2, mut rs2) = logical_stream(1, 1, 8, Distribution::RoundRobin);
        let mut f = ClosureFilter::new("double", |io: &mut FilterIo| {
            while let Some(b) = io.read() {
                let doubled: Vec<u8> = b.as_slice().iter().map(|x| x * 2).collect();
                io.write(Buffer::from_vec(doubled))?;
            }
            Ok(())
        });
        // feed
        let mut w = ws.into_iter().next().unwrap();
        w.write(Buffer::from_vec(vec![1, 2, 3])).unwrap();
        w.close();
        let mut io = FilterIo::new(Some(rs.remove(0)), Some(ws2.remove(0)), 0, 1);
        f.init(&mut io).unwrap();
        f.process(&mut io).unwrap();
        f.finalize(&mut io).unwrap();
        io.output.take();
        let out = rs2[0].read().unwrap();
        assert_eq!(out.as_slice(), &[2, 4, 6]);
        assert_eq!(f.name(), "double");
    }

    #[test]
    fn terminal_filter_write_is_noop() {
        let mut io = FilterIo::new(None, None, 0, 1);
        assert!(io.write(Buffer::from_vec(vec![1])).is_ok());
        assert!(!io.has_input());
        assert!(!io.has_output());
        assert!(io.read().is_none());
    }
}
