//! The filter interface (Section 2.2).
//!
//! "The interface for filters consists of an initialization function
//! (`init`), a processing function (`process`), and a finalization function
//! (`finalize`)." Filter operations progress as unit-of-work cycles: the
//! service calls `init`, then `process` reads buffers arriving on the input
//! stream until end-of-work, then `finalize` releases resources (and may
//! flush final results — e.g. reduction state — downstream).

use crate::error::FilterResult;
use crate::stream::{StreamReader, StreamWriter};

/// I/O endpoints handed to a filter copy for one unit of work.
pub struct FilterIo {
    /// Input stream (absent for the first filter, which reads the data
    /// source itself).
    pub input: Option<StreamReader>,
    /// Output stream (absent for the last filter, which delivers results).
    pub output: Option<StreamWriter>,
    /// Which transparent copy of the logical filter this instance is.
    pub copy_index: usize,
    /// Total transparent copies of this logical filter.
    pub width: usize,
}

impl FilterIo {
    /// Read the next input buffer; `None` at end-of-work.
    pub fn read(&mut self) -> Option<crate::buffer::Buffer> {
        self.input.as_mut().and_then(StreamReader::read)
    }

    /// Write one buffer downstream.
    pub fn write(&mut self, buf: crate::buffer::Buffer) -> FilterResult<()> {
        match self.output.as_mut() {
            Some(w) => w.write(buf),
            None => Ok(()), // terminal filter: writes are results, kept by the filter itself
        }
    }

    pub fn has_input(&self) -> bool {
        self.input.is_some()
    }

    pub fn has_output(&self) -> bool {
        self.output.is_some()
    }
}

/// A user-defined filter. One instance exists per transparent copy; state
/// is per-copy (the runtime merges cross-copy results in `finalize`
/// protocols defined by the application, e.g. reduction objects flushed
/// downstream).
pub trait Filter: Send {
    /// Pre-allocate resources for the unit of work.
    fn init(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        let _ = io;
        Ok(())
    }

    /// Consume input buffers / produce output buffers until end-of-work.
    fn process(&mut self, io: &mut FilterIo) -> FilterResult<()>;

    /// Called after `process` returns; may flush final state downstream
    /// (the executor closes the output stream afterwards).
    fn finalize(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        let _ = io;
        Ok(())
    }

    /// Display name for errors and stats.
    fn name(&self) -> &str {
        "filter"
    }
}

/// Factory producing one filter instance per transparent copy.
pub type FilterFactory = Box<dyn Fn(usize) -> Box<dyn Filter> + Send>;

/// Convenience: a filter from three closures (init/process/finalize are
/// often tiny in tests and examples).
pub struct ClosureFilter<P> {
    pub name: String,
    pub process_fn: P,
}

impl<P> ClosureFilter<P>
where
    P: FnMut(&mut FilterIo) -> FilterResult<()> + Send,
{
    pub fn new(name: impl Into<String>, process_fn: P) -> Self {
        ClosureFilter {
            name: name.into(),
            process_fn,
        }
    }
}

impl<P> Filter for ClosureFilter<P>
where
    P: FnMut(&mut FilterIo) -> FilterResult<()> + Send,
{
    fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        (self.process_fn)(io)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::stream::{logical_stream, Distribution};

    #[test]
    fn closure_filter_passes_through() {
        let (ws, mut rs) = logical_stream(1, 1, 8, Distribution::RoundRobin);
        let (mut ws2, mut rs2) = logical_stream(1, 1, 8, Distribution::RoundRobin);
        let mut f = ClosureFilter::new("double", |io: &mut FilterIo| {
            while let Some(b) = io.read() {
                let doubled: Vec<u8> = b.as_slice().iter().map(|x| x * 2).collect();
                io.write(Buffer::from_vec(doubled))?;
            }
            Ok(())
        });
        // feed
        let mut w = ws.into_iter().next().unwrap();
        w.write(Buffer::from_vec(vec![1, 2, 3])).unwrap();
        w.close();
        let mut io = FilterIo {
            input: Some(rs.remove(0)),
            output: Some(ws2.remove(0)),
            copy_index: 0,
            width: 1,
        };
        f.init(&mut io).unwrap();
        f.process(&mut io).unwrap();
        f.finalize(&mut io).unwrap();
        io.output.take();
        let out = rs2[0].read().unwrap();
        assert_eq!(out.as_slice(), &[2, 4, 6]);
        assert_eq!(f.name(), "double");
    }

    #[test]
    fn terminal_filter_write_is_noop() {
        let mut io = FilterIo {
            input: None,
            output: None,
            copy_index: 0,
            width: 1,
        };
        assert!(io.write(Buffer::from_vec(vec![1])).is_ok());
        assert!(!io.has_input());
        assert!(!io.has_output());
        assert!(io.read().is_none());
    }
}
