//! The filter interface (Section 2.2).
//!
//! "The interface for filters consists of an initialization function
//! (`init`), a processing function (`process`), and a finalization function
//! (`finalize`)." Filter operations progress as unit-of-work cycles: the
//! service calls `init`, then `process` reads buffers arriving on the input
//! stream until end-of-work, then `finalize` releases resources (and may
//! flush final results — e.g. reduction state — downstream).

use crate::buffer::{Buffer, BufferPool};
use crate::error::{FilterError, FilterResult};
use crate::fault::{FaultAction, FaultInjector, RunControl};
use crate::stream::{StreamReader, StreamWriter};
use std::sync::Arc;
use std::time::Duration;

/// I/O endpoints handed to a filter copy for one unit of work.
pub struct FilterIo {
    /// Input stream (absent for the first filter, which reads the data
    /// source itself).
    pub input: Option<StreamReader>,
    /// Output stream (absent for the last filter, which delivers results).
    pub output: Option<StreamWriter>,
    /// Which transparent copy of the logical filter this instance is.
    pub copy_index: usize,
    /// Total transparent copies of this logical filter.
    pub width: usize,
    /// Per-copy fault injection (chaos testing); interposed on the
    /// packet path by [`read`](FilterIo::read)/[`write`](FilterIo::write).
    pub(crate) injector: Option<FaultInjector>,
    /// Run-wide cancellation/progress state, when the executor runs with
    /// a deadline or stall watchdog.
    pub(crate) control: Option<Arc<RunControl>>,
    /// Shared packet-storage pool ([`Pipeline::with_pool`]); when absent,
    /// [`alloc`](FilterIo::alloc)/[`seal`](FilterIo::seal) fall through
    /// to plain heap allocation.
    ///
    /// [`Pipeline::with_pool`]: crate::exec::Pipeline::with_pool
    pub(crate) pool: Option<BufferPool>,
    /// Pool hits/misses by this copy's [`alloc`](FilterIo::alloc) calls
    /// (aggregated into `StageStats` by the executor).
    pub(crate) pool_hits: u64,
    pub(crate) pool_misses: u64,
}

impl FilterIo {
    /// Build the I/O endpoints for one filter copy (mostly useful in
    /// tests; the executor builds these itself).
    pub fn new(
        input: Option<StreamReader>,
        output: Option<StreamWriter>,
        copy_index: usize,
        width: usize,
    ) -> Self {
        FilterIo {
            input,
            output,
            copy_index,
            width,
            injector: None,
            control: None,
            pool: None,
            pool_hits: 0,
            pool_misses: 0,
        }
    }

    /// Get scratch storage for building an output packet: recycled from
    /// the pipeline's [`BufferPool`] when one is attached, freshly
    /// allocated otherwise. Pair with [`seal`](FilterIo::seal).
    pub fn alloc(&mut self, capacity: usize) -> Vec<u8> {
        match &self.pool {
            Some(p) => {
                let (v, hit) = p.alloc_counted(capacity);
                if hit {
                    self.pool_hits += 1;
                } else {
                    self.pool_misses += 1;
                }
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Seal scratch storage (from [`alloc`](FilterIo::alloc)) into a
    /// [`Buffer`] — zero-copy; a pooled allocation returns to the pool
    /// when the last clone of the buffer drops.
    pub fn seal(&self, v: Vec<u8>) -> Buffer {
        match &self.pool {
            Some(p) => p.seal(v),
            None => Buffer::from_vec(v),
        }
    }

    /// Read the next input buffer; `None` at end-of-work.
    ///
    /// With a fault injector attached this is also where input-side
    /// faults fire: dropped packets are skipped, delays sleep
    /// (cancellably), injected failures park a structured error (the
    /// executor surfaces it) and signal end-of-work, injected panics
    /// panic — exercising the executor's panic isolation.
    pub fn read(&mut self) -> Option<crate::buffer::Buffer> {
        loop {
            let buf = self.input.as_mut().and_then(StreamReader::read)?;
            let Some(inj) = self.injector.as_mut() else {
                return Some(buf);
            };
            let packet = inj.packets_seen();
            match inj.on_packet() {
                None => return Some(buf),
                Some(FaultAction::DropPacket) => continue,
                Some(FaultAction::Delay(d)) => {
                    if let Err(e) = Self::fault_sleep(&self.control, d, inj.label()) {
                        inj.set_pending(e);
                        return None;
                    }
                    return Some(buf);
                }
                Some(FaultAction::Fail { retryable }) => {
                    let e = inj.injected_error(packet, retryable);
                    inj.set_pending(e);
                    return None;
                }
                Some(FaultAction::Panic) => {
                    panic!("injected panic at {} packet {packet}", inj.label())
                }
            }
        }
    }

    /// Write one buffer downstream.
    ///
    /// For source stages (no input) this is where faults fire, counted
    /// per written packet.
    pub fn write(&mut self, buf: crate::buffer::Buffer) -> FilterResult<()> {
        if self.input.is_none() {
            if let Some(inj) = self.injector.as_mut() {
                let packet = inj.packets_seen();
                match inj.on_packet() {
                    None => {}
                    Some(FaultAction::DropPacket) => return Ok(()),
                    Some(FaultAction::Delay(d)) => {
                        Self::fault_sleep(&self.control, d, inj.label())?;
                    }
                    Some(FaultAction::Fail { retryable }) => {
                        return Err(inj.injected_error(packet, retryable));
                    }
                    Some(FaultAction::Panic) => {
                        panic!("injected panic at {} packet {packet}", inj.label())
                    }
                }
            }
        }
        match self.output.as_mut() {
            Some(w) => w.write(buf),
            None => Ok(()), // terminal filter: writes are results, kept by the filter itself
        }
    }

    /// Write a run of buffers downstream, amortizing synchronization over
    /// the whole run (one lock acquisition + one wakeup per target queue
    /// instead of per packet).
    ///
    /// With a fault injector attached this degrades to per-packet
    /// [`write`](FilterIo::write): injected faults must keep firing at
    /// exact packet indices, so a copy under test never skips the
    /// per-packet interposition point.
    pub fn write_batch(&mut self, bufs: Vec<Buffer>) -> FilterResult<()> {
        if self.injector.is_some() {
            for buf in bufs {
                self.write(buf)?;
            }
            return Ok(());
        }
        match self.output.as_mut() {
            Some(w) => w.write_batch(bufs),
            None => Ok(()),
        }
    }

    /// Pool hits/misses accumulated by this copy's
    /// [`alloc`](FilterIo::alloc) calls.
    pub fn pool_counts(&self) -> (u64, u64) {
        (self.pool_hits, self.pool_misses)
    }

    pub fn has_input(&self) -> bool {
        self.input.is_some()
    }

    pub fn has_output(&self) -> bool {
        self.output.is_some()
    }

    /// Whether the run has been cancelled (deadline/stall watchdog).
    /// Long-running compute loops should poll this and bail out so a
    /// cancelled run can join all threads promptly.
    pub fn cancelled(&self) -> bool {
        self.control.as_ref().is_some_and(|c| c.is_cancelled())
    }

    /// Take the error an input-side injected failure parked (the read
    /// path can only signal end-of-work).
    pub(crate) fn take_injected_error(&mut self) -> Option<FilterError> {
        self.injector.as_mut().and_then(FaultInjector::take_pending)
    }

    fn fault_sleep(control: &Option<Arc<RunControl>>, d: Duration, who: &str) -> FilterResult<()> {
        match control {
            Some(c) => c.cancellable_sleep(d, who),
            None => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

/// A user-defined filter. One instance exists per transparent copy; state
/// is per-copy (the runtime merges cross-copy results in `finalize`
/// protocols defined by the application, e.g. reduction objects flushed
/// downstream).
pub trait Filter: Send {
    /// Pre-allocate resources for the unit of work.
    fn init(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        let _ = io;
        Ok(())
    }

    /// Consume input buffers / produce output buffers until end-of-work.
    fn process(&mut self, io: &mut FilterIo) -> FilterResult<()>;

    /// Called after `process` returns; may flush final state downstream
    /// (the executor closes the output stream afterwards).
    fn finalize(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        let _ = io;
        Ok(())
    }

    /// Display name for errors and stats.
    fn name(&self) -> &str {
        "filter"
    }
}

/// Factory producing one filter instance per transparent copy. `Sync`
/// because the executor re-invokes it from worker threads when retrying
/// a failed unit of work with a fresh filter instance.
pub type FilterFactory = Box<dyn Fn(usize) -> Box<dyn Filter> + Send + Sync>;

/// Convenience: a filter from three closures (init/process/finalize are
/// often tiny in tests and examples).
pub struct ClosureFilter<P> {
    pub name: String,
    pub process_fn: P,
}

impl<P> ClosureFilter<P>
where
    P: FnMut(&mut FilterIo) -> FilterResult<()> + Send,
{
    pub fn new(name: impl Into<String>, process_fn: P) -> Self {
        ClosureFilter {
            name: name.into(),
            process_fn,
        }
    }
}

impl<P> Filter for ClosureFilter<P>
where
    P: FnMut(&mut FilterIo) -> FilterResult<()> + Send,
{
    fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        (self.process_fn)(io)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::stream::{logical_stream, Distribution};

    #[test]
    fn closure_filter_passes_through() {
        let (ws, mut rs) = logical_stream(1, 1, 8, Distribution::RoundRobin);
        let (mut ws2, mut rs2) = logical_stream(1, 1, 8, Distribution::RoundRobin);
        let mut f = ClosureFilter::new("double", |io: &mut FilterIo| {
            while let Some(b) = io.read() {
                let doubled: Vec<u8> = b.as_slice().iter().map(|x| x * 2).collect();
                io.write(Buffer::from_vec(doubled))?;
            }
            Ok(())
        });
        // feed
        let mut w = ws.into_iter().next().unwrap();
        w.write(Buffer::from_vec(vec![1, 2, 3])).unwrap();
        w.close();
        let mut io = FilterIo::new(Some(rs.remove(0)), Some(ws2.remove(0)), 0, 1);
        f.init(&mut io).unwrap();
        f.process(&mut io).unwrap();
        f.finalize(&mut io).unwrap();
        io.output.take();
        let out = rs2[0].read().unwrap();
        assert_eq!(out.as_slice(), &[2, 4, 6]);
        assert_eq!(f.name(), "double");
    }

    #[test]
    fn terminal_filter_write_is_noop() {
        let mut io = FilterIo::new(None, None, 0, 1);
        assert!(io.write(Buffer::from_vec(vec![1])).is_ok());
        assert!(!io.has_input());
        assert!(!io.has_output());
        assert!(io.read().is_none());
    }
}
