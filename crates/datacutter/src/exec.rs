//! Threaded pipeline executor.
//!
//! Builds the logical streams between consecutive stages (honouring each
//! stage's transparent-copy width) and runs every filter copy on its own
//! thread through the unit-of-work cycle `init → process → finalize →
//! close-output`.
//!
//! ## Failure semantics
//!
//! The executor is panic-isolated and deadlock-averse:
//!
//! - **Panic isolation** — a panic inside any filter phase is caught per
//!   copy and converted into a structured
//!   [`ErrorKind::Panicked`](crate::error::ErrorKind) error naming the
//!   `stage[copy]`; the copy's streams are closed and drained so
//!   neighbouring copies terminate instead of blocking forever, and other
//!   copies' stats updates never see a poisoned lock.
//! - **Fault injection** — a [`FaultPlan`] injects deterministic
//!   fail/panic/delay/drop faults at stage × copy × packet index
//!   ([`Pipeline::with_faults`]).
//! - **Retry** — errors marked [`retryable`](crate::FilterError::retryable)
//!   re-run the unit of work with a fresh filter instance under a bounded
//!   [`RetryPolicy`] with exponential backoff ([`Pipeline::with_retry`]).
//! - **Deadline & stall detection** — [`Pipeline::with_deadline`] /
//!   [`Pipeline::with_stall_timeout`] arm a watchdog that cancels the
//!   run's channels, wakes every blocked copy, and reports *where* the
//!   pipeline was blocked (using the `blocked_send`/`blocked_recv`
//!   instrumentation) instead of hanging. Cancellation is cooperative:
//!   filters blocked in stream operations unwedge automatically;
//!   long compute loops should poll [`FilterIo::cancelled`].
//!
//! Failures surface as counters on [`StageStats`] (`failures`, `retries`,
//! `panics`), as `fault`-category trace events through `cgp_obs`, and
//! optionally into a shared [`MetricsRegistry`]
//! ([`Pipeline::with_metrics`]).

use crate::buffer::BufferPool;
use crate::error::{ErrorKind, FilterError, FilterResult};
use crate::fault::{FaultPlan, RetryPolicy, RunControl};
use crate::filter::{FilterFactory, FilterIo, RecoveryCtx};
use crate::net::{
    egress_pump_tuned, serve_ingress_tuned, NetLinkStats, NetTuning, TelemetryClient,
};
use crate::recover::{CheckpointStore, RecoveryOptions};
use crate::shm::{shm_egress_pump_probed, ShmIngress, SHM_PREFIX};
use crate::stream::{logical_stream_with, Distribution};
use crate::telemetry::{
    build_sample, encode_telemetry_payload, now_us, LinkProbe, StageProbe, TelemetryConfig,
};
use crate::width::{AutoscaleConfig, AutoscaleReport, StageWidth, WidthController};
use cgp_obs::metrics::{Histogram, MetricsRegistry};
use cgp_obs::trace::{self, PID_RUNTIME};
use std::cell::Cell;
use std::net::TcpListener;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::{Duration, Instant};

/// Poison-tolerant lock: a panicked copy must not turn every other
/// copy's bookkeeping into a second panic.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// Marks filter-copy worker threads so the process panic hook stays
    /// quiet for panics the executor catches and converts.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static HOOK_INIT: Once = Once::new();

/// Install (once per process) a panic-hook wrapper that suppresses the
/// default "thread panicked" stderr noise for isolated filter copies.
/// Panics on every other thread keep the previous hook's behaviour.
fn install_quiet_panic_hook() {
    HOOK_INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Render a caught panic payload (usually `&str` or `String`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// One pipeline stage: a logical filter with `width` transparent copies.
pub struct StageSpec {
    pub name: String,
    pub width: usize,
    pub factory: FilterFactory,
    /// Whether the filter accumulates cross-packet state (reduction
    /// accumulators). Under recovery, stateful stages acknowledge inputs
    /// only at checkpoint commits ([`FilterIo::commit_checkpoint`]) and
    /// get their snapshot restored on restart; stateless stages
    /// acknowledge as they read. Inert without recovery.
    pub stateful: bool,
}

impl StageSpec {
    pub fn new(name: impl Into<String>, width: usize, factory: FilterFactory) -> Self {
        assert!(width >= 1);
        StageSpec {
            name: name.into(),
            width,
            factory,
            stateful: false,
        }
    }

    /// Mark this stage as holding cross-packet state (see
    /// [`StageSpec::stateful`]).
    pub fn stateful(mut self) -> Self {
        self.stateful = true;
        self
    }
}

/// Per-stage statistics from a run.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    pub name: String,
    pub buffers_in: u64,
    pub bytes_in: u64,
    pub buffers_out: u64,
    pub bytes_out: u64,
    /// Wall-clock busy time **summed over copies**: with `w` transparent
    /// copies running concurrently this can legitimately exceed
    /// [`RunStats::wall`] (up to `w × wall`). Use [`busy_per_copy`]
    /// for per-thread intervals and `busy / width` for an average.
    ///
    /// [`busy_per_copy`]: StageStats::busy_per_copy
    pub busy: Duration,
    /// Wall-clock busy time of each transparent copy, indexed by copy;
    /// `busy` is exactly the sum of these entries.
    pub busy_per_copy: Vec<Duration>,
    /// Total time this stage's copies spent blocked in sends
    /// (throttled by downstream backpressure), summed over copies.
    pub blocked_send: Duration,
    /// Total time this stage's copies spent blocked in receives
    /// (starved for upstream data), summed over copies.
    pub blocked_recv: Duration,
    /// Failed unit-of-work attempts across this stage's copies
    /// (including attempts that later succeeded on retry).
    pub failures: u64,
    /// Retries performed across this stage's copies.
    pub retries: u64,
    /// Attempts that ended in a caught panic.
    pub panics: u64,
    /// Packet-storage allocations served from the run's [`BufferPool`]
    /// (zero when the pipeline runs without a pool).
    pub pool_hits: u64,
    /// Packet-storage allocations that fell through to the heap.
    pub pool_misses: u64,
    /// Copy restarts performed by the recovery supervisor (beyond the
    /// classic retry path).
    pub recoveries: u64,
    /// Packets re-delivered from replay buffers after restarts.
    pub replayed_packets: u64,
    /// Checkpoint commits across this stage's copies.
    pub checkpoints: u64,
    /// Snapshot bytes written across this stage's checkpoint commits.
    pub checkpoint_bytes: u64,
    /// Per-packet residence latency at this stage (upstream send →
    /// delivery here), µs. Populated only when telemetry is attached
    /// ([`Pipeline::with_telemetry`]); empty otherwise.
    pub residence_us: Histogram,
}

/// Result of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub wall: Duration,
    pub stages: Vec<StageStats>,
    /// Per-link network transfer counters from a distributed run
    /// ([`Pipeline::run_worker`]), keyed by the downstream stage index of
    /// the link. Empty for in-process runs.
    pub net_links: Vec<(u32, NetLinkStats)>,
    /// Pipeline-wide end-to-end latency (ingest origin → delivery at the
    /// final stage), µs. Populated only when telemetry is attached and
    /// the final stage ran in this process; empty otherwise.
    pub e2e_us: Histogram,
    /// Width decisions the elastic controller made during this run
    /// ([`Pipeline::with_autoscale`]); empty for fixed-width runs.
    pub autoscale: AutoscaleReport,
}

impl RunStats {
    /// Failed attempts summed over stages (a successful run can still
    /// have non-zero failures if retries recovered them).
    pub fn failures(&self) -> u64 {
        self.stages.iter().map(|s| s.failures).sum()
    }

    /// Retries summed over stages.
    pub fn retries(&self) -> u64 {
        self.stages.iter().map(|s| s.retries).sum()
    }

    /// Caught panics summed over stages.
    pub fn panics(&self) -> u64 {
        self.stages.iter().map(|s| s.panics).sum()
    }

    /// Recovery restarts summed over stages.
    pub fn recoveries(&self) -> u64 {
        self.stages.iter().map(|s| s.recoveries).sum()
    }

    /// Replayed packets summed over stages.
    pub fn replayed_packets(&self) -> u64 {
        self.stages.iter().map(|s| s.replayed_packets).sum()
    }

    /// Checkpoint commits summed over stages.
    pub fn checkpoints(&self) -> u64 {
        self.stages.iter().map(|s| s.checkpoints).sum()
    }

    /// Snapshot bytes summed over stages.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.checkpoint_bytes).sum()
    }
}

/// Where a worker process's stage attaches to the rest of a distributed
/// pipeline ([`Pipeline::run_worker`]).
#[derive(Debug)]
pub struct WorkerEndpoints {
    /// Index of the stage this process executes.
    pub stage: usize,
    /// Listener for the ingress link from the upstream stage's process
    /// (for `stage > 0` workers using the TCP transport).
    pub listener: Option<TcpListener>,
    /// Pre-created shared-memory ingress rings (for `stage > 0` workers
    /// on the same host as their upstream — exactly one of `listener` /
    /// `shm_ingress` must be set for a non-first stage).
    pub shm_ingress: Option<ShmIngress>,
    /// Address of the downstream stage's listener (required iff `stage`
    /// is not the last stage). A `shm:<base>` address selects the
    /// shared-memory transport; anything else is dialled over TCP.
    pub connect: Option<String>,
}

/// A linear pipeline of stages connected by logical streams.
pub struct Pipeline {
    stages: Vec<StageSpec>,
    buffer_capacity: usize,
    distribution: Distribution,
    faults: Option<Arc<FaultPlan>>,
    retry: RetryPolicy,
    deadline: Option<Duration>,
    stall_timeout: Option<Duration>,
    metrics: Option<Arc<Mutex<MetricsRegistry>>>,
    batch: usize,
    pool: Option<BufferPool>,
    recovery: RecoveryOptions,
    checkpoint_store: Option<CheckpointStore>,
    telemetry: Option<TelemetryConfig>,
    same_host_rings: bool,
    net_tuning: NetTuning,
    autoscale: Option<AutoscaleConfig>,
    /// Per-stage, per-copy busy time to carry into the probes and stats
    /// ([`Pipeline::with_busy_carry`]).
    busy_carry: Vec<Vec<Duration>>,
}

impl Pipeline {
    pub fn new() -> Self {
        Pipeline {
            stages: Vec::new(),
            buffer_capacity: 64,
            distribution: Distribution::RoundRobin,
            faults: None,
            retry: RetryPolicy::default(),
            deadline: None,
            stall_timeout: None,
            metrics: None,
            batch: 1,
            pool: None,
            recovery: RecoveryOptions::default(),
            checkpoint_store: None,
            telemetry: None,
            same_host_rings: true,
            net_tuning: NetTuning::default(),
            autoscale: None,
            busy_carry: Vec::new(),
        }
    }

    /// Whether 1→1 non-recovering links use the lock-free SPSC ring
    /// instead of the mutex channel (on by default). Turning this off
    /// forces every link onto the mutex path — useful for apples-to-
    /// apples benchmarking and as an escape hatch.
    pub fn with_same_host_rings(mut self, on: bool) -> Self {
        self.same_host_rings = on;
        self
    }

    /// Max packets moved per lock acquisition on every stream (adaptive:
    /// a busy consumer drains up to `batch` queued packets after each
    /// blocking receive, an idle one keeps per-packet latency). 1 —
    /// the default — restores strict per-packet synchronization.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Recycle packet storage through a shared [`BufferPool`]: filters
    /// that build packets via [`FilterIo::alloc`]/[`FilterIo::seal`] get
    /// recycled allocations, and per-stage hit/miss counts land in
    /// [`StageStats`] (and the metrics registry, when attached).
    pub fn with_pool(mut self, pool: BufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Queue depth (buffers in flight) per stream; provides backpressure.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0);
        self.buffer_capacity = capacity;
        self
    }

    pub fn with_distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// Attach a deterministic fault-injection plan (chaos testing).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        if !plan.is_empty() {
            self.faults = Some(Arc::new(plan));
        }
        self
    }

    /// Bounded retry with exponential backoff for retryable filter
    /// errors; each retry re-runs the unit of work with a fresh filter
    /// instance from the stage factory.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Hard wall-clock limit for the run. On expiry the watchdog cancels
    /// every stream, blocked copies unwedge, and `run` returns a
    /// structured [`ErrorKind::Stalled`] error naming where copies were
    /// blocked — instead of hanging.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Cancel the run if no packet moves anywhere in the pipeline for
    /// this long (should comfortably exceed the slowest per-packet
    /// compute time).
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Emit per-stage failure counters (`stage.<name>.failures` /
    /// `.retries` / `.panics`) into a shared registry at end of run.
    pub fn with_metrics(mut self, registry: Arc<Mutex<MetricsRegistry>>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Enable the recovery layer: ack/replay delivery on every stream,
    /// checkpointing for stateful stages ([`StageSpec::stateful`]), and
    /// supervised copy restarts on panic or failure (beyond the classic
    /// retry path, which only covers retryable errors). Requires
    /// round-robin distribution.
    pub fn with_recovery(mut self, recovery: RecoveryOptions) -> Self {
        self.recovery = recovery;
        self
    }

    /// Use a caller-provided checkpoint store (e.g. one mirrored to a
    /// JSONL audit log via [`CheckpointStore::with_jsonl`]); defaults to
    /// a fresh in-memory store per run.
    pub fn with_checkpoint_store(mut self, store: CheckpointStore) -> Self {
        self.checkpoint_store = Some(store);
        self
    }

    /// Tune the distributed planes' liveness behavior: heartbeat cadence
    /// and silence deadline on TCP links, and supervised (lenient)
    /// ingress semantics where a dead producer parks its slot awaiting a
    /// respawned process instead of failing the run. No-op for purely
    /// in-process runs.
    pub fn with_net_tuning(mut self, tuning: NetTuning) -> Self {
        self.net_tuning = tuning;
        self
    }

    /// Attach the live telemetry plane. Per-stage probes feed a sampler
    /// thread that snapshots queue depth, per-copy busy/active time,
    /// latency percentiles, replay-buffer occupancy, and net-link
    /// counters on the sampler's cadence — without stopping the
    /// pipeline. Packets are stamped at ingest so
    /// [`StageStats::residence_us`] and [`RunStats::e2e_us`] report real
    /// p50/p95/p99 latencies. When `config.ship_to` is set, every sample
    /// (and the final registry snapshot) is also shipped to the launcher
    /// as a `Telemetry` frame (see [`crate::net::serve_telemetry`]).
    pub fn with_telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Enable elastic copy-width autoscaling (requires telemetry with a
    /// nonzero sampling cadence — the controller ticks on the sampler's
    /// clock — and round-robin distribution). Interior stages are
    /// provisioned at `max(spec width, cfg.max_copies)` transparent
    /// copies; only the active prefix receives packets, and a
    /// [`WidthController`] grows/shrinks that prefix online from the
    /// live probes. Endpoint stages never scale: the source partitions
    /// the domain by copy at startup, and the final stage is the
    /// reduction's convergence point. Decisions land in
    /// [`RunStats::autoscale`].
    pub fn with_autoscale(mut self, cfg: AutoscaleConfig) -> Self {
        self.autoscale = Some(cfg);
        self
    }

    /// Seed per-stage, per-copy busy time carried over from a previous
    /// run of the same pipeline (an autoscale escalation redeploys it, a
    /// supervisor restarts it): the carry folds into the live probes and
    /// final [`StageStats::busy_per_copy`], so merged telemetry stays
    /// monotone across the handover instead of restarting from this
    /// process's epoch. Missing stages/copies default to zero.
    pub fn with_busy_carry(mut self, carry: Vec<Vec<Duration>>) -> Self {
        self.busy_carry = carry;
        self
    }

    pub fn add_stage(mut self, stage: StageSpec) -> Self {
        self.stages.push(stage);
        self
    }

    /// Run one unit of work through the whole pipeline in this process.
    pub fn run(self) -> FilterResult<RunStats> {
        self.run_inner(None)
    }

    /// Run only `endpoints.stage` of the pipeline in this process,
    /// bridging its boundary streams over TCP (see [`crate::net`]).
    ///
    /// Every worker process is built with the *same* stage list (names,
    /// widths, factories); `endpoints` selects which stage this process
    /// executes. The stage's copies still talk to ordinary local streams
    /// — an ingress serve loop replays the upstream producers onto a
    /// local stream with the in-process round-robin routing, and one
    /// egress pump per copy relays its output to the downstream worker —
    /// so batching, backpressure, cancellation, fault injection, retry,
    /// and recovery behave exactly as under [`Pipeline::run`], and the
    /// distributed run's results are byte-identical to the in-process
    /// run's.
    pub fn run_worker(self, endpoints: WorkerEndpoints) -> FilterResult<RunStats> {
        self.run_inner(Some(endpoints))
    }

    fn run_inner(self, worker: Option<WorkerEndpoints>) -> FilterResult<RunStats> {
        if self.stages.is_empty() {
            return Err(FilterError::new("pipeline", "no stages"));
        }
        if self.recovery.enabled && self.distribution == Distribution::Shared {
            return Err(FilterError::new(
                "pipeline",
                "recovery requires round-robin distribution (a shared queue has \
                 no deterministic packet-to-consumer mapping to replay against)",
            ));
        }
        if self.autoscale.is_some() {
            if self.distribution == Distribution::Shared {
                return Err(FilterError::new(
                    "pipeline",
                    "autoscaling requires round-robin distribution (a shared queue \
                     has no per-copy routing for the width gate to act on)",
                ));
            }
            if self
                .telemetry
                .as_ref()
                .is_none_or(|t| t.sampler.every() <= Duration::ZERO)
            {
                return Err(FilterError::new(
                    "pipeline",
                    "autoscaling requires telemetry with a nonzero sampling cadence \
                     (the width controller ticks on the sampler's clock)",
                ));
            }
        }
        let n = self.stages.len();
        if let Some(w) = &worker {
            if w.stage >= n {
                return Err(FilterError::new(
                    "pipeline",
                    format!("worker stage {} out of range ({n} stages)", w.stage),
                ));
            }
            if self.distribution != Distribution::RoundRobin {
                return Err(FilterError::new(
                    "pipeline",
                    "distributed execution requires round-robin distribution (the \
                     ingress bridge reproduces the in-process packet routing, which \
                     a shared queue does not define)",
                ));
            }
            let ingresses =
                usize::from(w.listener.is_some()) + usize::from(w.shm_ingress.is_some());
            if (w.stage > 0 && ingresses != 1) || (w.stage == 0 && ingresses != 0) {
                return Err(FilterError::new(
                    "pipeline",
                    if w.stage > 0 {
                        "a worker for a non-first stage needs exactly one ingress endpoint \
                         (a TCP listener or a shm ingress)"
                    } else {
                        "the first stage has no ingress link but an ingress endpoint was provided"
                    },
                ));
            }
            if (w.stage < n - 1) != w.connect.is_some() {
                return Err(FilterError::new(
                    "pipeline",
                    if w.stage < n - 1 {
                        "a worker for a non-last stage needs a connect address for its \
                         egress link"
                    } else {
                        "the last stage has no egress link but a connect address was provided"
                    },
                ));
            }
        }
        install_quiet_panic_hook();
        let t0 = Instant::now();
        let control = RunControl::new();
        let (active_stage, listener, shm_ingress, connect) = match worker {
            Some(w) => (Some(w.stage), w.listener, w.shm_ingress, w.connect),
            None => (None, None, None, None),
        };

        // Elastic width: interior stages are provisioned at
        // max(spec width, max_copies) transparent copies — threads,
        // queues, probes — with only the active prefix (initially the
        // spec width) in the round-robin rotation. Lazily spawning
        // copies on grow would deadlock (an unspawned copy's writers
        // never close, so downstream readers wait for its Ends forever);
        // a parked provisioned copy just blocks in its first receive.
        // Endpoints keep their spec width: the source partitions the
        // domain by copy at startup and the final stage is the
        // reduction's convergence point. Every process of a distributed
        // run derives the same provisioned widths from the shared
        // autoscale config, so ingress/egress connection counts agree
        // across process boundaries.
        let eff_width: Vec<usize> = (0..n)
            .map(|s| match &self.autoscale {
                Some(cfg) if s > 0 && s < n - 1 => self.stages[s].width.max(cfg.max_copies),
                _ => self.stages[s].width,
            })
            .collect();
        let stage_widths: Vec<Option<Arc<StageWidth>>> = (0..n)
            .map(|s| {
                (self.autoscale.is_some() && s > 0 && s < n - 1)
                    .then(|| StageWidth::new(self.stages[s].width, eff_width[s]))
            })
            .collect();

        // Build streams between consecutive stages. A worker process only
        // materialises its own stage's boundary streams: the ingress link
        // keeps the full upstream-width → local-width topology (writer
        // `p` is driven by remote producer `p`, so round-robin routing is
        // reproduced exactly), while each copy's egress is a private 1→1
        // stream drained by a socket pump.
        let mut writers_per_stage: Vec<Vec<Option<crate::stream::StreamWriter>>> =
            (0..n).map(|_| Vec::new()).collect();
        let mut readers_per_stage: Vec<Vec<Option<crate::stream::StreamReader>>> =
            (0..n).map(|_| Vec::new()).collect();
        for s in 0..n {
            readers_per_stage[s] = (0..eff_width[s]).map(|_| None).collect();
            writers_per_stage[s] = (0..eff_width[s]).map(|_| None).collect();
        }
        let mut ingress_writers: Vec<crate::stream::StreamWriter> = Vec::new();
        let mut egress_readers: Vec<crate::stream::StreamReader> = Vec::new();
        match active_stage {
            None => {
                for s in 0..n.saturating_sub(1) {
                    let (ws, rs) = logical_stream_with(
                        eff_width[s],
                        eff_width[s + 1],
                        self.buffer_capacity,
                        self.distribution,
                        Some(Arc::clone(&control)),
                        self.recovery.enabled,
                        self.same_host_rings,
                    );
                    for (i, w) in ws.into_iter().enumerate() {
                        writers_per_stage[s][i] = Some(w);
                    }
                    for (i, r) in rs.into_iter().enumerate() {
                        readers_per_stage[s + 1][i] = Some(r);
                    }
                }
            }
            Some(k) => {
                if k > 0 {
                    let (ws, rs) = logical_stream_with(
                        eff_width[k - 1],
                        eff_width[k],
                        self.buffer_capacity,
                        self.distribution,
                        Some(Arc::clone(&control)),
                        self.recovery.enabled,
                        self.same_host_rings,
                    );
                    ingress_writers = ws;
                    for (i, r) in rs.into_iter().enumerate() {
                        readers_per_stage[k][i] = Some(r);
                    }
                }
                if k < n - 1 {
                    for slot in writers_per_stage[k].iter_mut().take(eff_width[k]) {
                        let (mut ws, mut rs) = logical_stream_with(
                            1,
                            1,
                            self.buffer_capacity,
                            self.distribution,
                            Some(Arc::clone(&control)),
                            self.recovery.enabled,
                            self.same_host_rings,
                        );
                        *slot = ws.pop();
                        egress_readers.push(rs.pop().expect("1→1 stream"));
                    }
                }
            }
        }

        // Attach the width gates to every writer feeding a scalable
        // stage. In a worker process the gate for stage k sits on the
        // ingress writers — this process holds the queues feeding its
        // own stage — so each worker controls its own stage's active
        // width without any cross-process coordination.
        match active_stage {
            None => {
                for s in 0..n.saturating_sub(1) {
                    if let Some(w) = &stage_widths[s + 1] {
                        for writer in writers_per_stage[s].iter_mut().flatten() {
                            writer.set_active_width(Arc::clone(w));
                        }
                    }
                }
            }
            Some(k) => {
                if let Some(w) = &stage_widths[k] {
                    for writer in &mut ingress_writers {
                        writer.set_active_width(Arc::clone(w));
                    }
                }
            }
        }

        // Live telemetry: one probe per locally-run stage, attached to
        // every stream endpoint the stage's copies touch. All `None`
        // when telemetry is off — the stream hot path then pays nothing
        // beyond an `Option` check.
        let probes: Vec<Option<Arc<StageProbe>>> = (0..n)
            .map(|s| {
                (self.telemetry.is_some() && active_stage.is_none_or(|k| k == s)).then(|| {
                    StageProbe::new(
                        self.stages[s].name.clone(),
                        eff_width[s],
                        s == n - 1,
                        self.distribution == Distribution::Shared,
                    )
                })
            })
            .collect();
        // Busy time carried over from a previous incarnation of this
        // pipeline folds into the probes, so mid-run samples stay
        // monotone across an escalation handover.
        for (s, probe) in probes.iter().enumerate() {
            if let Some(p) = probe {
                if let Some(carry) = self.busy_carry.get(s) {
                    for (c, d) in carry.iter().enumerate().take(eff_width[s]) {
                        p.copy(c).set_carried(d.as_micros() as u64);
                    }
                }
            }
        }
        // The width controller, ticked by the sampler thread on the
        // telemetry cadence. Empty (and elided) when no scalable stage
        // runs in this process.
        let controller: Mutex<Option<WidthController>> = Mutex::new(
            self.autoscale
                .as_ref()
                .map(|cfg| {
                    let mut ctl = WidthController::new(cfg.clone());
                    for s in 0..n {
                        if let (Some(w), Some(p)) = (&stage_widths[s], &probes[s]) {
                            ctl.watch(Arc::clone(w), Arc::clone(p));
                        }
                    }
                    ctl
                })
                .filter(|ctl| !ctl.is_empty()),
        );
        let mut link_probes: Vec<(u32, Arc<LinkProbe>)> = Vec::new();
        if self.telemetry.is_some() {
            // Packets arriving over TCP get a fresh residence stamp here:
            // origin ticks don't cross process boundaries (the clocks are
            // not comparable), so the ingress bridge re-stamps send time
            // only.
            for w in &mut ingress_writers {
                w.enable_stamping();
            }
            if let Some(k) = active_stage {
                if k > 0 {
                    link_probes.push((k as u32, Arc::new(LinkProbe::default())));
                }
                if k < n - 1 {
                    link_probes.push(((k + 1) as u32, Arc::new(LinkProbe::default())));
                }
            }
        }
        let link_probe = |link: u32| {
            link_probes
                .iter()
                .find(|(l, _)| *l == link)
                .map(|(_, p)| Arc::clone(p))
        };
        let ingress_probe = active_stage.and_then(|k| link_probe(k as u32));
        let egress_probe = active_stage.and_then(|k| link_probe((k + 1) as u32));

        // Spawn every copy. Trace tids number filter copies globally
        // (stage by stage), one timeline row per copy.
        let tid_base: Vec<u32> = eff_width
            .iter()
            .scan(0u32, |acc, w| {
                let base = *acc;
                *acc += *w as u32;
                Some(base)
            })
            .collect();
        if trace::enabled() {
            trace::name_process(PID_RUNTIME, "datacutter");
        }
        let stats: Arc<Mutex<Vec<StageStats>>> = Arc::new(Mutex::new(
            self.stages
                .iter()
                .enumerate()
                .map(|(s, spec)| {
                    // Seed with any carried-over busy time; the per-copy
                    // exit accounting below accumulates on top of it.
                    let mut busy_per_copy = vec![Duration::ZERO; eff_width[s]];
                    let mut busy = Duration::ZERO;
                    if let Some(carry) = self.busy_carry.get(s) {
                        for (c, d) in carry.iter().enumerate().take(eff_width[s]) {
                            busy_per_copy[c] = *d;
                            busy += *d;
                        }
                    }
                    StageStats {
                        name: spec.name.clone(),
                        busy,
                        busy_per_copy,
                        ..Default::default()
                    }
                })
                .collect(),
        ));
        let errors: Arc<Mutex<Vec<FilterError>>> = Arc::new(Mutex::new(Vec::new()));
        // Copies that were blocked inside a stream op when the run was
        // cancelled — the stall report names these.
        let stalled_at: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let total_copies: usize = match active_stage {
            None => eff_width.iter().sum(),
            Some(k) => eff_width[k],
        };
        // Network bridge threads participate in the same completion
        // count, so the watchdog covers a wedged socket too.
        let net_threads = usize::from(listener.is_some())
            + usize::from(shm_ingress.is_some())
            + egress_readers.len();
        // (remaining threads, condvar) — workers count down, the watchdog
        // waits with a timeout.
        let done = Arc::new((Mutex::new(total_copies + net_threads), Condvar::new()));
        let net_stats: Arc<Mutex<Vec<(u32, NetLinkStats)>>> = Arc::new(Mutex::new(Vec::new()));
        let retry = self.retry;
        let recovery = self.recovery;
        let store = self
            .recovery
            .enabled
            .then(|| self.checkpoint_store.clone().unwrap_or_default());
        // Telemetry shipping connection, shared between the sampler loop
        // and the final flush after the scope ends.
        let telemetry_client: Mutex<Option<TelemetryClient>> = Mutex::new(None);
        let worker_id: u32 = active_stage.map_or(0, |k| k as u32);

        std::thread::scope(|scope| {
            if self.deadline.is_some() || self.stall_timeout.is_some() {
                let control = Arc::clone(&control);
                let done = Arc::clone(&done);
                let deadline = self.deadline;
                let stall_timeout = self.stall_timeout;
                scope.spawn(move || {
                    watchdog(&control, &done, deadline, stall_timeout);
                });
            }
            // Sampler: periodic in-flight snapshots from the probes. Not
            // counted in `done` — it waits on the same condvar with its
            // cadence as the timeout and exits once the count hits zero.
            // A zero cadence disables in-flight sampling entirely (the
            // final fin-stamped flush below still runs): spawning the
            // loop with a zero timeout would busy-spin it.
            if let Some(tcfg) = self
                .telemetry
                .as_ref()
                .filter(|t| t.sampler.every() > Duration::ZERO)
            {
                let sampler = Arc::clone(&tcfg.sampler);
                let source = tcfg.source.clone();
                let ship = tcfg.ship_to.clone();
                let every = sampler.every();
                let done = Arc::clone(&done);
                let control = Arc::clone(&control);
                let pool = self.pool.clone();
                let probes = &probes;
                let link_probes = &link_probes;
                let client_slot = &telemetry_client;
                let controller_slot = &controller;
                scope.spawn(move || {
                    if let Some(addr) = &ship {
                        // Telemetry is best-effort: a missing aggregator
                        // never fails (or delays) the run beyond the
                        // connect attempt.
                        if let Ok(c) =
                            TelemetryClient::connect(addr, worker_id, Some(Arc::clone(&control)))
                        {
                            *plock(client_slot) = Some(c);
                        }
                    }
                    let (remaining, cv) = &*done;
                    loop {
                        {
                            let left = plock(remaining);
                            if *left == 0 {
                                break;
                            }
                            let (g, _) = cv
                                .wait_timeout(left, every)
                                .unwrap_or_else(|e| e.into_inner());
                            if *g == 0 {
                                break;
                            }
                        }
                        let now = now_us();
                        let sample = build_sample(
                            &source,
                            t0.elapsed().as_micros() as u64,
                            now,
                            false,
                            probes,
                            pool.as_ref(),
                            link_probes,
                        );
                        // Width decisions ride the sampling clock: one
                        // controller tick per recorded sample, reading
                        // the same probes at the same instant.
                        if let Some(ctl) = plock(controller_slot).as_mut() {
                            ctl.tick(now);
                        }
                        let stamped = sampler.record(sample);
                        let mut slot = plock(client_slot);
                        if let Some(client) = slot.as_mut() {
                            let payload =
                                encode_telemetry_payload(&source, false, Some(&stamped), None);
                            if client.send(&payload).is_err() {
                                *slot = None;
                            }
                        }
                    }
                });
            }
            // Ingress bridge: accept one connection per upstream producer
            // copy and replay them onto the local ingress stream.
            if let Some(listener) = listener {
                let k = active_stage.expect("listener implies worker mode");
                let writers = std::mem::take(&mut ingress_writers);
                let control = Arc::clone(&control);
                let errors = Arc::clone(&errors);
                let done = Arc::clone(&done);
                let net_stats = Arc::clone(&net_stats);
                let probe = ingress_probe.clone();
                let tuning = self.net_tuning;
                scope.spawn(move || {
                    match serve_ingress_tuned(
                        listener,
                        k as u32,
                        writers,
                        Some(Arc::clone(&control)),
                        probe,
                        tuning,
                    ) {
                        Ok(st) => plock(&net_stats).push((k as u32, st)),
                        // serve_ingress has already cancelled the run and
                        // closed its local writers.
                        Err(e) => plock(&errors).push(e),
                    }
                    countdown(&done);
                });
            }
            // Same-host ingress: bridge the pre-created shm rings onto
            // the local ingress stream (one reader thread per ring).
            if let Some(shm) = shm_ingress {
                let k = active_stage.expect("shm ingress implies worker mode");
                let writers = std::mem::take(&mut ingress_writers);
                let control = Arc::clone(&control);
                let errors = Arc::clone(&errors);
                let done = Arc::clone(&done);
                let net_stats = Arc::clone(&net_stats);
                let probe = ingress_probe.clone();
                let tuning = self.net_tuning;
                scope.spawn(move || {
                    match shm.serve_tuned(
                        k as u32,
                        writers,
                        Some(Arc::clone(&control)),
                        probe,
                        tuning,
                    ) {
                        Ok(st) => plock(&net_stats).push((k as u32, st)),
                        // serve_probed has already cancelled the run and
                        // closed its local writers.
                        Err(e) => plock(&errors).push(e),
                    }
                    countdown(&done);
                });
            }
            // Egress bridges: one pump per copy drains the copy's private
            // 1→1 stream into the downstream worker's listener (TCP) or
            // shm ring (`shm:<base>` addresses).
            for (c, mut reader) in egress_readers.drain(..).enumerate() {
                let k = active_stage.expect("egress readers imply worker mode");
                let addr = connect.clone().expect("egress readers imply connect");
                let control = Arc::clone(&control);
                let errors = Arc::clone(&errors);
                let done = Arc::clone(&done);
                let net_stats = Arc::clone(&net_stats);
                reader.set_batch(self.batch);
                let probe = egress_probe.clone();
                let tuning = self.net_tuning;
                scope.spawn(move || {
                    let pumped = if let Some(base) = addr.strip_prefix(SHM_PREFIX) {
                        shm_egress_pump_probed(
                            reader,
                            base,
                            (k + 1) as u32,
                            c as u32,
                            Some(Arc::clone(&control)),
                            probe,
                        )
                    } else {
                        egress_pump_tuned(
                            reader,
                            &addr,
                            (k + 1) as u32,
                            c as u32,
                            Some(Arc::clone(&control)),
                            probe,
                            tuning,
                        )
                    };
                    match pumped {
                        Ok(st) => plock(&net_stats).push(((k + 1) as u32, st)),
                        Err(e) => {
                            // Wake the (possibly blocked) local producer.
                            if e.kind != ErrorKind::Cancelled {
                                control.cancel(format!("egress link {} failed: {e}", k + 1));
                            }
                            plock(&errors).push(e);
                        }
                    }
                    countdown(&done);
                });
            }
            for (s, stage) in self.stages.iter().enumerate() {
                if active_stage.is_some_and(|k| k != s) {
                    continue;
                }
                for c in 0..eff_width[s] {
                    let tid = tid_base[s] + c as u32;
                    let injector = self
                        .faults
                        .as_ref()
                        .and_then(|p| p.injector(&stage.name, c));
                    let mut io = FilterIo {
                        input: readers_per_stage[s][c].take(),
                        output: writers_per_stage[s][c].take(),
                        copy_index: c,
                        width: eff_width[s],
                        injector,
                        control: Some(Arc::clone(&control)),
                        pool: self.pool.clone(),
                        pool_hits: 0,
                        pool_misses: 0,
                        recovery: store.as_ref().map(|st| RecoveryCtx {
                            store: st.clone(),
                            stage: stage.name.clone(),
                            copy: c,
                            checkpoint_every: recovery.checkpoint_every,
                            auto_ack: !stage.stateful,
                            accepted: 0,
                            accepted_total: 0,
                            committed_out: 0,
                            checkpoints: 0,
                            checkpoint_bytes: 0,
                            tid,
                        }),
                    };
                    if let Some(r) = io.input.as_mut() {
                        r.set_trace_tid(tid);
                        r.set_batch(self.batch);
                    }
                    if let Some(w) = io.output.as_mut() {
                        w.set_trace_tid(tid);
                    }
                    let probe = probes[s].clone();
                    if let Some(p) = &probe {
                        if let Some(r) = io.input.as_mut() {
                            r.attach_probe(Arc::clone(p), c);
                        }
                        if let Some(w) = io.output.as_mut() {
                            w.attach_probe(Arc::clone(p), c);
                            if s == 0 {
                                // The true source stamps fresh ingest
                                // origins for end-to-end latency.
                                w.mark_source();
                            }
                        }
                    }
                    let stats = Arc::clone(&stats);
                    let errors = Arc::clone(&errors);
                    let stalled_at = Arc::clone(&stalled_at);
                    let control = Arc::clone(&control);
                    let done = Arc::clone(&done);
                    let factory = &stage.factory;
                    let stage_name = stage.name.clone();
                    scope.spawn(move || {
                        QUIET_PANICS.with(|q| q.set(true));
                        let label = format!("{stage_name}[{c}]");
                        if trace::enabled() {
                            trace::name_thread(PID_RUNTIME, tid, label.clone());
                        }
                        let mut copy_span = trace::span(label.clone(), "filter", PID_RUNTIME, tid);
                        let t = Instant::now();
                        // Publish the start tick so mid-run snapshots (and
                        // crashed copies) report real busy time.
                        if let Some(p) = &probe {
                            p.copy(c).mark_started(now_us());
                        }
                        let mut retries_here = 0u64;
                        let mut failures_here = 0u64;
                        let mut panics_here = 0u64;
                        let mut recoveries_here = 0u64;
                        let result = loop {
                            // Fresh filter instance per attempt: a failed
                            // attempt may have corrupted per-copy state.
                            let mut filter = (factory)(c);
                            let unit =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    {
                                        let _s =
                                            trace::span("init", "filter-phase", PID_RUNTIME, tid);
                                        filter.init(&mut io)?;
                                    }
                                    // A restarted copy gets its committed
                                    // snapshot back before processing the
                                    // replayed input tail.
                                    if recovery.enabled {
                                        if let Some(snap) = io.latest_snapshot() {
                                            let _s = trace::span(
                                                "restore",
                                                "recovery",
                                                PID_RUNTIME,
                                                tid,
                                            );
                                            filter.restore(&snap)?;
                                        }
                                    }
                                    {
                                        let _s = trace::span(
                                            "process",
                                            "filter-phase",
                                            PID_RUNTIME,
                                            tid,
                                        );
                                        filter.process(&mut io)?;
                                    }
                                    let _s =
                                        trace::span("finalize", "filter-phase", PID_RUNTIME, tid);
                                    filter.finalize(&mut io)
                                }));
                            let mut attempt_result: FilterResult<()> = match unit {
                                Ok(r) => r,
                                Err(payload) => {
                                    panics_here += 1;
                                    Err(FilterError::panicked(
                                        label.clone(),
                                        panic_message(payload),
                                    ))
                                }
                            };
                            // An input-side injected failure parks its
                            // error and signals end-of-work.
                            if attempt_result.is_ok() {
                                if let Some(e) = io.take_injected_error() {
                                    attempt_result = Err(e);
                                }
                            }
                            match attempt_result {
                                Err(e) => {
                                    failures_here += 1;
                                    if trace::enabled() {
                                        trace::instant(
                                            "failure",
                                            "fault",
                                            PID_RUNTIME,
                                            tid,
                                            vec![("error", e.to_string().into())],
                                        );
                                    }
                                    let attempts_left = retries_here < retry.max_retries as u64;
                                    if e.retryable && attempts_left && !control.is_cancelled() {
                                        retries_here += 1;
                                        let _ = control.cancellable_sleep(
                                            retry.delay(retries_here as u32),
                                            &label,
                                        );
                                        // Under recovery a retry is also a
                                        // restart: replay the unacked tail
                                        // instead of losing it.
                                        io.begin_attempt();
                                        continue;
                                    }
                                    // Recovery restart: panics and
                                    // non-retryable failures get a fresh
                                    // instance, the committed checkpoint,
                                    // and the unacked input replayed —
                                    // bounded by the restart budget.
                                    if recovery.enabled
                                        && e.kind != ErrorKind::Cancelled
                                        && recoveries_here < recovery.max_restarts as u64
                                        && !control.is_cancelled()
                                    {
                                        recoveries_here += 1;
                                        if trace::enabled() {
                                            trace::instant(
                                                "recovery",
                                                "recovery",
                                                PID_RUNTIME,
                                                tid,
                                                vec![
                                                    ("restart", recoveries_here.into()),
                                                    ("error", e.to_string().into()),
                                                ],
                                            );
                                        }
                                        let _ = control.cancellable_sleep(
                                            retry.delay(recoveries_here as u32),
                                            &label,
                                        );
                                        io.begin_attempt();
                                        continue;
                                    }
                                    break Err(e);
                                }
                                Ok(()) => {
                                    // Completed unit of work: everything
                                    // delivered was processed — release
                                    // the replay buffers feeding this copy.
                                    io.commit_final();
                                    break Ok(());
                                }
                            }
                        };
                        // Close output so downstream sees end-of-work even
                        // on error; drop the injector first so draining
                        // cannot re-fire faults. Sample the was-blocked-
                        // when-cancelled flags now — the drain below also
                        // touches the (cancelled) channel and would set
                        // them spuriously.
                        io.injector = None;
                        let recv_stalled = io
                            .input
                            .as_ref()
                            .is_some_and(|r| r.cancelled_while_blocked());
                        let send_stalled = io
                            .output
                            .as_ref()
                            .is_some_and(|w| w.cancelled_while_blocked());
                        if let Some(w) = io.output.as_mut() {
                            w.close();
                        }
                        // Drain remaining input on error to unblock
                        // upstream writers.
                        if result.is_err() {
                            while io.read().is_some() {}
                        }
                        let busy = t.elapsed();
                        if let Some(p) = &probe {
                            p.copy(c).mark_finished(busy.as_micros() as u64);
                        }
                        {
                            let mut st = plock(&stats);
                            let entry = &mut st[s];
                            if let Some(r) = &io.input {
                                let (b, by) = r.stats();
                                entry.buffers_in += b;
                                entry.bytes_in += by;
                                entry.blocked_recv += r.blocked();
                                if copy_span.is_recording() {
                                    copy_span.arg("buffers_in", b);
                                    copy_span
                                        .arg("blocked_recv_us", r.blocked().as_micros() as u64);
                                }
                                if recv_stalled {
                                    plock(&stalled_at).push(format!(
                                        "{label} blocked in recv ({}ms starved)",
                                        r.blocked().as_millis()
                                    ));
                                }
                            }
                            if let Some(w) = &io.output {
                                let (b, by) = w.stats();
                                entry.buffers_out += b;
                                entry.bytes_out += by;
                                entry.blocked_send += w.blocked();
                                if copy_span.is_recording() {
                                    copy_span.arg("buffers_out", b);
                                    copy_span
                                        .arg("blocked_send_us", w.blocked().as_micros() as u64);
                                }
                                if send_stalled {
                                    plock(&stalled_at).push(format!(
                                        "{label} blocked in send ({}ms backpressured)",
                                        w.blocked().as_millis()
                                    ));
                                }
                            }
                            entry.busy += busy;
                            // Accumulated at copy exit, on top of any
                            // carried-over seed; mid-run snapshots read
                            // the live per-copy probe instead, so a
                            // sample taken before this line (or a crashed
                            // copy's) still shows real busy time.
                            entry.busy_per_copy[c] += busy;
                            entry.failures += failures_here;
                            entry.retries += retries_here;
                            entry.panics += panics_here;
                            entry.recoveries += recoveries_here;
                            if let Some(r) = &io.input {
                                entry.replayed_packets += r.recovery_stats().0;
                            }
                            let (ck, ckb) = io.checkpoint_counts();
                            entry.checkpoints += ck;
                            entry.checkpoint_bytes += ckb;
                            let (ph, pm) = io.pool_counts();
                            entry.pool_hits += ph;
                            entry.pool_misses += pm;
                        }
                        drop(copy_span);
                        if let Err(e) = result {
                            plock(&errors).push(FilterError { filter: label, ..e });
                        }
                        countdown(&done);
                    });
                }
            }
        });

        let mut stages = plock(&stats).clone();
        let autoscale = plock(&controller)
            .take()
            .map(WidthController::into_report)
            .unwrap_or_default();
        let mut e2e_us = Histogram::default();
        for (s, probe) in probes.iter().enumerate() {
            if let Some(p) = probe {
                stages[s].residence_us = p.residence();
                if let Some(h) = p.e2e() {
                    e2e_us = h;
                }
            }
        }
        // Merge per-thread samples (each egress pump reports separately)
        // into one entry per link.
        let mut net_links: Vec<(u32, NetLinkStats)> = Vec::new();
        for (link, st) in std::mem::take(&mut *plock(&net_stats)) {
            if let Some((_, agg)) = net_links.iter_mut().find(|(l, _)| *l == link) {
                agg.frames += st.frames;
                agg.bytes += st.bytes;
                agg.deduped += st.deduped;
                agg.timeouts += st.timeouts;
                agg.reconnects += st.reconnects;
            } else {
                net_links.push((link, st));
            }
        }
        net_links.sort_by_key(|(link, _)| *link);
        if let Some(registry) = &self.metrics {
            let mut reg = plock(registry);
            for (link, st) in &net_links {
                reg.counter(&format!("net.link{link}.frames"), st.frames);
                reg.counter(&format!("net.link{link}.bytes"), st.bytes);
                if st.deduped > 0 {
                    reg.counter(&format!("net.link{link}.deduped"), st.deduped);
                }
                if st.timeouts > 0 {
                    reg.counter(&format!("net.link{link}.timeouts"), st.timeouts);
                }
                if st.reconnects > 0 {
                    reg.counter(&format!("net.link{link}.reconnects"), st.reconnects);
                }
            }
            for (s, st) in stages.iter().enumerate() {
                if st.failures > 0 {
                    reg.counter(&format!("stage.{}.failures", st.name), st.failures);
                }
                if st.retries > 0 {
                    reg.counter(&format!("stage.{}.retries", st.name), st.retries);
                }
                if st.panics > 0 {
                    reg.counter(&format!("stage.{}.panics", st.name), st.panics);
                }
                if st.pool_hits > 0 {
                    reg.counter(&format!("stage.{}.pool.hits", st.name), st.pool_hits);
                }
                if st.pool_misses > 0 {
                    reg.counter(&format!("stage.{}.pool.misses", st.name), st.pool_misses);
                }
                if st.recoveries > 0 {
                    reg.counter(&format!("stage.{}.recoveries", st.name), st.recoveries);
                }
                if st.replayed_packets > 0 {
                    reg.counter(&format!("stage.{}.replayed", st.name), st.replayed_packets);
                }
                if st.checkpoints > 0 {
                    reg.counter(&format!("stage.{}.checkpoints", st.name), st.checkpoints);
                    reg.counter(
                        &format!("stage.{}.checkpoint_bytes", st.name),
                        st.checkpoint_bytes,
                    );
                }
                // Measured per-stage rates for post-run cost-model
                // calibration — pushed for every locally-run stage when
                // telemetry is on, so the launcher's merged registry has
                // a complete picture.
                if self.telemetry.is_some() && active_stage.is_none_or(|k| k == s) {
                    reg.counter(
                        &format!("stage.{}.busy_us", st.name),
                        st.busy.as_micros() as u64,
                    );
                    reg.counter(
                        &format!("stage.{}.blocked_send_us", st.name),
                        st.blocked_send.as_micros() as u64,
                    );
                    reg.counter(
                        &format!("stage.{}.blocked_recv_us", st.name),
                        st.blocked_recv.as_micros() as u64,
                    );
                    reg.counter(&format!("stage.{}.buffers_in", st.name), st.buffers_in);
                    reg.counter(&format!("stage.{}.buffers_out", st.name), st.buffers_out);
                    if st.residence_us.count > 0 {
                        reg.merge_histogram(
                            &format!("stage.{}.residence_us", st.name),
                            &st.residence_us,
                        );
                    }
                }
            }
            if e2e_us.count > 0 {
                reg.merge_histogram("pipeline.e2e_us", &e2e_us);
            }
            if autoscale.grows() > 0 {
                reg.counter("autoscale.grows", autoscale.grows());
            }
            if autoscale.shrinks() > 0 {
                reg.counter("autoscale.shrinks", autoscale.shrinks());
            }
            if autoscale.escalation.is_some() {
                reg.counter("autoscale.escalations", 1);
            }
        }

        // Final telemetry flush: a fin-stamped sample plus the full
        // registry snapshot, recorded locally and shipped to the launcher
        // when configured — even when the run itself failed.
        if let Some(tcfg) = &self.telemetry {
            let sample = build_sample(
                &tcfg.source,
                t0.elapsed().as_micros() as u64,
                now_us(),
                true,
                &probes,
                self.pool.as_ref(),
                &link_probes,
            );
            let stamped = tcfg.sampler.record(sample);
            let mut client = plock(&telemetry_client).take();
            if client.is_none() {
                if let Some(addr) = &tcfg.ship_to {
                    client =
                        TelemetryClient::connect(addr, worker_id, Some(Arc::clone(&control))).ok();
                }
            }
            if let Some(mut client) = client {
                let payload = {
                    let reg = self.metrics.as_ref().map(|m| plock(m));
                    encode_telemetry_payload(&tcfg.source, true, Some(&stamped), reg.as_deref())
                };
                let _ = client.send(&payload);
                client.close();
            }
        }

        let errors = std::mem::take(&mut *plock(&errors));
        // A real failure outranks the cancellation noise it causes.
        if let Some(e) = errors.iter().find(|e| e.kind != ErrorKind::Cancelled) {
            return Err(e.clone());
        }
        if let Some(reason) = control.reason() {
            let blocked = plock(&stalled_at);
            let detail = if blocked.is_empty() {
                "no copy was blocked in a stream operation".to_string()
            } else {
                blocked.join("; ")
            };
            return Err(FilterError::stalled(
                "pipeline",
                format!("{reason}; {detail}"),
            ));
        }
        if let Some(e) = errors.first() {
            return Err(e.clone());
        }
        Ok(RunStats {
            wall: t0.elapsed(),
            stages,
            net_links,
            e2e_us,
            autoscale,
        })
    }
}

/// Decrement the shared completion count, waking the watchdog when the
/// last thread finishes.
fn countdown(done: &(Mutex<usize>, Condvar)) {
    let (remaining, cv) = done;
    let mut left = plock(remaining);
    *left -= 1;
    if *left == 0 {
        cv.notify_all();
    }
}

/// Deadline/stall watchdog: waits for all copies to finish; on deadline
/// expiry or lack of progress, cancels the run (waking every blocked
/// stream operation) with a reason the final error reports.
fn watchdog(
    control: &RunControl,
    done: &(Mutex<usize>, Condvar),
    deadline: Option<Duration>,
    stall_timeout: Option<Duration>,
) {
    let start = Instant::now();
    let tick = Duration::from_millis(10);
    let (remaining, cv) = done;
    let mut last_progress = control.progress();
    let mut last_change = Instant::now();
    let mut left = plock(remaining);
    loop {
        if *left == 0 {
            return;
        }
        let (g, _) = cv
            .wait_timeout(left, tick)
            .unwrap_or_else(|e| e.into_inner());
        left = g;
        if *left == 0 {
            return;
        }
        if let Some(d) = deadline {
            if start.elapsed() >= d {
                control.cancel(format!("run deadline {d:?} exceeded"));
                return;
            }
        }
        if let Some(s) = stall_timeout {
            let p = control.progress();
            if p != last_progress {
                last_progress = p;
                last_change = Instant::now();
            } else if last_change.elapsed() >= s {
                control.cancel(format!("no packet progress for {s:?} (stall timeout)"));
                return;
            }
        }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::filter::{ClosureFilter, Filter};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn source(n: u64) -> FilterFactory {
        Box::new(move |_| {
            Box::new(ClosureFilter::new("src", move |io: &mut FilterIo| {
                for i in 0..n {
                    io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                }
                Ok(())
            }))
        })
    }

    #[test]
    fn three_stage_pipeline_computes() {
        let total = Arc::new(AtomicU64::new(0));
        let total2 = Arc::clone(&total);
        let stats = Pipeline::new()
            .add_stage(StageSpec::new("source", 1, source(100)))
            .add_stage(StageSpec::new(
                "square",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("square", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            let v = b.u64_le("square")?;
                            io.write(Buffer::from_vec((v * v).to_le_bytes().to_vec()))?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "sum",
                1,
                Box::new(move |_| {
                    let total = Arc::clone(&total2);
                    Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            total.fetch_add(b.u64_le("sum")?, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        let expect: u64 = (0..100u64).map(|i| i * i).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
        assert_eq!(stats.stages[0].buffers_out, 100);
        assert_eq!(stats.stages[2].buffers_in, 100);
        assert_eq!(stats.failures(), 0);
        assert_eq!(stats.panics(), 0);
    }

    #[test]
    fn transparent_copies_preserve_totals() {
        for width in [1usize, 2, 4] {
            let total = Arc::new(AtomicU64::new(0));
            let total2 = Arc::clone(&total);
            Pipeline::new()
                .add_stage(StageSpec::new("source", 1, source(200)))
                .add_stage(StageSpec::new(
                    "work",
                    width,
                    Box::new(|_| {
                        Box::new(ClosureFilter::new("work", |io: &mut FilterIo| {
                            while let Some(b) = io.read() {
                                io.write(b)?;
                            }
                            Ok(())
                        }))
                    }),
                ))
                .add_stage(StageSpec::new(
                    "sum",
                    1,
                    Box::new(move |_| {
                        let total = Arc::clone(&total2);
                        Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                            while let Some(b) = io.read() {
                                total.fetch_add(b.u64_le("sum")?, Ordering::Relaxed);
                            }
                            Ok(())
                        }))
                    }),
                ))
                .run()
                .unwrap();
            assert_eq!(
                total.load(Ordering::Relaxed),
                (0..200).sum::<u64>(),
                "width={width}"
            );
        }
    }

    #[test]
    fn finalize_flushes_partial_state() {
        // Each copy accumulates locally, flushing its partial sum at
        // finalize — the reduction pattern.
        struct Acc {
            sum: u64,
        }
        impl Filter for Acc {
            fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
                while let Some(b) = io.read() {
                    self.sum += b.u64_le("acc")?;
                }
                Ok(())
            }
            fn finalize(&mut self, io: &mut FilterIo) -> FilterResult<()> {
                io.write(Buffer::from_vec(self.sum.to_le_bytes().to_vec()))
            }
            fn name(&self) -> &str {
                "acc"
            }
        }
        let total = Arc::new(AtomicU64::new(0));
        let total2 = Arc::clone(&total);
        Pipeline::new()
            .add_stage(StageSpec::new("source", 1, source(100)))
            .add_stage(StageSpec::new(
                "acc",
                3,
                Box::new(|_| Box::new(Acc { sum: 0 })),
            ))
            .add_stage(StageSpec::new(
                "merge",
                1,
                Box::new(move |_| {
                    let total = Arc::clone(&total2);
                    Box::new(ClosureFilter::new("merge", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            total.fetch_add(b.u64_le("merge")?, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn error_propagates_and_does_not_hang() {
        let err = Pipeline::new()
            .add_stage(StageSpec::new("source", 1, source(1000)))
            .add_stage(StageSpec::new(
                "bad",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("bad", |io: &mut FilterIo| {
                        let _ = io.read();
                        Err(FilterError::new("bad", "intentional"))
                    }))
                }),
            ))
            .run()
            .unwrap_err();
        assert!(err.filter.contains("bad"));
        assert!(err.message.contains("intentional"));
        assert_eq!(err.kind, ErrorKind::Failed);
    }

    #[test]
    fn malformed_packet_is_a_structured_error_not_a_panic() {
        let err = Pipeline::new()
            .add_stage(StageSpec::new(
                "source",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("src", |io: &mut FilterIo| {
                        io.write(Buffer::from_vec(vec![1, 2, 3])) // short
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "sum",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("sum", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            b.u64_le("sum")?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Malformed);
        assert_eq!(err.filter, "sum[0]");
    }

    #[test]
    fn empty_pipeline_is_an_error() {
        assert!(Pipeline::new().run().is_err());
    }

    #[test]
    fn backpressure_small_capacity_still_completes() {
        let total = Arc::new(AtomicU64::new(0));
        let total2 = Arc::clone(&total);
        Pipeline::new()
            .with_capacity(1)
            .add_stage(StageSpec::new("source", 1, source(500)))
            .add_stage(StageSpec::new(
                "sink",
                1,
                Box::new(move |_| {
                    let total = Arc::clone(&total2);
                    Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                        while let Some(_b) = io.read() {
                            total.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn recovery_survives_a_panic_in_a_stateless_stage_exactly_once() {
        let total = Arc::new(AtomicU64::new(0));
        let total2 = Arc::clone(&total);
        let stats = Pipeline::new()
            .with_faults(FaultPlan::new().panic_at("work", 0, 50))
            .with_recovery(crate::recover::RecoveryOptions::on())
            .add_stage(StageSpec::new("source", 1, source(200)))
            .add_stage(StageSpec::new(
                "work",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("work", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            io.write(b)?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "sum",
                1,
                Box::new(move |_| {
                    let total = Arc::clone(&total2);
                    Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            total.fetch_add(b.u64_le("sum")?, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        // The panicked packet and everything unacked was replayed; dedup
        // kept the totals exact.
        assert_eq!(total.load(Ordering::Relaxed), (0..200).sum::<u64>());
        assert_eq!(stats.panics(), 1);
        assert_eq!(stats.recoveries(), 1);
        assert!(stats.replayed_packets() >= 1);
    }

    /// Pass-through filter that burns `us` of wall time per packet — a
    /// deliberately compute-bound stage for autoscale tests.
    fn spin_work(us: u64) -> FilterFactory {
        Box::new(move |_| {
            Box::new(ClosureFilter::new("work", move |io: &mut FilterIo| {
                while let Some(b) = io.read() {
                    let t = Instant::now();
                    while t.elapsed() < Duration::from_micros(us) {
                        std::hint::spin_loop();
                    }
                    io.write(b)?;
                }
                Ok(())
            }))
        })
    }

    fn sampler_ms(ms: u64) -> Arc<cgp_obs::telemetry::TelemetrySampler> {
        Arc::new(cgp_obs::telemetry::TelemetrySampler::new(
            Duration::from_millis(ms),
        ))
    }

    fn sum_sink(total: &Arc<AtomicU64>) -> FilterFactory {
        let total = Arc::clone(total);
        Box::new(move |_| {
            let total = Arc::clone(&total);
            Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                while let Some(b) = io.read() {
                    total.fetch_add(b.u64_le("sum")?, Ordering::Relaxed);
                }
                Ok(())
            }))
        })
    }

    #[test]
    fn autoscale_preconditions_are_enforced() {
        let err = Pipeline::new()
            .with_autoscale(AutoscaleConfig::default())
            .add_stage(StageSpec::new("source", 1, source(10)))
            .add_stage(StageSpec::new("work", 1, spin_work(0)))
            .add_stage(StageSpec::new("sum", 1, source(0)))
            .run()
            .unwrap_err();
        assert!(err.message.contains("telemetry"), "{err}");
        let err = Pipeline::new()
            .with_distribution(Distribution::Shared)
            .with_telemetry(TelemetryConfig::new(sampler_ms(1), "local"))
            .with_autoscale(AutoscaleConfig::default())
            .add_stage(StageSpec::new("source", 1, source(10)))
            .add_stage(StageSpec::new("work", 1, spin_work(0)))
            .add_stage(StageSpec::new("sum", 1, source(0)))
            .run()
            .unwrap_err();
        assert!(err.message.contains("round-robin"), "{err}");
    }

    #[test]
    fn autoscaled_run_widens_under_load_with_identical_output() {
        let total = Arc::new(AtomicU64::new(0));
        let stats = Pipeline::new()
            .with_telemetry(TelemetryConfig::new(sampler_ms(2), "local"))
            .with_autoscale(
                AutoscaleConfig::parse("max=4,grow=2,cooldown=0")
                    .unwrap()
                    .unwrap(),
            )
            .add_stage(StageSpec::new("source", 1, source(300)))
            .add_stage(StageSpec::new("work", 1, spin_work(400)))
            .add_stage(StageSpec::new("sum", 1, sum_sink(&total)))
            .run()
            .unwrap();
        // Output is width-independent: the exact fixed-width total.
        assert_eq!(total.load(Ordering::Relaxed), (0..300).sum::<u64>());
        // The interior stage was provisioned at the cap (all four copy
        // threads ran and reported), and the step load actually widened
        // the rotation.
        assert_eq!(stats.stages[1].busy_per_copy.len(), 4);
        assert!(
            stats.autoscale.grows() >= 1,
            "a 400µs/packet bottleneck behind a fast source must widen: {:?}",
            stats.autoscale.events
        );
        let first = &stats.autoscale.events[0];
        assert_eq!((first.stage.as_str(), first.from, first.to), ("work", 1, 2));
    }

    #[test]
    fn autoscaled_recovery_masks_a_mid_run_fault_with_identical_output() {
        let total = Arc::new(AtomicU64::new(0));
        let stats = Pipeline::new()
            .with_faults(FaultPlan::new().panic_at("work", 0, 50))
            .with_recovery(crate::recover::RecoveryOptions::on())
            .with_telemetry(TelemetryConfig::new(sampler_ms(2), "local"))
            .with_autoscale(
                AutoscaleConfig::parse("max=4,grow=2,cooldown=0")
                    .unwrap()
                    .unwrap(),
            )
            .add_stage(StageSpec::new("source", 1, source(300)))
            .add_stage(StageSpec::new("work", 1, spin_work(300)))
            .add_stage(StageSpec::new("sum", 1, sum_sink(&total)))
            .run()
            .unwrap();
        // A copy panic mid-scale is masked by the replay protocol and
        // the total stays byte-exact — width decisions are routing-only.
        assert_eq!(total.load(Ordering::Relaxed), (0..300).sum::<u64>());
        assert_eq!(stats.panics(), 1);
        assert_eq!(stats.recoveries(), 1);
    }

    #[test]
    fn busy_carry_seeds_stats_and_live_samples() {
        let total = Arc::new(AtomicU64::new(0));
        let sampler = sampler_ms(1);
        let carry = vec![Vec::new(), vec![Duration::from_millis(500)]];
        let stats = Pipeline::new()
            .with_telemetry(TelemetryConfig::new(Arc::clone(&sampler), "local"))
            .with_busy_carry(carry)
            .add_stage(StageSpec::new("source", 1, source(50)))
            .add_stage(StageSpec::new("work", 1, spin_work(0)))
            .add_stage(StageSpec::new("sum", 1, sum_sink(&total)))
            .run()
            .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), (0..50).sum::<u64>());
        // Final stats accumulate on top of the carried seed instead of
        // overwriting it.
        assert!(stats.stages[1].busy_per_copy[0] >= Duration::from_millis(500));
        assert!(stats.stages[1].busy >= Duration::from_millis(500));
        // The fin-stamped sample reads the carry through the live probe,
        // so a redeployed pipeline's telemetry never jumps backwards.
        let last = sampler.latest().expect("fin sample recorded");
        let ws = last
            .stages
            .iter()
            .find(|s| s.stage == "work")
            .expect("work stage sampled");
        assert!(ws.busy_us_per_copy[0] >= 500_000);
    }

    #[test]
    fn recovery_restores_a_checkpointed_stateful_stage() {
        struct CkptSum {
            sum: u64,
        }
        impl Filter for CkptSum {
            fn restore(&mut self, snapshot: &[u8]) -> FilterResult<()> {
                let bytes: [u8; 8] = snapshot
                    .try_into()
                    .map_err(|_| FilterError::malformed("ckpt-sum", "bad snapshot"))?;
                self.sum = u64::from_le_bytes(bytes);
                Ok(())
            }
            fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
                while let Some(b) = io.read() {
                    self.sum += b.u64_le("ckpt-sum")?;
                    if io.checkpoint_due() {
                        io.commit_checkpoint(&self.sum.to_le_bytes())?;
                    }
                }
                Ok(())
            }
            fn finalize(&mut self, io: &mut FilterIo) -> FilterResult<()> {
                io.write(Buffer::from_vec(self.sum.to_le_bytes().to_vec()))
            }
            fn name(&self) -> &str {
                "ckpt-sum"
            }
        }
        let total = Arc::new(AtomicU64::new(0));
        let total2 = Arc::clone(&total);
        let stats = Pipeline::new()
            .with_faults(FaultPlan::new().panic_at("acc", 0, 150))
            .with_recovery(crate::recover::RecoveryOptions::on().with_checkpoint_every(16))
            .add_stage(StageSpec::new("source", 1, source(200)))
            .add_stage(
                StageSpec::new("acc", 1, Box::new(|_| Box::new(CkptSum { sum: 0 }))).stateful(),
            )
            .add_stage(StageSpec::new(
                "merge",
                1,
                Box::new(move |_| {
                    let total = Arc::clone(&total2);
                    Box::new(ClosureFilter::new("merge", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            total.fetch_add(b.u64_le("merge")?, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        // 150 packets accepted before the panic, far past several
        // checkpoints: the restart restored state and replayed only the
        // unacked tail, so the final sum is exact (no loss, no double
        // counting).
        assert_eq!(total.load(Ordering::Relaxed), (0..200).sum::<u64>());
        assert_eq!(stats.recoveries(), 1);
        assert!(stats.checkpoints() >= 9, "got {}", stats.checkpoints());
        assert!(stats.checkpoint_bytes() >= 8 * stats.checkpoints());
        // Replay is bounded by the ack cadence, not the run length.
        assert!(
            stats.replayed_packets() <= 16 + 64 + 1,
            "replayed {} packets",
            stats.replayed_packets()
        );
    }

    #[test]
    fn stateful_stage_without_restore_fails_the_restart_loudly() {
        struct NoRestore {
            sum: u64,
        }
        impl Filter for NoRestore {
            fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
                while let Some(b) = io.read() {
                    self.sum += b.u64_le("no-restore")?;
                    if io.checkpoint_due() {
                        io.commit_checkpoint(&self.sum.to_le_bytes())?;
                    }
                }
                Ok(())
            }
            fn name(&self) -> &str {
                "no-restore"
            }
        }
        let err = Pipeline::new()
            .with_faults(FaultPlan::new().panic_at("acc", 0, 50))
            .with_recovery(
                crate::recover::RecoveryOptions::on()
                    .with_checkpoint_every(8)
                    .with_max_restarts(1),
            )
            .add_stage(StageSpec::new("source", 1, source(100)))
            .add_stage(
                StageSpec::new("acc", 1, Box::new(|_| Box::new(NoRestore { sum: 0 }))).stateful(),
            )
            .run()
            .unwrap_err();
        assert!(
            err.message.contains("no restore support"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn recovery_rejects_shared_distribution() {
        let err = Pipeline::new()
            .with_distribution(Distribution::Shared)
            .with_recovery(crate::recover::RecoveryOptions::on())
            .add_stage(StageSpec::new("source", 1, source(1)))
            .run()
            .unwrap_err();
        assert!(err.message.contains("round-robin"));
    }

    #[test]
    fn restart_budget_exhaustion_surfaces_the_error() {
        let err = Pipeline::new()
            // Panic on every packet: restarts keep replaying into the
            // same panic until the budget runs out.
            .with_faults(FaultPlan::parse("work[0]@*:panic").unwrap())
            .with_recovery(crate::recover::RecoveryOptions::on().with_max_restarts(2))
            .add_stage(StageSpec::new("source", 1, source(10)))
            .add_stage(StageSpec::new(
                "work",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("work", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            io.write(b)?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Panicked);
        assert_eq!(err.filter, "work[0]");
    }

    #[test]
    fn deadline_on_healthy_pipeline_is_inert() {
        let stats = Pipeline::new()
            .with_deadline(Duration::from_secs(30))
            .with_stall_timeout(Duration::from_secs(30))
            .add_stage(StageSpec::new("source", 1, source(50)))
            .add_stage(StageSpec::new(
                "sink",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("sink", |io: &mut FilterIo| {
                        while io.read().is_some() {}
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        assert_eq!(stats.stages[1].buffers_in, 50);
    }
}
