//! Threaded pipeline executor.
//!
//! Builds the logical streams between consecutive stages (honouring each
//! stage's transparent-copy width) and runs every filter copy on its own
//! thread through the unit-of-work cycle `init → process → finalize →
//! close-output`.

use crate::error::{FilterError, FilterResult};
use crate::filter::{FilterFactory, FilterIo};
use crate::stream::{logical_stream, Distribution};
use cgp_obs::trace::{self, PID_RUNTIME};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One pipeline stage: a logical filter with `width` transparent copies.
pub struct StageSpec {
    pub name: String,
    pub width: usize,
    pub factory: FilterFactory,
}

impl StageSpec {
    pub fn new(name: impl Into<String>, width: usize, factory: FilterFactory) -> Self {
        assert!(width >= 1);
        StageSpec {
            name: name.into(),
            width,
            factory,
        }
    }
}

/// Per-stage statistics from a run.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    pub name: String,
    pub buffers_in: u64,
    pub bytes_in: u64,
    pub buffers_out: u64,
    pub bytes_out: u64,
    /// Wall-clock busy time **summed over copies**: with `w` transparent
    /// copies running concurrently this can legitimately exceed
    /// [`RunStats::wall`] (up to `w × wall`). Use [`busy_per_copy`]
    /// for per-thread intervals and `busy / width` for an average.
    ///
    /// [`busy_per_copy`]: StageStats::busy_per_copy
    pub busy: Duration,
    /// Wall-clock busy time of each transparent copy, indexed by copy;
    /// `busy` is exactly the sum of these entries.
    pub busy_per_copy: Vec<Duration>,
    /// Total time this stage's copies spent blocked in sends
    /// (throttled by downstream backpressure), summed over copies.
    pub blocked_send: Duration,
    /// Total time this stage's copies spent blocked in receives
    /// (starved for upstream data), summed over copies.
    pub blocked_recv: Duration,
}

/// Result of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub wall: Duration,
    pub stages: Vec<StageStats>,
}

/// A linear pipeline of stages connected by logical streams.
pub struct Pipeline {
    stages: Vec<StageSpec>,
    buffer_capacity: usize,
    distribution: Distribution,
}

impl Pipeline {
    pub fn new() -> Self {
        Pipeline {
            stages: Vec::new(),
            buffer_capacity: 64,
            distribution: Distribution::RoundRobin,
        }
    }

    /// Queue depth (buffers in flight) per stream; provides backpressure.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0);
        self.buffer_capacity = capacity;
        self
    }

    pub fn with_distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    pub fn add_stage(mut self, stage: StageSpec) -> Self {
        self.stages.push(stage);
        self
    }

    /// Run one unit of work through the whole pipeline.
    pub fn run(self) -> FilterResult<RunStats> {
        if self.stages.is_empty() {
            return Err(FilterError::new("pipeline", "no stages"));
        }
        let t0 = Instant::now();
        let n = self.stages.len();

        // Build streams between consecutive stages.
        let mut writers_per_stage: Vec<Vec<Option<crate::stream::StreamWriter>>> =
            (0..n).map(|_| Vec::new()).collect();
        let mut readers_per_stage: Vec<Vec<Option<crate::stream::StreamReader>>> =
            (0..n).map(|_| Vec::new()).collect();
        for s in 0..n {
            readers_per_stage[s] = (0..self.stages[s].width).map(|_| None).collect();
            writers_per_stage[s] = (0..self.stages[s].width).map(|_| None).collect();
        }
        for s in 0..n.saturating_sub(1) {
            let (ws, rs) = logical_stream(
                self.stages[s].width,
                self.stages[s + 1].width,
                self.buffer_capacity,
                self.distribution,
            );
            for (i, w) in ws.into_iter().enumerate() {
                writers_per_stage[s][i] = Some(w);
            }
            for (i, r) in rs.into_iter().enumerate() {
                readers_per_stage[s + 1][i] = Some(r);
            }
        }

        // Spawn every copy. Trace tids number filter copies globally
        // (stage by stage), one timeline row per copy.
        let tid_base: Vec<u32> = self
            .stages
            .iter()
            .scan(0u32, |acc, s| {
                let base = *acc;
                *acc += s.width as u32;
                Some(base)
            })
            .collect();
        if trace::enabled() {
            trace::name_process(PID_RUNTIME, "datacutter");
        }
        let stats: Arc<Mutex<Vec<StageStats>>> = Arc::new(Mutex::new(
            self.stages
                .iter()
                .map(|s| StageStats {
                    name: s.name.clone(),
                    busy_per_copy: vec![Duration::ZERO; s.width],
                    ..Default::default()
                })
                .collect(),
        ));
        let first_error: Arc<Mutex<Option<FilterError>>> = Arc::new(Mutex::new(None));

        std::thread::scope(|scope| {
            for (s, stage) in self.stages.iter().enumerate() {
                for c in 0..stage.width {
                    let mut filter = (stage.factory)(c);
                    let tid = tid_base[s] + c as u32;
                    let mut io = FilterIo {
                        input: readers_per_stage[s][c].take(),
                        output: writers_per_stage[s][c].take(),
                        copy_index: c,
                        width: stage.width,
                    };
                    if let Some(r) = io.input.as_mut() {
                        r.set_trace_tid(tid);
                    }
                    if let Some(w) = io.output.as_mut() {
                        w.set_trace_tid(tid);
                    }
                    let stats = Arc::clone(&stats);
                    let first_error = Arc::clone(&first_error);
                    let stage_name = stage.name.clone();
                    scope.spawn(move || {
                        if trace::enabled() {
                            trace::name_thread(PID_RUNTIME, tid, format!("{stage_name}[{c}]"));
                        }
                        let mut copy_span =
                            trace::span(format!("{stage_name}[{c}]"), "filter", PID_RUNTIME, tid);
                        let t = Instant::now();
                        let result = (|| {
                            {
                                let _s = trace::span("init", "filter-phase", PID_RUNTIME, tid);
                                filter.init(&mut io)?;
                            }
                            {
                                let _s = trace::span("process", "filter-phase", PID_RUNTIME, tid);
                                filter.process(&mut io)?;
                            }
                            let _s = trace::span("finalize", "filter-phase", PID_RUNTIME, tid);
                            filter.finalize(&mut io)
                        })();
                        // Close output so downstream sees end-of-work even
                        // on error.
                        if let Some(w) = io.output.as_mut() {
                            w.close();
                        }
                        // Drain remaining input on error to unblock
                        // upstream writers.
                        if result.is_err() {
                            while io.read().is_some() {}
                        }
                        let busy = t.elapsed();
                        {
                            let mut st = stats.lock().unwrap();
                            let entry = &mut st[s];
                            if let Some(r) = &io.input {
                                let (b, by) = r.stats();
                                entry.buffers_in += b;
                                entry.bytes_in += by;
                                entry.blocked_recv += r.blocked();
                                if copy_span.is_recording() {
                                    copy_span.arg("buffers_in", b);
                                    copy_span
                                        .arg("blocked_recv_us", r.blocked().as_micros() as u64);
                                }
                            }
                            if let Some(w) = &io.output {
                                let (b, by) = w.stats();
                                entry.buffers_out += b;
                                entry.bytes_out += by;
                                entry.blocked_send += w.blocked();
                                if copy_span.is_recording() {
                                    copy_span.arg("buffers_out", b);
                                    copy_span
                                        .arg("blocked_send_us", w.blocked().as_micros() as u64);
                                }
                            }
                            entry.busy += busy;
                            entry.busy_per_copy[c] = busy;
                        }
                        drop(copy_span);
                        if let Err(e) = result {
                            let mut fe = first_error.lock().unwrap();
                            if fe.is_none() {
                                *fe =
                                    Some(FilterError::new(format!("{stage_name}[{c}]"), e.message));
                            }
                        }
                    });
                }
            }
        });

        if let Some(e) = first_error.lock().unwrap().take() {
            return Err(e);
        }
        let stages = stats.lock().unwrap().clone();
        Ok(RunStats {
            wall: t0.elapsed(),
            stages,
        })
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::filter::{ClosureFilter, Filter};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn source(n: u64) -> FilterFactory {
        Box::new(move |_| {
            Box::new(ClosureFilter::new("src", move |io: &mut FilterIo| {
                for i in 0..n {
                    io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                }
                Ok(())
            }))
        })
    }

    #[test]
    fn three_stage_pipeline_computes() {
        let total = Arc::new(AtomicU64::new(0));
        let total2 = Arc::clone(&total);
        let stats = Pipeline::new()
            .add_stage(StageSpec::new("source", 1, source(100)))
            .add_stage(StageSpec::new(
                "square",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("square", |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                            io.write(Buffer::from_vec((v * v).to_le_bytes().to_vec()))?;
                        }
                        Ok(())
                    }))
                }),
            ))
            .add_stage(StageSpec::new(
                "sum",
                1,
                Box::new(move |_| {
                    let total = Arc::clone(&total2);
                    Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                            total.fetch_add(v, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        let expect: u64 = (0..100u64).map(|i| i * i).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
        assert_eq!(stats.stages[0].buffers_out, 100);
        assert_eq!(stats.stages[2].buffers_in, 100);
    }

    #[test]
    fn transparent_copies_preserve_totals() {
        for width in [1usize, 2, 4] {
            let total = Arc::new(AtomicU64::new(0));
            let total2 = Arc::clone(&total);
            Pipeline::new()
                .add_stage(StageSpec::new("source", 1, source(200)))
                .add_stage(StageSpec::new(
                    "work",
                    width,
                    Box::new(|_| {
                        Box::new(ClosureFilter::new("work", |io: &mut FilterIo| {
                            while let Some(b) = io.read() {
                                io.write(b)?;
                            }
                            Ok(())
                        }))
                    }),
                ))
                .add_stage(StageSpec::new(
                    "sum",
                    1,
                    Box::new(move |_| {
                        let total = Arc::clone(&total2);
                        Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                            while let Some(b) = io.read() {
                                let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                                total.fetch_add(v, Ordering::Relaxed);
                            }
                            Ok(())
                        }))
                    }),
                ))
                .run()
                .unwrap();
            assert_eq!(
                total.load(Ordering::Relaxed),
                (0..200).sum::<u64>(),
                "width={width}"
            );
        }
    }

    #[test]
    fn finalize_flushes_partial_state() {
        // Each copy accumulates locally, flushing its partial sum at
        // finalize — the reduction pattern.
        struct Acc {
            sum: u64,
        }
        impl Filter for Acc {
            fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
                while let Some(b) = io.read() {
                    self.sum += u64::from_le_bytes(b.as_slice().try_into().unwrap());
                }
                Ok(())
            }
            fn finalize(&mut self, io: &mut FilterIo) -> FilterResult<()> {
                io.write(Buffer::from_vec(self.sum.to_le_bytes().to_vec()))
            }
            fn name(&self) -> &str {
                "acc"
            }
        }
        let total = Arc::new(AtomicU64::new(0));
        let total2 = Arc::clone(&total);
        Pipeline::new()
            .add_stage(StageSpec::new("source", 1, source(100)))
            .add_stage(StageSpec::new(
                "acc",
                3,
                Box::new(|_| Box::new(Acc { sum: 0 })),
            ))
            .add_stage(StageSpec::new(
                "merge",
                1,
                Box::new(move |_| {
                    let total = Arc::clone(&total2);
                    Box::new(ClosureFilter::new("merge", move |io: &mut FilterIo| {
                        while let Some(b) = io.read() {
                            let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                            total.fetch_add(v, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn error_propagates_and_does_not_hang() {
        let err = Pipeline::new()
            .add_stage(StageSpec::new("source", 1, source(1000)))
            .add_stage(StageSpec::new(
                "bad",
                1,
                Box::new(|_| {
                    Box::new(ClosureFilter::new("bad", |io: &mut FilterIo| {
                        let _ = io.read();
                        Err(FilterError::new("bad", "intentional"))
                    }))
                }),
            ))
            .run()
            .unwrap_err();
        assert!(err.filter.contains("bad"));
        assert!(err.message.contains("intentional"));
    }

    #[test]
    fn empty_pipeline_is_an_error() {
        assert!(Pipeline::new().run().is_err());
    }

    #[test]
    fn backpressure_small_capacity_still_completes() {
        let total = Arc::new(AtomicU64::new(0));
        let total2 = Arc::clone(&total);
        Pipeline::new()
            .with_capacity(1)
            .add_stage(StageSpec::new("source", 1, source(500)))
            .add_stage(StageSpec::new(
                "sink",
                1,
                Box::new(move |_| {
                    let total = Arc::clone(&total2);
                    Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                        while let Some(_b) = io.read() {
                            total.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(())
                    }))
                }),
            ))
            .run()
            .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 500);
    }
}
