//! Bounded MPMC channel.
//!
//! The stream layer needs a small slice of crossbeam's channel API —
//! `bounded`, cloneable `Sender`/`Receiver`, blocking `send`/`recv`
//! with disconnect detection — and the build environment is offline,
//! so this provides exactly that on `Mutex` + `Condvar`. The queue
//! bound is what gives streams backpressure (a full queue blocks the
//! producer, exactly DataCutter's fixed-buffer-pool behaviour).
//!
//! Channels can optionally be tied to a [`CancelToken`]
//! ([`bounded_cancellable`]): cancelling the token wakes every blocked
//! `send`/`recv` and makes them fail like a disconnect, which is how the
//! executor's deadline/stall watchdog unwedges a blocked pipeline
//! without killing threads. All internal locking is poison-tolerant: a
//! filter copy that panics must not turn other copies' channel
//! operations into secondary panics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Poison-tolerant lock: a panicked peer thread must not cascade.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Error returned by [`Sender::send`] when every receiver is gone (or
/// the channel's [`CancelToken`] fired); carries the rejected message
/// back like crossbeam's.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the queue is empty and
/// every sender is gone (or the channel's [`CancelToken`] fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Cooperative cancellation for a set of channels (one per pipeline
/// run). [`CancelToken::cancel`] is sticky: every current and future
/// blocking `send`/`recv` on a channel built with
/// [`bounded_cancellable`] fails promptly.
#[derive(Clone, Default)]
pub struct CancelToken {
    shared: Arc<CancelShared>,
}

#[derive(Default)]
struct CancelShared {
    flag: AtomicBool,
    /// One waker per registered channel; each notifies both condvars so
    /// blocked threads re-check the flag.
    wakers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_cancelled(&self) -> bool {
        self.shared.flag.load(Ordering::Acquire)
    }

    /// Cancel: wake every blocked operation on registered channels.
    /// Idempotent.
    pub fn cancel(&self) {
        self.shared.flag.store(true, Ordering::Release);
        for wake in plock(&self.shared.wakers).iter() {
            wake();
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cancel: Option<Arc<CancelShared>>,
}

impl<T> Inner<T> {
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.flag.load(Ordering::Acquire))
    }
}

fn make<T>(capacity: usize, cancel: Option<&CancelToken>) -> (Sender<T>, Receiver<T>)
where
    T: Send + 'static,
{
    assert!(capacity > 0, "channel capacity must be positive");
    let inner = Arc::new(Inner {
        capacity,
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cancel: cancel.map(|t| Arc::clone(&t.shared)),
    });
    if let Some(token) = cancel {
        let weak = Arc::downgrade(&inner);
        plock(&token.shared.wakers).push(Box::new(move || {
            if let Some(inner) = weak.upgrade() {
                // Touch the lock so wakes cannot race a thread that has
                // checked the flag but not yet parked on the condvar.
                drop(plock(&inner.state));
                inner.not_empty.notify_all();
                inner.not_full.notify_all();
            }
        }));
    }
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// Create a bounded MPMC channel holding at most `capacity` messages.
pub fn bounded<T: Send + 'static>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    make(capacity, None)
}

/// Create a bounded MPMC channel whose blocking operations also abort
/// (as if disconnected) once `token` is cancelled.
pub fn bounded_cancellable<T: Send + 'static>(
    capacity: usize,
    token: &CancelToken,
) -> (Sender<T>, Receiver<T>) {
    make(capacity, Some(token))
}

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Blocking send; fails (returning the message) once every receiver
    /// has been dropped or the channel is cancelled.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = plock(&self.inner.state);
        loop {
            if self.inner.cancelled() || state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.inner.capacity {
                state.queue.push_back(msg);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Messages currently queued (racy; for observability only).
    pub fn len(&self) -> usize {
        plock(&self.inner.state).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        plock(&self.inner.state).senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = plock(&self.inner.state);
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Receivers blocked on an empty queue must observe the
            // disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Blocking receive; fails once the queue is empty and every sender
    /// has been dropped, or the channel is cancelled. Cancellation takes
    /// priority over draining: a cancelled pipeline stops moving data.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = plock(&self.inner.state);
        loop {
            if self.inner.cancelled() {
                return Err(RecvError);
            }
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        plock(&self.inner.state).receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = plock(&self.inner.state);
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Senders blocked on a full queue must observe the
            // disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(9).unwrap();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn full_queue_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the reader drains
            "sent"
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(h.join().unwrap(), "sent");
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1).is_err());
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap(), "send must fail once receivers are gone");
    }

    #[test]
    fn cancel_wakes_blocked_sender() {
        let token = CancelToken::new();
        let (tx, _rx) = bounded_cancellable(1, &token);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1).is_err());
        thread::sleep(Duration::from_millis(20));
        token.cancel();
        assert!(h.join().unwrap(), "send must fail once cancelled");
    }

    #[test]
    fn cancel_wakes_blocked_receiver() {
        let token = CancelToken::new();
        let (_tx, rx) = bounded_cancellable::<u32>(1, &token);
        let h = thread::spawn(move || rx.recv().is_err());
        thread::sleep(Duration::from_millis(20));
        token.cancel();
        assert!(h.join().unwrap(), "recv must fail once cancelled");
    }

    #[test]
    fn cancel_is_sticky_and_beats_queued_data() {
        let token = CancelToken::new();
        let (tx, rx) = bounded_cancellable(4, &token);
        tx.send(1).unwrap();
        token.cancel();
        assert_eq!(rx.recv(), Err(RecvError));
        assert!(tx.send(2).is_err());
        assert!(token.is_cancelled());
    }

    #[test]
    fn uncancelled_token_is_inert() {
        let token = CancelToken::new();
        let (tx, rx) = bounded_cancellable(2, &token);
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<i32> = (0..3)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
