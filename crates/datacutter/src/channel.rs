//! Bounded MPMC channel.
//!
//! The stream layer needs a small slice of crossbeam's channel API —
//! `bounded`, cloneable `Sender`/`Receiver`, blocking `send`/`recv`
//! with disconnect detection — and the build environment is offline,
//! so this provides exactly that on `Mutex` + `Condvar`. The queue
//! bound is what gives streams backpressure (a full queue blocks the
//! producer, exactly DataCutter's fixed-buffer-pool behaviour).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the rejected message back like crossbeam's.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the queue is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a bounded MPMC channel holding at most `capacity` messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be positive");
    let inner = Arc::new(Inner {
        capacity,
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Blocking send; fails (returning the message) once every receiver
    /// has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.inner.capacity {
                state.queue.push_back(msg);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).unwrap();
        }
    }

    /// Messages currently queued (racy; for observability only).
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Receivers blocked on an empty queue must observe the
            // disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Blocking receive; fails once the queue is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.not_empty.wait(state).unwrap();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Senders blocked on a full queue must observe the
            // disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(9).unwrap();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn full_queue_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the reader drains
            "sent"
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(h.join().unwrap(), "sent");
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1).is_err());
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap(), "send must fail once receivers are gone");
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<i32> = (0..3)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
