//! Bounded MPMC channel.
//!
//! The stream layer needs a small slice of crossbeam's channel API —
//! `bounded`, cloneable `Sender`/`Receiver`, blocking `send`/`recv`
//! with disconnect detection — and the build environment is offline,
//! so this provides exactly that on `Mutex` + `Condvar`. The queue
//! bound is what gives streams backpressure (a full queue blocks the
//! producer, exactly DataCutter's fixed-buffer-pool behaviour).
//!
//! Channels can optionally be tied to a [`CancelToken`]
//! ([`bounded_cancellable`]): cancelling the token wakes every blocked
//! `send`/`recv` and makes them fail like a disconnect, which is how the
//! executor's deadline/stall watchdog unwedges a blocked pipeline
//! without killing threads. All internal locking is poison-tolerant: a
//! filter copy that panics must not turn other copies' channel
//! operations into secondary panics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Poison-tolerant lock: a panicked peer thread must not cascade.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Error returned by [`Sender::send`] when every receiver is gone (or
/// the channel's [`CancelToken`] fired); carries the rejected message
/// back like crossbeam's.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the queue is empty and
/// every sender is gone (or the channel's [`CancelToken`] fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Cooperative cancellation for a set of channels (one per pipeline
/// run). [`CancelToken::cancel`] is sticky: every current and future
/// blocking `send`/`recv` on a channel built with
/// [`bounded_cancellable`] fails promptly.
#[derive(Clone, Default)]
pub struct CancelToken {
    shared: Arc<CancelShared>,
}

/// A registered waker: the channel's identity (for deduplication) plus
/// the closure that pokes both its condvars.
struct Waker {
    /// Address of the channel's `Inner` allocation; stable for the
    /// channel's lifetime and unique among live channels.
    channel_id: usize,
    /// `probe(true)` notifies the channel's condvars; `probe(false)` only
    /// reports liveness. Returns false once the channel is gone.
    probe: Box<dyn Fn(bool) -> bool + Send + Sync>,
}

#[derive(Default)]
struct CancelShared {
    flag: AtomicBool,
    /// One waker per registered channel; each notifies both condvars so
    /// blocked threads re-check the flag.
    wakers: Mutex<Vec<Waker>>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_cancelled(&self) -> bool {
        self.shared.flag.load(Ordering::Acquire)
    }

    /// Cancel: wake every blocked operation on registered channels.
    /// Idempotent.
    ///
    /// The waker list is drained *before* any waker runs, so no
    /// notification happens while the registry lock is held (a waker
    /// takes its channel's state lock; holding the registry lock across
    /// that would serialize every channel's wakeup behind one mutex and
    /// deadlock if a late registration raced the drain). Cancellation is
    /// sticky, so drained wakers are never needed again: channels built
    /// after cancel observe the flag directly.
    pub fn cancel(&self) {
        self.shared.flag.store(true, Ordering::Release);
        let wakers = std::mem::take(&mut *plock(&self.shared.wakers));
        for w in wakers {
            (w.probe)(true);
        }
    }

    /// Register a channel's waker; prunes dead entries and dedupes
    /// repeated registrations for the same channel so a long-lived token
    /// shared across many short-lived channels cannot grow its registry
    /// (or wake the same channel twice per cancel).
    fn register(&self, channel_id: usize, probe: Box<dyn Fn(bool) -> bool + Send + Sync>) {
        if self.is_cancelled() {
            // Sticky-cancelled: the new channel's operations observe the
            // flag themselves; registering would only leak the waker.
            return;
        }
        let mut wakers = plock(&self.shared.wakers);
        wakers.retain(|w| (w.probe)(false));
        if wakers.iter().any(|w| w.channel_id == channel_id) {
            return;
        }
        wakers.push(Waker { channel_id, probe });
    }

    /// [`register`](Self::register) for sibling queue implementations
    /// (the SPSC ring): same dedup/prune/sticky-cancel behaviour, same
    /// waker contract (`probe(true)` notifies, `probe(false)` reports
    /// liveness).
    pub(crate) fn register_waker(
        &self,
        channel_id: usize,
        probe: Box<dyn Fn(bool) -> bool + Send + Sync>,
    ) {
        self.register(channel_id, probe);
    }

    /// Registered live wakers (racy; for tests).
    pub fn registered(&self) -> usize {
        plock(&self.shared.wakers).len()
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cancel: Option<Arc<CancelShared>>,
}

impl<T> Inner<T> {
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.flag.load(Ordering::Acquire))
    }
}

fn make<T>(capacity: usize, cancel: Option<&CancelToken>) -> (Sender<T>, Receiver<T>)
where
    T: Send + 'static,
{
    assert!(capacity > 0, "channel capacity must be positive");
    let inner = Arc::new(Inner {
        capacity,
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cancel: cancel.map(|t| Arc::clone(&t.shared)),
    });
    if let Some(token) = cancel {
        let channel_id = Arc::as_ptr(&inner) as usize;
        let weak = Arc::downgrade(&inner);
        token.register(
            channel_id,
            Box::new(move |notify| {
                let Some(inner) = weak.upgrade() else {
                    return false;
                };
                if notify {
                    // Touch the lock so wakes cannot race a thread that
                    // has checked the flag but not yet parked on the
                    // condvar.
                    drop(plock(&inner.state));
                    inner.not_empty.notify_all();
                    inner.not_full.notify_all();
                }
                true
            }),
        );
    }
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// Create a bounded MPMC channel holding at most `capacity` messages.
pub fn bounded<T: Send + 'static>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    make(capacity, None)
}

/// Create a bounded MPMC channel whose blocking operations also abort
/// (as if disconnected) once `token` is cancelled.
pub fn bounded_cancellable<T: Send + 'static>(
    capacity: usize,
    token: &CancelToken,
) -> (Sender<T>, Receiver<T>) {
    make(capacity, Some(token))
}

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Blocking send; fails (returning the message) once every receiver
    /// has been dropped or the channel is cancelled.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = plock(&self.inner.state);
        loop {
            if self.inner.cancelled() || state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.inner.capacity {
                state.queue.push_back(msg);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocking batched send: moves every message in `batch` into the
    /// queue, pushing as many as the capacity allows per lock
    /// acquisition and issuing one condvar notification per acquisition
    /// instead of one per message. Blocks for room between rounds. On
    /// disconnect or cancellation returns the messages not yet sent
    /// (prefix already delivered stays delivered — the queue bound is
    /// never exceeded and order is preserved).
    pub fn send_batch(&self, batch: &mut VecDeque<T>) -> Result<(), SendError<VecDeque<T>>> {
        while !batch.is_empty() {
            let pushed;
            {
                let mut state = plock(&self.inner.state);
                loop {
                    if self.inner.cancelled() || state.receivers == 0 {
                        return Err(SendError(std::mem::take(batch)));
                    }
                    let room = self.inner.capacity - state.queue.len();
                    if room > 0 {
                        let n = room.min(batch.len());
                        state.queue.extend(batch.drain(..n));
                        pushed = n;
                        break;
                    }
                    state = self
                        .inner
                        .not_full
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
            // One wakeup amortized over the whole round: a single message
            // needs a single consumer, a burst may feed several.
            if pushed == 1 {
                self.inner.not_empty.notify_one();
            } else {
                self.inner.not_empty.notify_all();
            }
        }
        Ok(())
    }

    /// Messages currently queued (racy; for observability only).
    pub fn len(&self) -> usize {
        plock(&self.inner.state).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        plock(&self.inner.state).senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = plock(&self.inner.state);
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Receivers blocked on an empty queue must observe the
            // disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Blocking receive; fails once the queue is empty and every sender
    /// has been dropped, or the channel is cancelled. Cancellation takes
    /// priority over draining: a cancelled pipeline stops moving data.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = plock(&self.inner.state);
        loop {
            if self.inner.cancelled() {
                return Err(RecvError);
            }
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Messages currently queued (racy; for observability only).
    pub fn len(&self) -> usize {
        plock(&self.inner.state).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking batched receive: drains up to `max` queued messages
    /// into `out` under one lock acquisition, waking blocked producers
    /// with one notification for the whole drain. Returns the number of
    /// messages taken — `Ok(0)` means "empty but connected" (the caller
    /// should fall back to blocking [`recv`](Self::recv)). Fails like
    /// `recv`: cancellation takes priority over queued data.
    pub fn try_recv_batch<E: Extend<T>>(
        &self,
        max: usize,
        out: &mut E,
    ) -> Result<usize, RecvError> {
        let taken;
        {
            let mut state = plock(&self.inner.state);
            if self.inner.cancelled() {
                return Err(RecvError);
            }
            taken = max.min(state.queue.len());
            if taken == 0 {
                return if state.senders == 0 {
                    Err(RecvError)
                } else {
                    Ok(0)
                };
            }
            out.extend(state.queue.drain(..taken));
        }
        if taken == 1 {
            self.inner.not_full.notify_one();
        } else {
            self.inner.not_full.notify_all();
        }
        Ok(taken)
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        plock(&self.inner.state).receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = plock(&self.inner.state);
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Senders blocked on a full queue must observe the
            // disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(9).unwrap();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn full_queue_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the reader drains
            "sent"
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(h.join().unwrap(), "sent");
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1).is_err());
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap(), "send must fail once receivers are gone");
    }

    #[test]
    fn cancel_wakes_blocked_sender() {
        let token = CancelToken::new();
        let (tx, _rx) = bounded_cancellable(1, &token);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1).is_err());
        thread::sleep(Duration::from_millis(20));
        token.cancel();
        assert!(h.join().unwrap(), "send must fail once cancelled");
    }

    #[test]
    fn cancel_wakes_blocked_receiver() {
        let token = CancelToken::new();
        let (_tx, rx) = bounded_cancellable::<u32>(1, &token);
        let h = thread::spawn(move || rx.recv().is_err());
        thread::sleep(Duration::from_millis(20));
        token.cancel();
        assert!(h.join().unwrap(), "recv must fail once cancelled");
    }

    #[test]
    fn cancel_is_sticky_and_beats_queued_data() {
        let token = CancelToken::new();
        let (tx, rx) = bounded_cancellable(4, &token);
        tx.send(1).unwrap();
        token.cancel();
        assert_eq!(rx.recv(), Err(RecvError));
        assert!(tx.send(2).is_err());
        assert!(token.is_cancelled());
    }

    #[test]
    fn uncancelled_token_is_inert() {
        let token = CancelToken::new();
        let (tx, rx) = bounded_cancellable(2, &token);
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn send_batch_preserves_order_and_bound() {
        let (tx, rx) = bounded(4);
        let mut batch: VecDeque<i32> = (0..20).collect();
        let h = thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match rx.try_recv_batch(8, &mut got) {
                    Ok(0) => match rx.recv() {
                        Ok(v) => got.push(v),
                        Err(RecvError) => break,
                    },
                    Ok(_) => {}
                    Err(RecvError) => break,
                }
                // The queue bound must never be exceeded mid-batch.
                assert!(rx.inner.state.lock().unwrap().queue.len() <= 4);
            }
            got
        });
        tx.send_batch(&mut batch).unwrap();
        assert!(batch.is_empty());
        drop(tx);
        assert_eq!(h.join().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_batch_drains_up_to_max() {
        let (tx, rx) = bounded(8);
        for i in 0..6 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(4, &mut out), Ok(4));
        assert_eq!(rx.try_recv_batch(4, &mut out), Ok(2));
        assert_eq!(rx.try_recv_batch(4, &mut out), Ok(0), "empty but connected");
        drop(tx);
        assert_eq!(rx.try_recv_batch(4, &mut out), Err(RecvError));
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn send_batch_returns_remainder_on_disconnect() {
        let (tx, rx) = bounded(2);
        let mut batch: VecDeque<i32> = (0..10).collect();
        let h = thread::spawn(move || {
            // Take a couple then hang up mid-batch.
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            drop(rx);
            (a, b)
        });
        let err = tx.send_batch(&mut batch).expect_err("receiver hung up");
        assert_eq!(h.join().unwrap(), (0, 1));
        // Delivered prefix + returned remainder cover the batch exactly.
        let remainder = err.0;
        assert!(remainder.len() >= 6, "at most 2 consumed + 2 in flight");
        let first = *remainder.front().unwrap();
        assert_eq!(
            remainder.iter().copied().collect::<Vec<_>>(),
            (first..10).collect::<Vec<_>>(),
            "remainder is a contiguous suffix"
        );
    }

    #[test]
    fn cancel_mid_batch_returns_remainder() {
        let token = CancelToken::new();
        let (tx, _rx) = bounded_cancellable(2, &token);
        let h = thread::spawn(move || {
            let mut batch: VecDeque<i32> = (0..10).collect();
            tx.send_batch(&mut batch).expect_err("cancelled")
        });
        thread::sleep(Duration::from_millis(20));
        token.cancel();
        let SendError(remainder) = h.join().unwrap();
        assert!(!remainder.is_empty());
        assert_eq!(*remainder.back().unwrap(), 9);
    }

    #[test]
    fn cancel_beats_queued_data_in_batch_recv() {
        let token = CancelToken::new();
        let (tx, rx) = bounded_cancellable(4, &token);
        tx.send(1).unwrap();
        token.cancel();
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(4, &mut out), Err(RecvError));
        assert!(out.is_empty());
    }

    #[test]
    fn waker_registry_dedupes_and_prunes() {
        let token = CancelToken::new();
        let pair = bounded_cancellable::<u32>(1, &token);
        assert_eq!(token.registered(), 1);
        let pair2 = bounded_cancellable::<u32>(1, &token);
        assert_eq!(token.registered(), 2, "distinct channels both register");
        drop(pair);
        // Dead entries are pruned on the next registration.
        let pair3 = bounded_cancellable::<u32>(1, &token);
        assert_eq!(token.registered(), 2);
        drop(pair2);
        drop(pair3);
        token.cancel();
        assert_eq!(token.registered(), 0, "cancel drains the registry");
        let _pair4 = bounded_cancellable::<u32>(1, &token);
        assert_eq!(token.registered(), 0, "post-cancel channels skip registry");
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<i32> = (0..3)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
