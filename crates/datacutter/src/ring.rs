//! Lock-free single-producer/single-consumer ring buffer.
//!
//! The mutex+condvar channel ([`crate::channel`]) is the general data
//! plane: MPMC, cancellable, batched. But the overwhelmingly common link
//! shape in a decomposed pipeline is one producer copy feeding one
//! consumer copy — every width-1→width-1 stage boundary and every
//! per-copy egress stream — and there the mutex is pure overhead. This
//! ring keeps the channel's exact semantics (bounded backpressure,
//! blocking send/recv, batched variants, disconnect detection,
//! cancel-beats-queued-data) on two cache-line-padded atomic cursors:
//!
//! * The producer owns `tail`, the consumer owns `head`; both only ever
//!   *read* the other's cursor. A slot is published by the `tail` store
//!   with `Release` ordering and observed by the consumer's `Acquire`
//!   load, so the payload write happens-before the pop that reads it
//!   (and symmetrically for the `head` store freeing a slot).
//! * Each endpoint keeps a local cache of the peer's cursor and reloads
//!   it only when the ring looks full (producer) or empty (consumer).
//!   A steady-state push or pop therefore touches one shared cache line
//!   (the slot) plus its own cursor, not the peer's — the reload's
//!   `Acquire` still pairs with the peer's `Release` store, so the
//!   publish ordering is unchanged, and a stale cache only ever
//!   under-reports available room/data (backpressure and FIFO are
//!   judged against the real cursors on reload).
//! * Cursors are monotonically increasing and wrap through a
//!   power-of-two slot array (`index & mask`), so occupancy is a single
//!   wrapping subtraction and the full/empty states are unambiguous
//!   without a separate flag. The *logical* bound is the requested
//!   capacity, which may be below the allocated power of two — the
//!   backpressure bound callers observe is exactly what they asked for.
//! * Waits are adaptive spin-then-park: a bounded spin (`spin_loop`,
//!   then `yield_now`) covers the common case where the peer is actively
//!   moving packets, after which the thread parks on a condvar that the
//!   fast path never touches — the peer only takes the park mutex when
//!   the `*_parked` flag says someone is actually sleeping. Parks use a
//!   bounded timeout, so a lost wakeup (or a cancel racing a park)
//!   degrades to a 1 ms hiccup rather than a hang.
//!
//! Cancellation reuses the channel's [`CancelToken`]: the ring registers
//! a waker that pokes both condvars, and every blocking operation checks
//! the token ahead of queued data, matching the channel's
//! cancel-beats-queued-data rule.

use crate::channel::{CancelToken, RecvError, SendError};
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Poison-tolerant lock (the park mutex guards no data).
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Busy-spins before yielding the core.
const SPINS: u32 = 128;
/// `yield_now` rounds after spinning, before parking on the condvar.
const YIELDS: u32 = 16;
/// Park timeout: bounds the cost of any wakeup race to one tick.
const PARK: Duration = Duration::from_millis(1);

/// Pad to a cache line so the producer's `tail` and the consumer's
/// `head` never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct RingShared<T> {
    /// Logical capacity: the backpressure bound callers asked for.
    bound: usize,
    /// Slot-index mask (`slots.len() - 1`, power of two).
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor: next slot to pop. Monotonic, wraps through
    /// `mask`.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: next slot to fill.
    tail: CachePadded<AtomicUsize>,
    tx_alive: AtomicBool,
    rx_alive: AtomicBool,
    cancel: Option<CancelToken>,
    /// Slow-path parking. The fast path never touches these; a peer
    /// takes the mutex only when the corresponding `*_parked` flag is
    /// set.
    park: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
    rx_parked: AtomicBool,
    tx_parked: AtomicBool,
}

// The slot array is shared raw storage; the SPSC cursor protocol is what
// makes access exclusive (producer writes only unpublished slots,
// consumer reads only published ones).
unsafe impl<T: Send> Send for RingShared<T> {}
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> RingShared<T> {
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Wake a parked consumer, if any. Touches the park lock so the wake
    /// cannot slip between the consumer's flag-set and its condvar wait.
    fn wake_rx(&self) {
        if self.rx_parked.load(Ordering::SeqCst) {
            drop(plock(&self.park));
            self.not_empty.notify_all();
        }
    }

    /// Wake a parked producer, if any.
    fn wake_tx(&self) {
        if self.tx_parked.load(Ordering::SeqCst) {
            drop(plock(&self.park));
            self.not_full.notify_all();
        }
    }
}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Only reachable once both endpoints are gone; drop whatever is
        // still queued.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut i = head;
        while i != tail {
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Create a bounded SPSC ring holding at most `capacity` messages.
/// Neither endpoint is cloneable — the single-producer/single-consumer
/// contract is enforced by the type system. With a `cancel` token,
/// blocking operations abort like a disconnect once the token fires,
/// and cancellation beats queued data exactly as on the channel.
pub fn spsc<T: Send + 'static>(
    capacity: usize,
    cancel: Option<&CancelToken>,
) -> (RingSender<T>, RingReceiver<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let len = capacity.next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..len)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(RingShared {
        bound: capacity,
        mask: len - 1,
        slots,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        tx_alive: AtomicBool::new(true),
        rx_alive: AtomicBool::new(true),
        cancel: cancel.cloned(),
        park: Mutex::new(()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        rx_parked: AtomicBool::new(false),
        tx_parked: AtomicBool::new(false),
    });
    if let Some(token) = cancel {
        let weak = Arc::downgrade(&shared);
        token.register_waker(
            Arc::as_ptr(&shared) as usize,
            Box::new(move |notify| {
                let Some(s) = weak.upgrade() else {
                    return false;
                };
                if notify {
                    drop(plock(&s.park));
                    s.not_empty.notify_all();
                    s.not_full.notify_all();
                }
                true
            }),
        );
    }
    (
        RingSender {
            shared: Arc::clone(&shared),
            head_cache: Cell::new(0),
        },
        RingReceiver {
            shared,
            tail_cache: Cell::new(0),
        },
    )
}

/// Producing half of an SPSC ring. Not cloneable.
pub struct RingSender<T> {
    shared: Arc<RingShared<T>>,
    /// Producer-local cache of the consumer's `head` cursor, reloaded
    /// only when the ring looks full. A steady-state push then touches
    /// no shared line except the slot and `tail`, instead of bouncing
    /// the consumer's cache line on every message.
    head_cache: Cell<usize>,
}

impl<T: Send> RingSender<T> {
    /// Producer-side push; `Err` returns the value when the ring is at
    /// its logical bound. Does not wake the consumer — callers batch
    /// that ([`RingShared::wake_rx`]).
    fn try_push(&self, v: T) -> Result<(), T> {
        let s = &*self.shared;
        let tail = s.tail.0.load(Ordering::Relaxed); // sole writer
        if tail.wrapping_sub(self.head_cache.get()) >= s.bound {
            // Looks full against the stale cursor — reload. The
            // `Acquire` pairs with the consumer's `Release` store of
            // `head`, so slots at or past `head - bound` are free to
            // overwrite.
            self.head_cache.set(s.head.0.load(Ordering::Acquire));
            if tail.wrapping_sub(self.head_cache.get()) >= s.bound {
                return Err(v);
            }
        }
        unsafe { (*s.slots[tail & s.mask].get()).write(v) };
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }
    /// Blocking send; fails (returning the message) once the receiver is
    /// dropped or the ring's token is cancelled.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let s = &*self.shared;
        let mut msg = msg;
        let mut tries = 0u32;
        loop {
            if s.cancelled() || !s.rx_alive.load(Ordering::Acquire) {
                return Err(SendError(msg));
            }
            match self.try_push(msg) {
                Ok(()) => {
                    s.wake_rx();
                    return Ok(());
                }
                Err(m) => msg = m,
            }
            if tries < SPINS {
                std::hint::spin_loop();
            } else if tries < SPINS + YIELDS {
                std::thread::yield_now();
            } else {
                return self.send_parked(msg);
            }
            tries += 1;
        }
    }

    /// Park-phase tail of [`send`](Self::send): wait for room on the
    /// condvar with a bounded timeout.
    fn send_parked(&self, msg: T) -> Result<(), SendError<T>> {
        let s = &*self.shared;
        let mut msg = msg;
        let mut guard = plock(&s.park);
        s.tx_parked.store(true, Ordering::SeqCst);
        let result = loop {
            if s.cancelled() || !s.rx_alive.load(Ordering::Acquire) {
                break Err(SendError(msg));
            }
            match self.try_push(msg) {
                Ok(()) => break Ok(()),
                Err(m) => msg = m,
            }
            guard = s
                .not_full
                .wait_timeout(guard, PARK)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        };
        s.tx_parked.store(false, Ordering::SeqCst);
        drop(guard);
        if result.is_ok() {
            s.wake_rx();
        }
        result
    }

    /// Blocking batched send: moves every message in `batch` into the
    /// ring, waking the consumer once per round instead of once per
    /// message. On disconnect or cancellation returns the messages not
    /// yet sent (the delivered prefix stays delivered), matching
    /// [`crate::channel::Sender::send_batch`].
    pub fn send_batch(&self, batch: &mut VecDeque<T>) -> Result<(), SendError<VecDeque<T>>> {
        let s = &*self.shared;
        while !batch.is_empty() {
            if s.cancelled() || !s.rx_alive.load(Ordering::Acquire) {
                return Err(SendError(std::mem::take(batch)));
            }
            let mut pushed = 0usize;
            while let Some(v) = batch.pop_front() {
                match self.try_push(v) {
                    Ok(()) => pushed += 1,
                    Err(v) => {
                        batch.push_front(v);
                        break;
                    }
                }
            }
            if pushed > 0 {
                s.wake_rx();
                continue;
            }
            // No room: fall into the blocking path for one message, then
            // resume bulk pushing.
            let head = batch.pop_front().expect("batch is non-empty");
            if let Err(SendError(v)) = self.send(head) {
                batch.push_front(v);
                return Err(SendError(std::mem::take(batch)));
            }
        }
        Ok(())
    }

    /// Messages currently queued (racy; for observability only).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        self.shared.tx_alive.store(false, Ordering::Release);
        // A parked consumer must observe the disconnect promptly.
        drop(plock(&self.shared.park));
        self.shared.not_empty.notify_all();
    }
}

/// Consuming half of an SPSC ring. Not cloneable.
pub struct RingReceiver<T> {
    shared: Arc<RingShared<T>>,
    /// Consumer-local cache of the producer's `tail` cursor, reloaded
    /// only when the ring looks empty (mirror of
    /// [`RingSender::head_cache`]).
    tail_cache: Cell<usize>,
}

impl<T: Send> RingReceiver<T> {
    /// Consumer-side pop. Does not wake the producer — callers batch
    /// that ([`RingShared::wake_tx`]).
    fn try_pop(&self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed); // sole writer
        if head == self.tail_cache.get() {
            // Looks empty against the stale cursor — reload. The
            // `Acquire` pairs with the producer's `Release` store of
            // `tail`, so every slot below it is published.
            self.tail_cache.set(s.tail.0.load(Ordering::Acquire));
            if head == self.tail_cache.get() {
                return None;
            }
        }
        let v = unsafe { (*s.slots[head & s.mask].get()).assume_init_read() };
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }
    /// Blocking receive; fails once the ring is empty and the sender is
    /// gone, or the token is cancelled (cancellation beats queued data).
    pub fn recv(&self) -> Result<T, RecvError> {
        let s = &*self.shared;
        let mut tries = 0u32;
        loop {
            if s.cancelled() {
                return Err(RecvError);
            }
            if let Some(v) = self.try_pop() {
                s.wake_tx();
                return Ok(v);
            }
            if !s.tx_alive.load(Ordering::Acquire) {
                // The producer may have pushed between our pop and its
                // drop; one more look settles it.
                return match self.try_pop() {
                    Some(v) => {
                        s.wake_tx();
                        Ok(v)
                    }
                    None => Err(RecvError),
                };
            }
            if tries < SPINS {
                std::hint::spin_loop();
            } else if tries < SPINS + YIELDS {
                std::thread::yield_now();
            } else {
                return self.recv_parked();
            }
            tries += 1;
        }
    }

    /// Park-phase tail of [`recv`](Self::recv).
    fn recv_parked(&self) -> Result<T, RecvError> {
        let s = &*self.shared;
        let mut guard = plock(&s.park);
        s.rx_parked.store(true, Ordering::SeqCst);
        let result = loop {
            if s.cancelled() {
                break Err(RecvError);
            }
            if let Some(v) = self.try_pop() {
                break Ok(v);
            }
            if !s.tx_alive.load(Ordering::Acquire) {
                break self.try_pop().ok_or(RecvError);
            }
            guard = s
                .not_empty
                .wait_timeout(guard, PARK)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        };
        s.rx_parked.store(false, Ordering::SeqCst);
        drop(guard);
        if result.is_ok() {
            s.wake_tx();
        }
        result
    }

    /// Non-blocking batched receive: drains up to `max` queued messages
    /// into `out`, waking a blocked producer once for the whole drain.
    /// `Ok(0)` means "empty but connected"; fails like
    /// [`recv`](Self::recv), with cancellation beating queued data.
    pub fn try_recv_batch<E: Extend<T>>(
        &self,
        max: usize,
        out: &mut E,
    ) -> Result<usize, RecvError> {
        let s = &*self.shared;
        if s.cancelled() {
            return Err(RecvError);
        }
        let mut taken = 0usize;
        while taken < max {
            match self.try_pop() {
                Some(v) => {
                    out.extend(std::iter::once(v));
                    taken += 1;
                }
                None => break,
            }
        }
        if taken > 0 {
            s.wake_tx();
            return Ok(taken);
        }
        if !s.tx_alive.load(Ordering::Acquire) {
            return match self.try_pop() {
                Some(v) => {
                    out.extend(std::iter::once(v));
                    s.wake_tx();
                    Ok(1)
                }
                None => Err(RecvError),
            };
        }
        Ok(0)
    }

    /// Messages currently queued (racy; for observability only).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        self.shared.rx_alive.store(false, Ordering::Release);
        // A parked producer must observe the disconnect promptly.
        drop(plock(&self.shared.park));
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = spsc(4, None);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn capacity_below_power_of_two_is_the_real_bound() {
        // bound 3 inside a 4-slot array: the 4th push must block/fail.
        let (tx, rx) = spsc(3, None);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 3);
        let h = thread::spawn(move || tx.send(99).map(|()| "sent"));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(h.join().unwrap().map_err(|_| ()), Ok("sent"));
        assert_eq!(rx.len(), 3);
    }

    #[test]
    fn recv_errors_after_sender_drop() {
        let (tx, rx) = spsc::<u32>(2, None);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drop() {
        let (tx, rx) = spsc::<u32>(2, None);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = spsc(1, None);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1).is_err());
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(
            h.join().unwrap(),
            "send must fail once the receiver is gone"
        );
    }

    #[test]
    fn cancel_wakes_blocked_sender_and_receiver() {
        let token = CancelToken::new();
        let (tx, rx) = spsc(1, Some(&token));
        tx.send(0).unwrap();
        let hs = thread::spawn(move || tx.send(1).is_err());
        let hr = thread::spawn(move || {
            // Queued data is present, but cancel must still win.
            thread::sleep(Duration::from_millis(30));
            rx.recv().is_err()
        });
        thread::sleep(Duration::from_millis(10));
        token.cancel();
        assert!(hs.join().unwrap(), "send must fail once cancelled");
        assert!(hr.join().unwrap(), "recv must fail once cancelled");
    }

    #[test]
    fn cancel_beats_queued_data() {
        let token = CancelToken::new();
        let (tx, rx) = spsc(4, Some(&token));
        tx.send(1).unwrap();
        token.cancel();
        assert_eq!(rx.recv(), Err(RecvError));
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(4, &mut out), Err(RecvError));
        assert!(out.is_empty());
        assert!(tx.send(2).is_err());
    }

    #[test]
    fn try_recv_batch_drains_up_to_max() {
        let (tx, rx) = spsc(8, None);
        for i in 0..6 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(4, &mut out), Ok(4));
        assert_eq!(rx.try_recv_batch(4, &mut out), Ok(2));
        assert_eq!(rx.try_recv_batch(4, &mut out), Ok(0), "empty but connected");
        drop(tx);
        assert_eq!(rx.try_recv_batch(4, &mut out), Err(RecvError));
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn send_batch_returns_remainder_on_disconnect() {
        let (tx, rx) = spsc(2, None);
        let mut batch: VecDeque<i32> = (0..10).collect();
        let h = thread::spawn(move || {
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            drop(rx);
            (a, b)
        });
        let err = tx.send_batch(&mut batch).expect_err("receiver hung up");
        assert_eq!(h.join().unwrap(), (0, 1));
        let remainder = err.0;
        assert!(remainder.len() >= 6, "at most 2 consumed + 2 in flight");
        let first = *remainder.front().unwrap();
        assert_eq!(
            remainder.iter().copied().collect::<Vec<_>>(),
            (first..10).collect::<Vec<_>>(),
            "remainder is a contiguous suffix"
        );
    }

    #[test]
    fn wraparound_preserves_order_across_many_laps() {
        let (tx, rx) = spsc(4, None);
        let h = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        for i in 0..10_000u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(h.join().unwrap(), (0..10_000).collect::<Vec<u64>>());
    }

    #[test]
    fn queued_items_are_dropped_with_the_ring() {
        use std::sync::atomic::AtomicU64;
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = spsc(8, None);
        for _ in 0..5 {
            assert!(tx.send(Counted).is_ok());
        }
        drop(rx.recv().unwrap()); // one consumed
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 5, "4 queued + 1 consumed");
    }
}
