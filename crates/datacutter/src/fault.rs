//! Fault tolerance: deterministic fault injection, retry policy, and the
//! shared run-control state behind the executor's deadline/stall watchdog.
//!
//! A [`FaultPlan`] injects failures at precise points — *stage* × *copy* ×
//! *packet index* — so failure-path behaviour is reproducible in tests and
//! chaos runs. Plans are built programmatically or parsed from a compact
//! spec (the `CGP_FAULTS` env var / `--faults` flag on the fig binaries):
//!
//! ```text
//! spec    := entry (';' entry)*
//! entry   := 'seed=' u64            -- seed for probabilistic triggers
//!          | site '@' packet ':' action
//! site    := stage ('[' copy ']')?  -- omitted copy = every copy
//! stage   := name | '*'             -- stage name ('*' = every stage)
//! copy    := usize | '*'            -- transparent-copy index
//! packet  := u64 | '*' | '%' f64    -- exact index, every packet, or
//!                                      per-packet probability (seeded,
//!                                      deterministic)
//! action  := 'fail' | 'fail-retryable' | 'panic' | 'drop' | 'delay:' ms
//! ```
//!
//! Example: `square[0]@5:panic;sink[*]@%0.01:fail-retryable;src[1]@*:delay:2`.
//!
//! Probabilistic triggers are *seedable*: the decision for a given
//! (seed, stage, copy, packet) tuple is a pure function, so a chaos run
//! replays identically under the same seed.

use crate::error::{FilterError, FilterResult};
use cgp_obs::rng::SmallRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::channel::CancelToken;

/// What to inject when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The filter copy reports a structured error for this unit of work.
    Fail {
        /// Whether the injected error is retryable under the pipeline's
        /// [`RetryPolicy`].
        retryable: bool,
    },
    /// The filter copy panics (exercises the executor's panic isolation).
    Panic,
    /// The packet is silently discarded.
    DropPacket,
    /// Packet handling is delayed (cancellable; exercises the stall
    /// detector and backpressure paths).
    Delay(Duration),
    /// The whole process dies instantly (`SIGKILL` to itself): no panic
    /// unwinding, no `Drop`, no flushing — the failure unit is the OS
    /// process, exercising the launcher's supervision layer. Driven by
    /// the `CGP_KILL` env var in chaos runs (the supervisor strips that
    /// var on respawn so the kill fires exactly once).
    Kill,
}

/// When a rule fires, relative to the packets one filter copy handles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Exactly the packet with this 0-based index.
    Packet(u64),
    /// Every packet.
    Every,
    /// Each packet independently with this probability, decided
    /// deterministically from the plan seed.
    Prob(f64),
}

/// One injection rule. `None` selectors are wildcards.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Stage name; `None` matches every stage.
    pub stage: Option<String>,
    /// Transparent-copy index; `None` matches every copy.
    pub copy: Option<usize>,
    pub trigger: Trigger,
    pub action: FaultAction,
}

/// A deterministic fault-injection plan for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Seed for probabilistic triggers (ignored by exact-index rules).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Inject a non-retryable failure at `stage[copy]` packet `packet`.
    pub fn fail_at(self, stage: &str, copy: usize, packet: u64) -> Self {
        self.rule(FaultRule {
            stage: Some(stage.into()),
            copy: Some(copy),
            trigger: Trigger::Packet(packet),
            action: FaultAction::Fail { retryable: false },
        })
    }

    /// Inject a panic at `stage[copy]` packet `packet`.
    pub fn panic_at(self, stage: &str, copy: usize, packet: u64) -> Self {
        self.rule(FaultRule {
            stage: Some(stage.into()),
            copy: Some(copy),
            trigger: Trigger::Packet(packet),
            action: FaultAction::Panic,
        })
    }

    /// Drop the packet with index `packet` at `stage[copy]`.
    pub fn drop_at(self, stage: &str, copy: usize, packet: u64) -> Self {
        self.rule(FaultRule {
            stage: Some(stage.into()),
            copy: Some(copy),
            trigger: Trigger::Packet(packet),
            action: FaultAction::DropPacket,
        })
    }

    /// Delay handling of packet `packet` at `stage[copy]`.
    pub fn delay_at(self, stage: &str, copy: usize, packet: u64, delay: Duration) -> Self {
        self.rule(FaultRule {
            stage: Some(stage.into()),
            copy: Some(copy),
            trigger: Trigger::Packet(packet),
            action: FaultAction::Delay(delay),
        })
    }

    /// SIGKILL the whole process at `stage[copy]` packet `packet`.
    pub fn kill_at(self, stage: &str, copy: usize, packet: u64) -> Self {
        self.rule(FaultRule {
            stage: Some(stage.into()),
            copy: Some(copy),
            trigger: Trigger::Packet(packet),
            action: FaultAction::Kill,
        })
    }

    /// Append every rule of `other` (its seed is ignored; the receiver's
    /// seed governs probabilistic triggers).
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.rules.extend(other.rules);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parse the compact spec grammar (see module docs). Returns a
    /// human-readable description of the first problem on failure.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed `{seed}`"))?;
                continue;
            }
            plan.rules.push(parse_rule(entry)?);
        }
        Ok(plan)
    }

    /// Build the per-copy injector, or `None` when no rule can apply to
    /// `stage[copy]` (the common case: zero overhead on the data path).
    pub fn injector(&self, stage: &str, copy: usize) -> Option<FaultInjector> {
        let rules: Vec<(Trigger, FaultAction)> = self
            .rules
            .iter()
            .filter(|r| r.stage.as_deref().is_none_or(|s| s == stage))
            .filter(|r| r.copy.is_none_or(|c| c == copy))
            .map(|r| (r.trigger, r.action))
            .collect();
        if rules.is_empty() {
            return None;
        }
        Some(FaultInjector {
            rules,
            seed: self.seed,
            site: fnv(stage.as_bytes()) ^ (copy as u64).wrapping_mul(0x9e3779b97f4a7c15),
            label: format!("{stage}[{copy}]"),
            packet: 0,
            pending: None,
        })
    }
}

fn parse_rule(entry: &str) -> Result<FaultRule, String> {
    // Alias form `action@stage[copy]#packet` (e.g. `panic@reduce[0]#500`),
    // reading as "inject <action> at <site>, packet <n>"; the `#` is
    // unambiguous — the canonical form never contains one.
    if let Some((action, site_packet)) = entry.split_once('@') {
        if let Some((site, packet)) = site_packet.rsplit_once('#') {
            return parse_rule_parts(site, packet, action, entry);
        }
    }
    let err = || format!("bad fault rule `{entry}` (want stage[copy]@packet:action)");
    let (site, rest) = entry.split_once('@').ok_or_else(err)?;
    let (packet, action) = rest.split_once(':').ok_or_else(err)?;
    parse_rule_parts(site, packet, action, entry)
}

fn parse_rule_parts(
    site: &str,
    packet: &str,
    action: &str,
    entry: &str,
) -> Result<FaultRule, String> {
    // Every error names the component that failed — with two accepted
    // spellings (`stage[copy]@packet:action` and the action-first alias
    // `action@stage[copy]#packet`), "bad rule" alone leaves the user
    // guessing which piece the parser choked on.
    let site = site.trim();
    let (stage, copy) = match site.strip_suffix(']').and_then(|s| s.split_once('[')) {
        Some((stage, copy)) => (stage, Some(copy)),
        // Omitting the `[copy]` segment selects every transparent copy
        // of the stage — `kill@f3#4` arms all of f3, matching the
        // documented `action@stage#packet` alias semantics. A stray
        // bracket is still a malformed site, not a stage name.
        None if !site.contains('[') && !site.contains(']') => (site, None),
        None => {
            return Err(format!(
                "bad site `{site}` in `{entry}`: want stage or stage[copy]"
            ))
        }
    };
    let stage = match stage.trim() {
        "*" => None,
        name if !name.is_empty() => Some(name.to_string()),
        _ => {
            return Err(format!(
                "empty stage name in `{entry}` (use `*` for any stage)"
            ))
        }
    };
    let copy = match copy.map(str::trim) {
        None | Some("*") => None,
        Some(c) => Some(
            c.parse::<usize>()
                .map_err(|_| format!("bad copy index `{c}` in `{entry}`: want a number or `*`"))?,
        ),
    };
    let trigger = match packet.trim() {
        "*" => Trigger::Every,
        p if p.starts_with('%') => {
            let prob = p[1..]
                .parse::<f64>()
                .map_err(|_| format!("bad probability `{p}` in `{entry}`: want %<fraction>"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!(
                    "probability {prob} out of range [0,1] in `{entry}`"
                ));
            }
            Trigger::Prob(prob)
        }
        p => Trigger::Packet(p.parse::<u64>().map_err(|_| {
            format!("bad packet selector `{p}` in `{entry}`: want an index, `*`, or %<fraction>")
        })?),
    };
    let action = match action.trim() {
        "fail" => FaultAction::Fail { retryable: false },
        "fail-retryable" => FaultAction::Fail { retryable: true },
        "panic" => FaultAction::Panic,
        "drop" => FaultAction::DropPacket,
        "kill" => FaultAction::Kill,
        a => match a.strip_prefix("delay:") {
            Some(ms) => FaultAction::Delay(Duration::from_millis(
                ms.parse::<u64>()
                    .map_err(|_| format!("bad delay milliseconds `{ms}` in `{entry}`"))?,
            )),
            None => {
                return Err(format!(
                    "unknown fault action `{a}` in `{entry}`: want \
                     fail|fail-retryable|panic|drop|kill|delay:<ms>"
                ))
            }
        },
    };
    Ok(FaultRule {
        stage,
        copy,
        trigger,
        action,
    })
}

/// Die as an external SIGKILL would: immediately and without unwinding,
/// `Drop`, or atexit handlers. Used by [`FaultAction::Kill`] so process
/// chaos tests exercise the exact failure mode a crashed or OOM-killed
/// worker presents to its peers (sockets reset mid-frame, shm rings left
/// with the producer-closed flag unset, checkpoint tmp files orphaned).
pub(crate) fn die_hard() -> ! {
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
            fn getpid() -> i32;
        }
        // SAFETY: plain syscalls; SIGKILL (9) cannot be caught or blocked,
        // so this call does not return.
        unsafe {
            kill(getpid(), 9);
        }
    }
    // Non-unix (or the impossible post-SIGKILL instant): hard abort.
    std::process::abort();
}

/// FNV-1a, used to give each (stage, copy) site a stable hash for
/// seeding probabilistic triggers.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Per-filter-copy injection state, consulted once per packet by
/// [`FilterIo`](crate::FilterIo).
#[derive(Debug)]
pub struct FaultInjector {
    rules: Vec<(Trigger, FaultAction)>,
    seed: u64,
    site: u64,
    label: String,
    packet: u64,
    pending: Option<FilterError>,
}

impl FaultInjector {
    /// Called for each packet this copy handles; returns the action to
    /// inject, if any. First matching rule wins.
    pub fn on_packet(&mut self) -> Option<FaultAction> {
        let idx = self.packet;
        self.packet += 1;
        for (trigger, action) in &self.rules {
            let fires = match trigger {
                Trigger::Packet(p) => *p == idx,
                Trigger::Every => true,
                Trigger::Prob(p) => {
                    let mut rng = SmallRng::seed_from_u64(
                        self.seed ^ self.site ^ idx.wrapping_mul(0x2545f4914f6cdd1d),
                    );
                    rng.gen_f64() < *p
                }
            };
            if fires {
                return Some(*action);
            }
        }
        None
    }

    /// `stage[copy]` label of the owning filter copy.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Packets this copy has handled so far.
    pub fn packets_seen(&self) -> u64 {
        self.packet
    }

    /// Record an injected failure to be surfaced after the filter's
    /// unit of work returns (the read path cannot return an error
    /// directly — it signals end-of-work and parks the error here).
    pub fn set_pending(&mut self, e: FilterError) {
        if self.pending.is_none() {
            self.pending = Some(e);
        }
    }

    /// Take the parked injected failure, if any.
    pub fn take_pending(&mut self) -> Option<FilterError> {
        self.pending.take()
    }

    /// Whether an injected failure is parked: the current attempt is
    /// doomed and is running against a fabricated end-of-work.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The structured error an injected `Fail` action produces.
    pub fn injected_error(&self, packet: u64, retryable: bool) -> FilterError {
        let e = FilterError::new(
            self.label.clone(),
            format!("injected failure at packet {packet}"),
        );
        if retryable {
            e.retryable()
        } else {
            e
        }
    }
}

/// Bounded-retry policy for retryable filter errors: attempt `n` (1-based)
/// waits `backoff × 2^(n−1)`, capped at `max_backoff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = no retry).
    pub max_retries: u32,
    /// Base backoff before the first retry.
    pub backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    pub fn retries(n: u32) -> Self {
        RetryPolicy {
            max_retries: n,
            ..Default::default()
        }
    }

    pub fn with_backoff(mut self, base: Duration) -> Self {
        self.backoff = base;
        self
    }

    /// Backoff before retry `attempt` (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(20);
        (self.backoff * factor).min(self.max_backoff)
    }
}

/// Shared state for one pipeline run: the cancellation token wired into
/// every stream channel, a global progress counter the stall detector
/// watches, and the reason the run was cancelled (for the final error).
#[derive(Default)]
pub struct RunControl {
    token: CancelToken,
    progress: AtomicU64,
    cancelled: AtomicBool,
    reason: Mutex<Option<String>>,
}

impl RunControl {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The cancel token stream channels are built against.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Cancel the run, recording why (first reason wins); wakes every
    /// blocked stream operation.
    pub fn cancel(&self, reason: impl Into<String>) {
        let mut r = self.reason.lock().unwrap_or_else(|e| e.into_inner());
        if r.is_none() {
            *r = Some(reason.into());
        }
        drop(r);
        self.cancelled.store(true, Ordering::Release);
        self.token.cancel();
    }

    pub fn reason(&self) -> Option<String> {
        self.reason
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Bump the global progress counter (one successful packet send or
    /// receive); the stall detector watches this.
    pub fn note_progress(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Sleep that wakes early (returning an error) if the run is
    /// cancelled — injected delays must never outlive the deadline.
    pub fn cancellable_sleep(&self, total: Duration, who: &str) -> FilterResult<()> {
        let slice = Duration::from_millis(5);
        let mut left = total;
        while left > Duration::ZERO {
            if self.is_cancelled() {
                return Err(FilterError::cancelled(
                    who,
                    "delay interrupted by run cancellation",
                ));
            }
            let step = left.min(slice);
            std::thread::sleep(step);
            left = left.saturating_sub(step);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan = FaultPlan::parse(
            "seed=7; square[0]@5:panic; sink[*]@%0.01:fail-retryable; src[1]@*:delay:2",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(
            plan.rules[0],
            FaultRule {
                stage: Some("square".into()),
                copy: Some(0),
                trigger: Trigger::Packet(5),
                action: FaultAction::Panic,
            }
        );
        assert_eq!(plan.rules[1].stage, Some("sink".into()));
        assert_eq!(plan.rules[1].copy, None);
        assert_eq!(plan.rules[1].trigger, Trigger::Prob(0.01));
        assert_eq!(plan.rules[1].action, FaultAction::Fail { retryable: true });
        assert_eq!(
            plan.rules[2].action,
            FaultAction::Delay(Duration::from_millis(2))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("a[0]@1:explode").is_err());
        assert!(FaultPlan::parse("a[zero]@1:fail").is_err());
        assert!(FaultPlan::parse("a[0]@%1.5:fail").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("explode@a[0]#1").is_err());
        assert!(FaultPlan::parse("panic@a[#1").is_err(), "stray bracket");
        assert!(FaultPlan::parse("panic@a]0[#1").is_err(), "stray bracket");
    }

    /// Regression: a site without the `[copy]` segment means "any copy"
    /// in both spellings — it used to be a parse error, so a
    /// `CGP_KILL=f3#4` spec against a widened last stage could not be
    /// written at all.
    #[test]
    fn omitted_copy_segment_means_any_copy() {
        let cases: &[(&str, Option<&str>, Option<usize>)] = &[
            // (spec, stage, copy)
            ("panic@a#1", Some("a"), None),
            ("kill@f3#4", Some("f3"), None),
            ("a@1:panic", Some("a"), None),
            ("*@1:drop", None, None),
            ("drop@*#1", None, None),
            // The explicit forms are untouched.
            ("a[2]@1:panic", Some("a"), Some(2)),
            ("panic@a[*]#1", Some("a"), None),
        ];
        for (spec, stage, copy) in cases {
            let plan = FaultPlan::parse(spec).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
            assert_eq!(plan.rules.len(), 1, "`{spec}`");
            assert_eq!(plan.rules[0].stage.as_deref(), *stage, "`{spec}`");
            assert_eq!(plan.rules[0].copy, *copy, "`{spec}`");
        }
        // An omitted-copy rule arms every copy of the stage.
        let plan = FaultPlan::parse("kill@f3#4").unwrap();
        for copy in [0usize, 1, 7] {
            assert!(plan.injector("f3", copy).is_some(), "copy {copy}");
        }
        assert!(plan.injector("f2", 0).is_none(), "stage filter still holds");
    }

    /// Malformed specs — in both the canonical and the action-first
    /// alias spelling — produce an error naming the component that
    /// failed, never a panic or a generic "bad rule".
    #[test]
    fn parse_errors_name_the_failing_component() {
        let cases: &[(&str, &str)] = &[
            // (spec, substring the error must contain)
            ("panic@a[0#1", "bad site `a[0`"),
            ("panic@[0]#1", "empty stage name"),
            ("drop@f2[two]#3", "bad copy index `two`"),
            ("panic@f2[0]#abc", "bad packet selector `abc`"),
            ("fail@f2[0]#%zz", "bad probability `%zz`"),
            ("fail@f2[0]#%1.5", "out of range"),
            ("explode@f2[0]#1", "unknown fault action `explode`"),
            ("delay:soon@f2[0]#1", "bad delay milliseconds `soon`"),
            // Canonical spelling hits the same named errors.
            ("f2[two]@3:drop", "bad copy index `two`"),
            ("f2[0]@abc:panic", "bad packet selector `abc`"),
            ("f2[0]@1:explode", "unknown fault action `explode`"),
            ("f2[0]@1:delay:soon", "bad delay milliseconds `soon`"),
            ("[0]@1:panic", "empty stage name"),
        ];
        for (spec, want) in cases {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert!(
                err.contains(want),
                "`{spec}`: error `{err}` does not name the component (`{want}`)"
            );
        }
        // Well-formed variants of each component still parse.
        for spec in [
            "panic@f2[0]#3",
            "drop@*[*]#*",
            "fail@f2[1]#%0.25",
            "delay:15@f2[0]#9",
            "f2[0]@3:panic",
        ] {
            assert!(FaultPlan::parse(spec).is_ok(), "`{spec}` should parse");
        }
    }

    /// The alias spelling `action@stage[copy]#packet` parses to the same
    /// rule as the canonical `stage[copy]@packet:action`.
    #[test]
    fn parse_accepts_action_first_alias_form() {
        let canonical = FaultPlan::parse("reduce[0]@500:panic").unwrap();
        let alias = FaultPlan::parse("panic@reduce[0]#500").unwrap();
        assert_eq!(alias.rules, canonical.rules);
        let plan = FaultPlan::parse("delay:250@f2[*]#*; fail-retryable@*[1]#%0.5").unwrap();
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(
            plan.rules[0].action,
            FaultAction::Delay(Duration::from_millis(250))
        );
        assert_eq!(plan.rules[0].trigger, Trigger::Every);
        assert_eq!(plan.rules[0].stage.as_deref(), Some("f2"));
        assert_eq!(plan.rules[1].action, FaultAction::Fail { retryable: true });
        assert_eq!(plan.rules[1].trigger, Trigger::Prob(0.5));
        assert_eq!(plan.rules[1].copy, Some(1));
    }

    #[test]
    fn injector_fires_at_exact_packet_only() {
        let plan = FaultPlan::new().panic_at("square", 1, 3);
        assert!(plan.injector("square", 0).is_none(), "copy filter");
        assert!(plan.injector("other", 1).is_none(), "stage filter");
        let mut inj = plan.injector("square", 1).unwrap();
        for i in 0..10u64 {
            let got = inj.on_packet();
            if i == 3 {
                assert_eq!(got, Some(FaultAction::Panic), "packet {i}");
            } else {
                assert_eq!(got, None, "packet {i}");
            }
        }
    }

    #[test]
    fn wildcard_rules_apply_everywhere() {
        let plan = FaultPlan::parse("*[*]@*:drop").unwrap();
        let mut inj = plan.injector("anything", 7).unwrap();
        assert_eq!(inj.on_packet(), Some(FaultAction::DropPacket));
        assert_eq!(inj.on_packet(), Some(FaultAction::DropPacket));
    }

    #[test]
    fn probabilistic_trigger_is_deterministic_for_a_seed() {
        let plan = FaultPlan::parse("s[0]@%0.3:fail").unwrap().with_seed(42);
        let decisions = |plan: &FaultPlan| -> Vec<bool> {
            let mut inj = plan.injector("s", 0).unwrap();
            (0..200).map(|_| inj.on_packet().is_some()).collect()
        };
        let a = decisions(&plan);
        let b = decisions(&plan);
        assert_eq!(a, b, "same seed, same decisions");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((20..=100).contains(&fired), "~30% of 200, got {fired}");
        let other = decisions(&plan.clone().with_seed(43));
        assert_ne!(a, other, "different seed, different decisions");
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let p = RetryPolicy::retries(5).with_backoff(Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(p.delay(20), Duration::from_secs(2), "capped");
    }

    #[test]
    fn run_control_cancel_keeps_first_reason() {
        let rc = RunControl::new();
        assert!(!rc.is_cancelled());
        rc.note_progress();
        assert_eq!(rc.progress(), 1);
        rc.cancel("deadline");
        rc.cancel("later");
        assert!(rc.is_cancelled());
        assert_eq!(rc.reason().as_deref(), Some("deadline"));
    }

    #[test]
    fn cancellable_sleep_aborts_on_cancel() {
        let rc = RunControl::new();
        rc.cancel("now");
        let t = std::time::Instant::now();
        assert!(rc.cancellable_sleep(Duration::from_secs(10), "x").is_err());
        assert!(t.elapsed() < Duration::from_secs(1));
    }
}
