//! Recovery: checkpointed filter state and the knobs that turn fault
//! *detection* (PR 2) into fault *survival*.
//!
//! Three cooperating mechanisms make a pipeline run complete under chaos
//! instead of merely failing cleanly:
//!
//! 1. **Ack/replay delivery** (`stream.rs`) — every data message carries a
//!    per-producer sequence number; producers keep sent-but-unacknowledged
//!    packets in a bounded replay buffer shared with the consumer side.
//!    Consumers acknowledge cumulatively — at every packet for stateless
//!    stages, at checkpoint commits for stateful ones — and a restarted
//!    copy pre-loads the unacknowledged tail back into its delivery queue.
//!    Sequence-based dedup (a per-producer watermark) drops the in-queue
//!    originals the replay duplicates, giving effectively-exactly-once
//!    delivery per stage.
//! 2. **Checkpointed state** (this module + [`FilterIo`]) — stateful
//!    filters snapshot their reduction state every K accepted packets
//!    through [`FilterIo::commit_checkpoint`] into a [`CheckpointStore`]
//!    (in-memory, optionally mirrored to a JSONL audit log). A restarted
//!    copy restores the last snapshot ([`Filter::restore`]) and replays
//!    only the unacknowledged tail.
//! 3. **Restart supervision** (`exec.rs`) — with recovery enabled the
//!    executor treats panics and failures as restartable: the copy gets a
//!    fresh filter instance, its checkpoint back, and its input replayed,
//!    up to [`RecoveryOptions::max_restarts`] times. Placement-level
//!    failover (re-running the decomposition DP over surviving hosts)
//!    lives in `cgp-compiler`'s `failover` module.
//!
//! The replay buffer is bounded by construction: a consumer acknowledges
//! at least every `checkpoint_every` accepted packets, so at most
//! `checkpoint_every + queue capacity` packets per (producer, consumer)
//! pair are ever retained.
//!
//! [`FilterIo`]: crate::filter::FilterIo
//! [`FilterIo::commit_checkpoint`]: crate::filter::FilterIo::commit_checkpoint
//! [`Filter::restore`]: crate::filter::Filter::restore

use crate::error::{FilterError, FilterResult};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Recovery knobs for a pipeline run ([`Pipeline::with_recovery`]).
///
/// [`Pipeline::with_recovery`]: crate::exec::Pipeline::with_recovery
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Master switch. Off (the default) keeps PR 2 semantics: failures
    /// are detected, isolated, and surfaced — not survived.
    pub enabled: bool,
    /// Stateful filters are asked to checkpoint every this many accepted
    /// packets (the `K` of the design; also bounds the replay buffers).
    pub checkpoint_every: u64,
    /// Restarts allowed per filter copy before its error becomes final.
    pub max_restarts: u32,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            enabled: false,
            checkpoint_every: 64,
            max_restarts: 5,
        }
    }
}

impl RecoveryOptions {
    /// Recovery on, with default cadence and restart budget.
    pub fn on() -> Self {
        RecoveryOptions {
            enabled: true,
            ..Default::default()
        }
    }

    pub fn with_checkpoint_every(mut self, k: u64) -> Self {
        self.checkpoint_every = k.max(1);
        self
    }

    pub fn with_max_restarts(mut self, n: u32) -> Self {
        self.max_restarts = n;
        self
    }
}

/// Snapshot of one filter copy's state at an acknowledgement boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Opaque state bytes (the filter's own encoding — e.g. the plan
    /// executor uses `cgp-core`'s reduction-state codec).
    pub state: Vec<u8>,
    /// The copy's output write index at commit time; on restart the
    /// writer rewinds here so regenerated packets keep their original
    /// sequence numbers (and already-sent ones are suppressed).
    pub out_index: u64,
    /// Input packets accepted up to and covered by this snapshot
    /// (informational — the authoritative per-producer watermarks live
    /// in the stream layer's ack state).
    pub packets: u64,
}

/// Magic of one durable snapshot file.
pub const CKPT_MAGIC: [u8; 4] = *b"CGPK";
/// Durable snapshot format version.
pub const CKPT_VERSION: u16 = 1;

/// FNV-1a 64, the integrity check trailing every durable snapshot file.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Storage for per-copy checkpoints: an in-memory map keyed by
/// `(stage, copy)` keeping the latest snapshot, optionally mirrored to
/// an append-only JSONL audit log (one line per commit) and/or a
/// durable directory (one crash-consistent file per copy, committed by
/// tmp-file + atomic rename, that a freshly exec'd process can read
/// back).
///
/// Clones share the same storage, so the executor can hand one store to
/// every copy and tests can inspect it after the run.
#[derive(Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<HashMap<(String, usize), Snapshot>>>,
    jsonl: Option<Arc<Mutex<std::fs::File>>>,
    durable: Option<Arc<PathBuf>>,
    commits: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
}

impl CheckpointStore {
    /// Pure in-memory store (the executor's default).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// In-memory store that also appends every commit to a JSONL file:
    /// `{"stage":…,"copy":…,"packets":…,"out_index":…,"len":…,"state":"<hex>"}`.
    pub fn with_jsonl(path: &str) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(CheckpointStore {
            jsonl: Some(Arc::new(Mutex::new(file))),
            ..Default::default()
        })
    }

    /// Store that additionally persists every commit to `dir` as one
    /// file per `(stage, copy)` (`<stage>-<copy>.ckpt`): the snapshot is
    /// written to a temp file, fsynced, then atomically renamed over the
    /// previous one — a crash at any point leaves either the old or the
    /// new snapshot fully readable, never a torn mix.
    pub fn durable(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::default().with_durable(dir)
    }

    /// Add a durable directory to this store (composes with
    /// [`Self::with_jsonl`]). Creates the directory if needed and
    /// reclaims any `*.ckpt.tmp` left by a crash mid-commit: the rename
    /// is the only publishing step, so an orphaned temp is dead weight a
    /// supervised restart loop would otherwise accumulate forever.
    pub fn with_durable(mut self, dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let orphaned = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".ckpt.tmp"));
            if orphaned {
                // A temp vanishing between readdir and unlink just means
                // someone else (a racing open) reclaimed it first.
                let _ = std::fs::remove_file(&path);
            }
        }
        self.durable = Some(Arc::new(dir));
        Ok(self)
    }

    /// Whether this store persists commits to disk.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Durable file path for `stage[copy]`, if this store is durable.
    /// Stage names are sanitized to a conservative character set so they
    /// can never escape the directory.
    pub fn snapshot_path(&self, stage: &str, copy: usize) -> Option<PathBuf> {
        let dir = self.durable.as_ref()?;
        let safe: String = stage
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Some(dir.join(format!("{safe}-{copy}.ckpt")))
    }

    /// Persist the latest snapshot for `stage[copy]`, replacing any
    /// previous one. Must complete before the matching input acks are
    /// published (the commit is what makes those packets "durable").
    pub fn save(&self, stage: &str, copy: usize, snap: Snapshot) -> FilterResult<()> {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(snap.state.len() as u64, Ordering::Relaxed);
        if let Some(file) = &self.jsonl {
            let mut hex = String::with_capacity(snap.state.len() * 2);
            for b in &snap.state {
                use std::fmt::Write as _;
                let _ = write!(hex, "{b:02x}");
            }
            let line = format!(
                "{{\"stage\":\"{}\",\"copy\":{},\"packets\":{},\"out_index\":{},\"len\":{},\"state\":\"{}\"}}\n",
                stage.replace('\\', "\\\\").replace('"', "\\\""),
                copy,
                snap.packets,
                snap.out_index,
                snap.state.len(),
                hex
            );
            let mut f = file.lock().unwrap_or_else(|e| e.into_inner());
            f.write_all(line.as_bytes()).map_err(|e| {
                FilterError::new(
                    format!("{stage}[{copy}]"),
                    format!("checkpoint JSONL write failed: {e}"),
                )
            })?;
        }
        if self.durable.is_some() {
            self.persist(stage, copy, &snap).map_err(|e| {
                FilterError::new(
                    format!("{stage}[{copy}]"),
                    format!("durable checkpoint commit failed: {e}"),
                )
            })?;
        }
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((stage.to_string(), copy), snap);
        Ok(())
    }

    /// Write one snapshot file crash-consistently: encode into
    /// `<path>.tmp`, fsync, then rename over `<path>`.
    fn persist(&self, stage: &str, copy: usize, snap: &Snapshot) -> std::io::Result<()> {
        let path = self
            .snapshot_path(stage, copy)
            .expect("persist called on a durable store");
        let tmp = path.with_extension("ckpt.tmp");
        let bytes = encode_snapshot(stage, copy, snap);
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path)
    }

    /// Read the durable snapshot a *previous incarnation* of this
    /// process committed for `stage[copy]`. `Ok(None)` when no file
    /// exists; named errors for a foreign, truncated, corrupt, or
    /// mismatched file. The in-memory [`Self::load`] intentionally only
    /// serves this incarnation's commits — restoring across an exec is
    /// an explicit act.
    pub fn load_persisted(&self, stage: &str, copy: usize) -> FilterResult<Option<Snapshot>> {
        let Some(path) = self.snapshot_path(stage, copy) else {
            return Ok(None);
        };
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(FilterError::new(
                    format!("{stage}[{copy}]"),
                    format!("read durable checkpoint {}: {e}", path.display()),
                ))
            }
        };
        decode_snapshot(&bytes, stage, copy).map(Some)
    }

    /// The latest snapshot for `stage[copy]`, if any commit happened.
    pub fn load(&self, stage: &str, copy: usize) -> Option<Snapshot> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(stage.to_string(), copy))
            .cloned()
    }

    /// Total commits across all copies.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Total snapshot bytes across all commits.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Encode one durable snapshot file:
///
/// ```text
/// magic "CGPK" · version u16 · reserved u16 · stage_len u32 · stage
/// · copy u64 · out_index u64 · packets u64 · state_len u64 · state
/// · fnv64 over everything above
/// ```
fn encode_snapshot(stage: &str, copy: usize, snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(44 + stage.len() + snap.state.len());
    out.extend_from_slice(&CKPT_MAGIC);
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(stage.len() as u32).to_le_bytes());
    out.extend_from_slice(stage.as_bytes());
    out.extend_from_slice(&(copy as u64).to_le_bytes());
    out.extend_from_slice(&snap.out_index.to_le_bytes());
    out.extend_from_slice(&snap.packets.to_le_bytes());
    out.extend_from_slice(&(snap.state.len() as u64).to_le_bytes());
    out.extend_from_slice(&snap.state);
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode and validate one durable snapshot file, checking it really
/// belongs to `stage[copy]`. Every rejection is a named, actionable
/// error: magic, version, truncation, checksum, stage and copy
/// mismatches are all distinguished.
pub fn decode_snapshot(bytes: &[u8], stage: &str, copy: usize) -> FilterResult<Snapshot> {
    let who = format!("{stage}[{copy}]");
    let bad = |m: String| FilterError::malformed(who.clone(), m);
    let trunc = || bad("durable checkpoint truncated".into());
    if bytes.len() < 12 {
        return Err(trunc());
    }
    if bytes[0..4] != CKPT_MAGIC {
        return Err(bad(format!(
            "bad checkpoint magic {:02x?} (expected {CKPT_MAGIC:02x?})",
            &bytes[0..4]
        )));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != CKPT_VERSION {
        return Err(bad(format!(
            "checkpoint format version {version} (this build reads {CKPT_VERSION})"
        )));
    }
    if bytes.len() < 8 {
        return Err(trunc());
    }
    let u64_at = |at: usize| -> FilterResult<u64> {
        bytes
            .get(at..at + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .ok_or_else(trunc)
    };
    let stage_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let got_stage = bytes
        .get(12..12 + stage_len)
        .map(String::from_utf8_lossy)
        .ok_or_else(trunc)?;
    let mut at = 12 + stage_len;
    let got_copy = u64_at(at)?;
    let out_index = u64_at(at + 8)?;
    let packets = u64_at(at + 16)?;
    let state_len = u64_at(at + 24)? as usize;
    at += 32;
    let state = bytes.get(at..at + state_len).ok_or_else(trunc)?;
    at += state_len;
    let sum = u64_at(at)?;
    if sum != fnv64(&bytes[..at]) {
        return Err(bad("checkpoint checksum mismatch (corrupt file)".into()));
    }
    if got_stage != stage {
        return Err(bad(format!(
            "checkpoint belongs to stage '{got_stage}', not '{stage}'"
        )));
    }
    if got_copy != copy as u64 {
        return Err(bad(format!(
            "checkpoint belongs to copy {got_copy}, not {copy}"
        )));
    }
    Ok(Snapshot {
        state: state.to_vec(),
        out_index,
        packets,
    })
}

/// Snapshot/restore interface for state objects that live inside filters
/// (reduction accumulators in the figure apps implement this). Filters
/// forward [`Filter::restore`] to the state object and feed
/// [`Checkpoint::snapshot`] to [`FilterIo::commit_checkpoint`].
///
/// The contract mirrors the runtime's reduction semantics: restoring a
/// snapshot into a freshly initialized object must reproduce the state
/// the snapshot was taken from (initialization is the reduction
/// identity).
///
/// [`Filter::restore`]: crate::filter::Filter::restore
/// [`FilterIo::commit_checkpoint`]: crate::filter::FilterIo::commit_checkpoint
pub trait Checkpoint {
    /// Serialize the current state.
    fn snapshot(&self) -> Vec<u8>;
    /// Replace the current state with a previously serialized snapshot.
    fn restore(&mut self, snapshot: &[u8]) -> FilterResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_keeps_latest_snapshot_per_copy() {
        let store = CheckpointStore::in_memory();
        assert!(store.load("s", 0).is_none());
        let snap = |v: u8, out: u64| Snapshot {
            state: vec![v; 3],
            out_index: out,
            packets: out * 2,
        };
        store.save("s", 0, snap(1, 10)).unwrap();
        store.save("s", 1, snap(2, 20)).unwrap();
        store.save("s", 0, snap(3, 30)).unwrap();
        assert_eq!(store.load("s", 0).unwrap().state, vec![3; 3]);
        assert_eq!(store.load("s", 0).unwrap().out_index, 30);
        assert_eq!(store.load("s", 1).unwrap().state, vec![2; 3]);
        assert_eq!(store.commits(), 3);
        assert_eq!(store.bytes(), 9);
    }

    #[test]
    fn clones_share_storage() {
        let store = CheckpointStore::in_memory();
        let other = store.clone();
        store
            .save(
                "s",
                0,
                Snapshot {
                    state: vec![7],
                    out_index: 1,
                    packets: 1,
                },
            )
            .unwrap();
        assert_eq!(other.load("s", 0).unwrap().state, vec![7]);
        assert_eq!(other.commits(), 1);
    }

    #[test]
    fn jsonl_mirror_appends_one_line_per_commit() {
        let path = std::env::temp_dir().join(format!("cgp-ckpt-{}.jsonl", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        let store = CheckpointStore::with_jsonl(&path_s).unwrap();
        store
            .save(
                "reduce",
                1,
                Snapshot {
                    state: vec![0xab, 0xcd],
                    out_index: 4,
                    packets: 9,
                },
            )
            .unwrap();
        store
            .save(
                "reduce",
                1,
                Snapshot {
                    state: vec![0xff],
                    out_index: 5,
                    packets: 12,
                },
            )
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"stage\":\"reduce\""));
        assert!(lines[0].contains("\"state\":\"abcd\""));
        assert!(lines[1].contains("\"packets\":12"));
        let _ = std::fs::remove_file(&path);
    }

    fn durable_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cgp-durable-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_commit_survives_a_fresh_store_like_an_execd_process() {
        let dir = durable_dir("fresh");
        let store = CheckpointStore::durable(&dir).unwrap();
        let snap = Snapshot {
            state: vec![1, 2, 3, 4],
            out_index: 17,
            packets: 34,
        };
        store.save("f2", 1, snap.clone()).unwrap();
        // A brand-new store over the same directory models the respawned
        // process: its in-memory map is empty, the durable file is not.
        let fresh = CheckpointStore::durable(&dir).unwrap();
        assert!(fresh.load("f2", 1).is_none(), "memory is per-incarnation");
        assert_eq!(fresh.load_persisted("f2", 1).unwrap(), Some(snap));
        assert_eq!(fresh.load_persisted("f2", 0).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_commit_leaves_the_previous_snapshot_readable() {
        let dir = durable_dir("crash");
        let store = CheckpointStore::durable(&dir).unwrap();
        let committed = Snapshot {
            state: vec![9; 32],
            out_index: 8,
            packets: 16,
        };
        store.save("f3", 0, committed.clone()).unwrap();
        let path = store.snapshot_path("f3", 0).unwrap();
        // Property: whatever prefix of the *next* commit's tmp write the
        // crash leaves behind, the committed file is untouched and fully
        // readable — the rename is the only publishing step.
        let next = encode_snapshot(
            "f3",
            0,
            &Snapshot {
                state: vec![7; 64],
                out_index: 20,
                packets: 40,
            },
        );
        for cut in [0, 1, 4, 11, next.len() / 2, next.len() - 1] {
            let tmp = path.with_extension("ckpt.tmp");
            std::fs::write(&tmp, &next[..cut]).unwrap();
            let fresh = CheckpointStore::durable(&dir).unwrap();
            assert_eq!(
                fresh.load_persisted("f3", 0).unwrap(),
                Some(committed.clone()),
                "torn tmp of {cut} bytes must not shadow the commit"
            );
            // Regression: opening the store reclaims the orphaned temp —
            // without the sweep, a supervised restart loop accumulates
            // one torn `*.ckpt.tmp` per crash, unboundedly.
            assert!(
                !tmp.exists(),
                "torn tmp of {cut} bytes must be reclaimed on open"
            );
            // And the torn tmp itself decodes to a *named* error, never
            // a bogus snapshot.
            assert!(decode_snapshot(&next[..cut], "f3", 0).is_err());
        }
        // The sweep is surgical: committed snapshots and unrelated files
        // survive an open that reclaims temps.
        std::fs::write(dir.join("other-file.txt"), b"keep me").unwrap();
        std::fs::write(path.with_extension("ckpt.tmp"), b"torn").unwrap();
        let fresh = CheckpointStore::durable(&dir).unwrap();
        assert!(path.exists(), "committed snapshot survives the sweep");
        assert!(dir.join("other-file.txt").exists());
        assert_eq!(
            fresh.load_persisted("f3", 0).unwrap(),
            Some(committed.clone())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_rejects_mismatches_with_named_errors() {
        let snap = Snapshot {
            state: vec![5; 8],
            out_index: 3,
            packets: 6,
        };
        let good = encode_snapshot("f2", 1, &snap);
        assert_eq!(decode_snapshot(&good, "f2", 1).unwrap(), snap);

        let e = decode_snapshot(&good, "f4", 1).unwrap_err();
        assert!(e.message.contains("stage 'f2'"), "{e}");
        let e = decode_snapshot(&good, "f2", 0).unwrap_err();
        assert!(e.message.contains("copy 1"), "{e}");

        let mut wrong_ver = good.clone();
        wrong_ver[4..6].copy_from_slice(&99u16.to_le_bytes());
        let e = decode_snapshot(&wrong_ver, "f2", 1).unwrap_err();
        assert!(e.message.contains("version 99"), "{e}");

        let mut wrong_magic = good.clone();
        wrong_magic[0..4].copy_from_slice(b"XXXX");
        let e = decode_snapshot(&wrong_magic, "f2", 1).unwrap_err();
        assert!(e.message.contains("magic"), "{e}");

        let mut corrupt = good.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        let e = decode_snapshot(&corrupt, "f2", 1).unwrap_err();
        assert!(e.message.contains("checksum"), "{e}");

        let e = decode_snapshot(&good[..good.len() - 3], "f2", 1).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
        assert_eq!(e.kind, crate::error::ErrorKind::Malformed);
    }

    #[test]
    fn durable_composes_with_jsonl_mirror() {
        let dir = durable_dir("compose");
        let jsonl = dir.join("audit.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::with_jsonl(&jsonl.to_string_lossy())
            .unwrap()
            .with_durable(&dir)
            .unwrap();
        store
            .save(
                "f1",
                0,
                Snapshot {
                    state: vec![1],
                    out_index: 1,
                    packets: 1,
                },
            )
            .unwrap();
        assert!(store.snapshot_path("f1", 0).unwrap().exists());
        assert_eq!(std::fs::read_to_string(&jsonl).unwrap().lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn options_builders() {
        let o = RecoveryOptions::on()
            .with_checkpoint_every(16)
            .with_max_restarts(2);
        assert!(o.enabled);
        assert_eq!(o.checkpoint_every, 16);
        assert_eq!(o.max_restarts, 2);
        assert!(!RecoveryOptions::default().enabled);
        assert_eq!(
            RecoveryOptions::on()
                .with_checkpoint_every(0)
                .checkpoint_every,
            1
        );
    }
}
