//! Recovery: checkpointed filter state and the knobs that turn fault
//! *detection* (PR 2) into fault *survival*.
//!
//! Three cooperating mechanisms make a pipeline run complete under chaos
//! instead of merely failing cleanly:
//!
//! 1. **Ack/replay delivery** (`stream.rs`) — every data message carries a
//!    per-producer sequence number; producers keep sent-but-unacknowledged
//!    packets in a bounded replay buffer shared with the consumer side.
//!    Consumers acknowledge cumulatively — at every packet for stateless
//!    stages, at checkpoint commits for stateful ones — and a restarted
//!    copy pre-loads the unacknowledged tail back into its delivery queue.
//!    Sequence-based dedup (a per-producer watermark) drops the in-queue
//!    originals the replay duplicates, giving effectively-exactly-once
//!    delivery per stage.
//! 2. **Checkpointed state** (this module + [`FilterIo`]) — stateful
//!    filters snapshot their reduction state every K accepted packets
//!    through [`FilterIo::commit_checkpoint`] into a [`CheckpointStore`]
//!    (in-memory, optionally mirrored to a JSONL audit log). A restarted
//!    copy restores the last snapshot ([`Filter::restore`]) and replays
//!    only the unacknowledged tail.
//! 3. **Restart supervision** (`exec.rs`) — with recovery enabled the
//!    executor treats panics and failures as restartable: the copy gets a
//!    fresh filter instance, its checkpoint back, and its input replayed,
//!    up to [`RecoveryOptions::max_restarts`] times. Placement-level
//!    failover (re-running the decomposition DP over surviving hosts)
//!    lives in `cgp-compiler`'s `failover` module.
//!
//! The replay buffer is bounded by construction: a consumer acknowledges
//! at least every `checkpoint_every` accepted packets, so at most
//! `checkpoint_every + queue capacity` packets per (producer, consumer)
//! pair are ever retained.
//!
//! [`FilterIo`]: crate::filter::FilterIo
//! [`FilterIo::commit_checkpoint`]: crate::filter::FilterIo::commit_checkpoint
//! [`Filter::restore`]: crate::filter::Filter::restore

use crate::error::{FilterError, FilterResult};
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Recovery knobs for a pipeline run ([`Pipeline::with_recovery`]).
///
/// [`Pipeline::with_recovery`]: crate::exec::Pipeline::with_recovery
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Master switch. Off (the default) keeps PR 2 semantics: failures
    /// are detected, isolated, and surfaced — not survived.
    pub enabled: bool,
    /// Stateful filters are asked to checkpoint every this many accepted
    /// packets (the `K` of the design; also bounds the replay buffers).
    pub checkpoint_every: u64,
    /// Restarts allowed per filter copy before its error becomes final.
    pub max_restarts: u32,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            enabled: false,
            checkpoint_every: 64,
            max_restarts: 5,
        }
    }
}

impl RecoveryOptions {
    /// Recovery on, with default cadence and restart budget.
    pub fn on() -> Self {
        RecoveryOptions {
            enabled: true,
            ..Default::default()
        }
    }

    pub fn with_checkpoint_every(mut self, k: u64) -> Self {
        self.checkpoint_every = k.max(1);
        self
    }

    pub fn with_max_restarts(mut self, n: u32) -> Self {
        self.max_restarts = n;
        self
    }
}

/// Snapshot of one filter copy's state at an acknowledgement boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Opaque state bytes (the filter's own encoding — e.g. the plan
    /// executor uses `cgp-core`'s reduction-state codec).
    pub state: Vec<u8>,
    /// The copy's output write index at commit time; on restart the
    /// writer rewinds here so regenerated packets keep their original
    /// sequence numbers (and already-sent ones are suppressed).
    pub out_index: u64,
    /// Input packets accepted up to and covered by this snapshot
    /// (informational — the authoritative per-producer watermarks live
    /// in the stream layer's ack state).
    pub packets: u64,
}

/// Durable(-enough) storage for per-copy checkpoints: an in-memory map
/// keyed by `(stage, copy)` keeping the latest snapshot, optionally
/// mirrored to an append-only JSONL audit log (one line per commit).
///
/// Clones share the same storage, so the executor can hand one store to
/// every copy and tests can inspect it after the run.
#[derive(Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<HashMap<(String, usize), Snapshot>>>,
    jsonl: Option<Arc<Mutex<std::fs::File>>>,
    commits: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
}

impl CheckpointStore {
    /// Pure in-memory store (the executor's default).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// In-memory store that also appends every commit to a JSONL file:
    /// `{"stage":…,"copy":…,"packets":…,"out_index":…,"len":…,"state":"<hex>"}`.
    pub fn with_jsonl(path: &str) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(CheckpointStore {
            jsonl: Some(Arc::new(Mutex::new(file))),
            ..Default::default()
        })
    }

    /// Persist the latest snapshot for `stage[copy]`, replacing any
    /// previous one. Must complete before the matching input acks are
    /// published (the commit is what makes those packets "durable").
    pub fn save(&self, stage: &str, copy: usize, snap: Snapshot) -> FilterResult<()> {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(snap.state.len() as u64, Ordering::Relaxed);
        if let Some(file) = &self.jsonl {
            let mut hex = String::with_capacity(snap.state.len() * 2);
            for b in &snap.state {
                use std::fmt::Write as _;
                let _ = write!(hex, "{b:02x}");
            }
            let line = format!(
                "{{\"stage\":\"{}\",\"copy\":{},\"packets\":{},\"out_index\":{},\"len\":{},\"state\":\"{}\"}}\n",
                stage.replace('\\', "\\\\").replace('"', "\\\""),
                copy,
                snap.packets,
                snap.out_index,
                snap.state.len(),
                hex
            );
            let mut f = file.lock().unwrap_or_else(|e| e.into_inner());
            f.write_all(line.as_bytes()).map_err(|e| {
                FilterError::new(
                    format!("{stage}[{copy}]"),
                    format!("checkpoint JSONL write failed: {e}"),
                )
            })?;
        }
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((stage.to_string(), copy), snap);
        Ok(())
    }

    /// The latest snapshot for `stage[copy]`, if any commit happened.
    pub fn load(&self, stage: &str, copy: usize) -> Option<Snapshot> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(stage.to_string(), copy))
            .cloned()
    }

    /// Total commits across all copies.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Total snapshot bytes across all commits.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Snapshot/restore interface for state objects that live inside filters
/// (reduction accumulators in the figure apps implement this). Filters
/// forward [`Filter::restore`] to the state object and feed
/// [`Checkpoint::snapshot`] to [`FilterIo::commit_checkpoint`].
///
/// The contract mirrors the runtime's reduction semantics: restoring a
/// snapshot into a freshly initialized object must reproduce the state
/// the snapshot was taken from (initialization is the reduction
/// identity).
///
/// [`Filter::restore`]: crate::filter::Filter::restore
/// [`FilterIo::commit_checkpoint`]: crate::filter::FilterIo::commit_checkpoint
pub trait Checkpoint {
    /// Serialize the current state.
    fn snapshot(&self) -> Vec<u8>;
    /// Replace the current state with a previously serialized snapshot.
    fn restore(&mut self, snapshot: &[u8]) -> FilterResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_keeps_latest_snapshot_per_copy() {
        let store = CheckpointStore::in_memory();
        assert!(store.load("s", 0).is_none());
        let snap = |v: u8, out: u64| Snapshot {
            state: vec![v; 3],
            out_index: out,
            packets: out * 2,
        };
        store.save("s", 0, snap(1, 10)).unwrap();
        store.save("s", 1, snap(2, 20)).unwrap();
        store.save("s", 0, snap(3, 30)).unwrap();
        assert_eq!(store.load("s", 0).unwrap().state, vec![3; 3]);
        assert_eq!(store.load("s", 0).unwrap().out_index, 30);
        assert_eq!(store.load("s", 1).unwrap().state, vec![2; 3]);
        assert_eq!(store.commits(), 3);
        assert_eq!(store.bytes(), 9);
    }

    #[test]
    fn clones_share_storage() {
        let store = CheckpointStore::in_memory();
        let other = store.clone();
        store
            .save(
                "s",
                0,
                Snapshot {
                    state: vec![7],
                    out_index: 1,
                    packets: 1,
                },
            )
            .unwrap();
        assert_eq!(other.load("s", 0).unwrap().state, vec![7]);
        assert_eq!(other.commits(), 1);
    }

    #[test]
    fn jsonl_mirror_appends_one_line_per_commit() {
        let path = std::env::temp_dir().join(format!("cgp-ckpt-{}.jsonl", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        let store = CheckpointStore::with_jsonl(&path_s).unwrap();
        store
            .save(
                "reduce",
                1,
                Snapshot {
                    state: vec![0xab, 0xcd],
                    out_index: 4,
                    packets: 9,
                },
            )
            .unwrap();
        store
            .save(
                "reduce",
                1,
                Snapshot {
                    state: vec![0xff],
                    out_index: 5,
                    packets: 12,
                },
            )
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"stage\":\"reduce\""));
        assert!(lines[0].contains("\"state\":\"abcd\""));
        assert!(lines[1].contains("\"packets\":12"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn options_builders() {
        let o = RecoveryOptions::on()
            .with_checkpoint_every(16)
            .with_max_restarts(2);
        assert!(o.enabled);
        assert_eq!(o.checkpoint_every, 16);
        assert_eq!(o.max_restarts, 2);
        assert!(!RecoveryOptions::default().enabled);
        assert_eq!(
            RecoveryOptions::on()
                .with_checkpoint_every(0)
                .checkpoint_every,
            1
        );
    }
}
