//! Shared-memory transport for same-host logical streams.
//!
//! When both endpoints of a distributed link live on the same host,
//! pushing every packet through the loopback TCP stack costs two
//! syscalls plus a kernel copy per frame. This module replaces the
//! socket with a **file-backed mmap ring**: the consumer creates a
//! file under the shm directory (`/dev/shm` when present), maps it
//! `MAP_SHARED`, and publishes byte cursors through atomics in the
//! mapped header page. The producer maps the same file and the two
//! processes stream bytes through user-space memory — no syscalls on
//! the data path at all.
//!
//! ## What flows through the ring
//!
//! Exactly the TCP wire format ([`crate::net`]): the same length-
//! prefixed `Hello` / `Data` / `End` / `Close` frames, encoded by the
//! same helpers and re-parsed by the same hardened [`decode_frame`].
//! The ring is a plain byte pipe underneath — a frame larger than the
//! ring streams through incrementally, reader consuming while the
//! writer is still copying, so [`MAX_FRAME_PAYLOAD`] stays the only
//! payload cap.
//!
//! ## Layout and memory ordering
//!
//! ```text
//! offset 0    magic "CGPS", version u16, capacity u64,
//!             owner (consumer) pid u64              (written once,
//!                                       published by an atomic rename)
//! offset 64   head: AtomicU64   — bytes consumed  (reader-owned)
//! offset 128  tail: AtomicU64   — bytes produced  (writer-owned)
//! offset 192  producer_closed: AtomicU32
//! offset 256  consumer_closed: AtomicU32
//! offset 320  reset_req: AtomicU64  — bumped by a rejoining producer
//! offset 384  reset_ack: AtomicU64  — consumer acks the drain
//! offset 448  resume: AtomicU64     — consumer's next expected seq
//! offset 512  producer_pid: AtomicU64 — current producer, 0 = none yet
//! offset 4096 data[capacity]    — ring, indexed by cursor & (cap-1)
//! ```
//!
//! Cursors grow monotonically; `tail - head` is the fill level. The
//! writer copies payload bytes first and then stores `tail` with
//! `Release`; the reader `Acquire`-loads `tail` before touching the
//! bytes (and symmetrically for `head` when freeing space). The
//! `producer_closed` flag is stored `Release` *after* the final `tail`
//! store, so a reader that observes the flag re-loads `tail` once more
//! and can never miss trailing bytes.
//!
//! ## Handshake and failure model
//!
//! The handshake is **one-way**: the producer writes `Hello` first and
//! there is no `HelloAck` — on a first attach the consumer resumes from
//! sequence 0. Blocking waits are spin-then-bounded-sleep polls (no
//! cross-process condvars), checking run cancellation and the peer's
//! closed flag every lap, so a dead peer or a cancelled run unwedges
//! promptly. The consumer unlinks the ring file on drop.
//!
//! ## Crash recovery: the ring-reset protocol
//!
//! Liveness on this transport is **pid-based**, not heartbeat-based: the
//! header records the consumer's pid (written before the publishing
//! rename) and the producer's pid (stored at attach), and either side
//! can probe the other with `kill(pid, 0)`. Two consequences:
//!
//! - **Stale reclaim.** A process that is SIGKILLed never unlinks its
//!   ring files. [`ShmReceiver::create`] therefore reclaims a leftover
//!   ring (or half-written `.tmp`) whose recorded owner pid is dead, and
//!   fails with a named error when the owner is still alive.
//! - **Producer rejoin.** When a supervised worker is respawned, its
//!   egress re-attaches to the surviving consumer's ring. A non-zero
//!   `producer_pid` slot marks the attach as a rejoin: the new producer
//!   bumps `reset_req` and waits; the consumer (parked on the dead
//!   producer) drains any truncated frame bytes (`head = tail`), clears
//!   `producer_closed`, and stores `reset_ack = reset_req` — only then
//!   does the producer write. The consumer publishes its dedup watermark
//!   to `resume` after every accepted frame, so the rejoining producer
//!   reads it post-ack and suppresses already-delivered packets exactly
//!   like the TCP `HelloAck { resume_seq }` path. The downstream
//!   [`IngressFeeder`] watermark still dedups independently, so a stale
//!   `resume` is a bandwidth loss, never a correctness loss.
//!
//! Unsupervised runs keep the strict pre-supervision semantics: a ring
//! closing before `End` is an error, and a reset request is malformed.

use crate::buffer::Buffer;
use crate::error::{FilterError, FilterResult};
use crate::fault::RunControl;
use crate::net::{
    decode_frame, encode_data_header, encode_frame, frame_header_len, frame_len_field_at, Frame,
    IngressFeeder, NetLinkStats, NetTuning, MAX_FRAME_PAYLOAD,
};
use crate::stream::{StreamReader, StreamWriter};
use crate::telemetry::LinkProbe;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Ring-file magic: first bytes of the mapped header.
pub const SHM_MAGIC: [u8; 4] = *b"CGPS";
/// Ring-layout version (checked when the producer attaches). v2 added
/// the owner-pid field and the reset/resume slots.
pub const SHM_VERSION: u16 = 2;
/// Default data-area size per link ring.
pub const DEFAULT_SHM_CAPACITY: usize = 4 * 1024 * 1024;
/// Listener-marker prefix for shared-memory endpoints: a worker that
/// serves its ingress over shm announces `shm:<base>` instead of a TCP
/// port, and producers dispatch on the same prefix.
pub const SHM_PREFIX: &str = "shm:";

/// Smallest accepted data area (one header page's worth).
const MIN_CAPACITY: usize = 4096;
/// Header page reserved ahead of the data area.
const HEADER_LEN: usize = 4096;
const OFF_HEAD: usize = 64;
const OFF_TAIL: usize = 128;
const OFF_PRODUCER_CLOSED: usize = 192;
const OFF_CONSUMER_CLOSED: usize = 256;
const OFF_RESET_REQ: usize = 320;
const OFF_RESET_ACK: usize = 384;
const OFF_RESUME: usize = 448;
const OFF_PRODUCER_PID: usize = 512;
/// Byte offset of the owner (consumer) pid in the static header.
const OWNER_PID_AT: usize = 16;

/// Busy-spin laps before yielding (matches the in-process ring).
const SPINS: u32 = 128;
/// `yield_now` laps before sleeping.
const YIELDS: u32 = 16;
/// Bounded sleep once spinning gave up: the cross-process analogue of
/// parking, and the granularity at which a blocked side notices
/// cancellation or a dead peer.
const SLEEP: Duration = Duration::from_micros(100);
/// How long the producer waits for the consumer to publish the ring
/// file before giving up (the consumer creates it before announcing,
/// so this only covers slow filesystems and test races).
const ATTACH_BUDGET: Duration = Duration::from_secs(10);

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether this build supports the shm transport (mmap is required).
pub fn shm_supported() -> bool {
    cfg!(unix)
}

/// Directory for ring files: `/dev/shm` when it exists (memory-backed
/// tmpfs on Linux), the system temp directory otherwise.
pub fn shm_dir() -> PathBuf {
    let dev_shm = PathBuf::from("/dev/shm");
    if dev_shm.is_dir() {
        dev_shm
    } else {
        std::env::temp_dir()
    }
}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_SHARED: c_int = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_shared(file: &File, len: usize) -> std::io::Result<*mut u8> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(ptr.cast())
    }

    pub fn unmap(ptr: *mut u8, len: usize) {
        unsafe {
            munmap(ptr.cast(), len);
        }
    }

    pub fn own_pid() -> u64 {
        std::process::id() as u64
    }

    /// Whether the process with `pid` still exists. `kill(pid, 0)`
    /// delivers no signal; `ESRCH` is the only errno meaning "gone"
    /// (`EPERM` means alive but not ours). Pid reuse can only produce a
    /// false *alive*, which is the safe direction for both reclaim and
    /// liveness verdicts.
    pub fn process_alive(pid: u64) -> bool {
        const ESRCH: i32 = 3;
        extern "C" {
            fn kill(pid: i32, sig: c_int) -> c_int;
        }
        if pid == 0 || pid > i32::MAX as u64 {
            return false;
        }
        if unsafe { kill(pid as i32, 0) } == 0 {
            return true;
        }
        std::io::Error::last_os_error().raw_os_error() != Some(ESRCH)
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;

    pub fn map_shared(_file: &File, _len: usize) -> std::io::Result<*mut u8> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "shm transport requires mmap (unix)",
        ))
    }

    pub fn unmap(_ptr: *mut u8, _len: usize) {}

    pub fn own_pid() -> u64 {
        std::process::id() as u64
    }

    /// Without `kill(pid, 0)` we can never prove a process dead, so
    /// report everything alive — reclaim then refuses, which is the
    /// conservative failure mode.
    pub fn process_alive(_pid: u64) -> bool {
        true
    }
}

/// One mapped ring file. Owns the mapping; the file itself is unlinked
/// by the consumer side.
struct Map {
    ptr: *mut u8,
    len: usize,
    cap: u64,
    // Keeps the fd alive for the mapping's lifetime (not strictly
    // required by mmap semantics, but makes debugging via /proc easier).
    _file: File,
}

// The raw pointer targets a MAP_SHARED region whose cross-thread (and
// cross-process) accesses all go through the atomics below plus
// acquire/release-ordered byte copies.
unsafe impl Send for Map {}

impl Map {
    fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= HEADER_LEN && off % 8 == 0);
        unsafe { &*self.ptr.add(off).cast::<AtomicU64>() }
    }

    fn atomic_u32(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= HEADER_LEN && off % 4 == 0);
        unsafe { &*self.ptr.add(off).cast::<AtomicU32>() }
    }

    fn head(&self) -> &AtomicU64 {
        self.atomic_u64(OFF_HEAD)
    }

    fn tail(&self) -> &AtomicU64 {
        self.atomic_u64(OFF_TAIL)
    }

    fn producer_closed(&self) -> bool {
        self.atomic_u32(OFF_PRODUCER_CLOSED).load(Ordering::Acquire) != 0
    }

    fn consumer_closed(&self) -> bool {
        self.atomic_u32(OFF_CONSUMER_CLOSED).load(Ordering::Acquire) != 0
    }

    fn close(&self, off: usize) {
        self.atomic_u32(off).store(1, Ordering::Release);
    }

    fn reset_req(&self) -> &AtomicU64 {
        self.atomic_u64(OFF_RESET_REQ)
    }

    fn reset_ack(&self) -> &AtomicU64 {
        self.atomic_u64(OFF_RESET_ACK)
    }

    fn resume(&self) -> &AtomicU64 {
        self.atomic_u64(OFF_RESUME)
    }

    fn producer_pid(&self) -> &AtomicU64 {
        self.atomic_u64(OFF_PRODUCER_PID)
    }

    fn data(&self) -> *mut u8 {
        unsafe { self.ptr.add(HEADER_LEN) }
    }

    /// Copy `src` into the ring starting at logical cursor `at`,
    /// wrapping across the capacity boundary.
    fn copy_in(&self, at: u64, src: &[u8]) {
        let mask = self.cap - 1;
        let at = (at & mask) as usize;
        let first = src.len().min(self.cap as usize - at);
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.data().add(at), first);
            std::ptr::copy_nonoverlapping(src.as_ptr().add(first), self.data(), src.len() - first);
        }
    }

    /// Copy out of the ring starting at logical cursor `at` into `dst`.
    fn copy_out(&self, at: u64, dst: &mut [u8]) {
        let mask = self.cap - 1;
        let at = (at & mask) as usize;
        let first = dst.len().min(self.cap as usize - at);
        unsafe {
            std::ptr::copy_nonoverlapping(self.data().add(at), dst.as_mut_ptr(), first);
            std::ptr::copy_nonoverlapping(
                self.data(),
                dst.as_mut_ptr().add(first),
                dst.len() - first,
            );
        }
    }
}

impl Drop for Map {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
    }
}

/// Spin → yield → bounded-sleep backoff for cross-process waits.
struct Backoff {
    step: u32,
}

impl Backoff {
    fn new() -> Self {
        Backoff { step: 0 }
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn pause(&mut self) {
        if self.step < SPINS {
            std::hint::spin_loop();
        } else if self.step < SPINS + YIELDS {
            std::thread::yield_now();
        } else {
            std::thread::sleep(SLEEP);
        }
        self.step = self.step.saturating_add(1);
    }
}

fn read_header_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(buf[at..at + 2].try_into().expect("2 bytes"))
}

fn read_header_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Read the owner pid out of a ring (or ring-tmp) file's static header
/// without mapping it. `Ok(None)` means the file does not carry a valid
/// cgp ring header (foreign file, or a tmp whose header write never
/// completed).
fn ring_owner_pid(path: &Path) -> std::io::Result<Option<u64>> {
    use std::io::Read;
    let mut f = File::open(path)?;
    let mut header = [0u8; 24];
    let mut got = 0;
    while got < header.len() {
        match f.read(&mut header[got..])? {
            0 => return Ok(None),
            n => got += n,
        }
    }
    if header[0..4] != SHM_MAGIC || read_header_u16(&header, 4) != SHM_VERSION {
        return Ok(None);
    }
    Ok(Some(read_header_u64(&header, OWNER_PID_AT)))
}

/// Deal with a leftover file where we want to create a ring: reclaim it
/// when its recorded owner is provably dead (SIGKILLed consumers never
/// unlink), refuse with a named error when the owner still lives, and
/// refuse to touch files that are not cgp rings at all. `tmp` files are
/// reclaimed even with an unreadable header — a half-written header in
/// a `.tmp` of our own naming scheme is exactly the crash artifact this
/// exists for.
fn reclaim_stale(path: &Path, is_tmp: bool, who: &str) -> FilterResult<()> {
    let err = |m: String| FilterError::new(who.to_string(), m);
    match ring_owner_pid(path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(err(format!("inspect {}: {e}", path.display()))),
        Ok(Some(pid)) if sys::process_alive(pid) => Err(err(format!(
            "shm ring {} already exists and its owner (pid {pid}) is still alive",
            path.display()
        ))),
        Ok(None) if !is_tmp => Err(err(format!(
            "{} already exists and is not a cgp shm ring; refusing to reclaim it",
            path.display()
        ))),
        Ok(_) => std::fs::remove_file(path)
            .or_else(|e| {
                if e.kind() == std::io::ErrorKind::NotFound {
                    Ok(())
                } else {
                    Err(e)
                }
            })
            .map_err(|e| err(format!("reclaim stale {}: {e}", path.display()))),
    }
}

/// Remove the ring files (and stray tmps) of a dead worker's ingress at
/// `base`, so the supervisor can respawn it on a fresh base without
/// leaking `/dev/shm` entries. Returns how many files were removed.
/// Files whose recorded owner is still alive are left alone.
pub fn remove_ring_files(base: &str, producers: usize) -> usize {
    let mut removed = 0;
    for p in 0..producers {
        let path = ring_path(base, p as u32);
        for candidate in [path.with_extension("tmp"), path] {
            if matches!(ring_owner_pid(&candidate), Ok(Some(pid)) if !sys::process_alive(pid))
                && std::fs::remove_file(&candidate).is_ok()
            {
                removed += 1;
            }
        }
    }
    removed
}

/// Create one ring file at `path` (via a temp file and an atomic
/// rename, so an attaching producer never observes a half-written
/// header) and map it. Consumer side. Stale leftovers from a crashed
/// prior owner are reclaimed first.
fn create_ring(path: &Path, capacity: usize, who: &str) -> FilterResult<Map> {
    let err = |m: String| FilterError::new(who.to_string(), m);
    if !capacity.is_power_of_two() || capacity < MIN_CAPACITY {
        return Err(err(format!(
            "shm capacity {capacity} must be a power of two >= {MIN_CAPACITY}"
        )));
    }
    let tmp = path.with_extension("tmp");
    reclaim_stale(&tmp, true, who)?;
    reclaim_stale(path, false, who)?;
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&tmp)
        .map_err(|e| err(format!("create {}: {e}", tmp.display())))?;
    file.set_len((HEADER_LEN + capacity) as u64)
        .map_err(|e| err(format!("size {}: {e}", tmp.display())))?;
    let mut header = [0u8; 24];
    header[0..4].copy_from_slice(&SHM_MAGIC);
    header[4..6].copy_from_slice(&SHM_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&(capacity as u64).to_le_bytes());
    header[OWNER_PID_AT..OWNER_PID_AT + 8].copy_from_slice(&sys::own_pid().to_le_bytes());
    {
        use std::io::Write;
        (&file)
            .write_all(&header)
            .map_err(|e| err(format!("init {}: {e}", tmp.display())))?;
    }
    let ptr = sys::map_shared(&file, HEADER_LEN + capacity)
        .map_err(|e| err(format!("mmap {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        sys::unmap(ptr, HEADER_LEN + capacity);
        err(format!("publish {}: {e}", path.display()))
    })?;
    Ok(Map {
        ptr,
        len: HEADER_LEN + capacity,
        cap: capacity as u64,
        _file: file,
    })
}

/// Open and validate an existing ring file. Producer side; retries
/// until the consumer's atomic rename lands (bounded by
/// [`ATTACH_BUDGET`]).
fn attach_ring(path: &Path, control: Option<&Arc<RunControl>>, who: &str) -> FilterResult<Map> {
    let err = |m: String| FilterError::new(who.to_string(), m);
    let start = Instant::now();
    let file = loop {
        if control.is_some_and(|c| c.is_cancelled()) {
            return Err(FilterError::cancelled(
                who.to_string(),
                "run cancelled while attaching to shm ring",
            ));
        }
        match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => break f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if start.elapsed() >= ATTACH_BUDGET {
                    return Err(err(format!(
                        "shm ring {} did not appear within {ATTACH_BUDGET:?}",
                        path.display()
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(err(format!("open {}: {e}", path.display()))),
        }
    };
    let file_len = file
        .metadata()
        .map_err(|e| err(format!("stat {}: {e}", path.display())))?
        .len() as usize;
    if file_len < HEADER_LEN + MIN_CAPACITY {
        return Err(FilterError::malformed(
            who.to_string(),
            format!(
                "shm ring {} is truncated ({file_len} bytes)",
                path.display()
            ),
        ));
    }
    let ptr = sys::map_shared(&file, file_len)
        .map_err(|e| err(format!("mmap {}: {e}", path.display())))?;
    let header = unsafe { std::slice::from_raw_parts(ptr, 16) };
    let check = (|| -> FilterResult<u64> {
        if header[0..4] != SHM_MAGIC {
            return Err(FilterError::malformed(
                who.to_string(),
                format!(
                    "bad shm magic {:02x?} (expected {SHM_MAGIC:02x?})",
                    &header[0..4]
                ),
            ));
        }
        let version = read_header_u16(header, 4);
        if version != SHM_VERSION {
            return Err(FilterError::malformed(
                who.to_string(),
                format!("shm layout version {version} (expected {SHM_VERSION})"),
            ));
        }
        let cap = read_header_u64(header, 8);
        if !cap.is_power_of_two() || cap as usize + HEADER_LEN != file_len {
            return Err(FilterError::malformed(
                who.to_string(),
                format!("shm capacity {cap} inconsistent with file size {file_len}"),
            ));
        }
        Ok(cap)
    })();
    let cap = match check {
        Ok(c) => c,
        Err(e) => {
            sys::unmap(ptr, file_len);
            return Err(e);
        }
    };
    Ok(Map {
        ptr,
        len: file_len,
        cap,
        _file: file,
    })
}

/// Producer half of one ring: frame writer over the byte pipe.
pub struct ShmSender {
    map: Map,
    control: Option<Arc<RunControl>>,
    who: String,
    resume: u64,
}

impl ShmSender {
    /// Attach to the ring file at `path` (created by the consumer).
    ///
    /// When the ring has seen a producer before (its `producer_pid` slot
    /// is non-zero — this attach is a respawned worker rejoining a
    /// surviving consumer), the attach runs the ring-reset protocol:
    /// request a drain, wait for the consumer's ack, and pick up the
    /// consumer's resume watermark so already-delivered packets can be
    /// suppressed at the source ([`Self::resume_seq`]).
    pub fn attach(
        path: &Path,
        control: Option<Arc<RunControl>>,
        who: String,
    ) -> FilterResult<Self> {
        let map = attach_ring(path, control.as_ref(), &who)?;
        let prior = map.producer_pid().swap(sys::own_pid(), Ordering::AcqRel);
        let mut resume = 0;
        if prior != 0 {
            let req = map.reset_req().fetch_add(1, Ordering::AcqRel) + 1;
            let start = Instant::now();
            let mut backoff = Backoff::new();
            while map.reset_ack().load(Ordering::Acquire) < req {
                if control.as_ref().is_some_and(|c| c.is_cancelled()) {
                    return Err(FilterError::cancelled(
                        who.clone(),
                        "run cancelled while waiting for ring reset",
                    ));
                }
                if map.consumer_closed() {
                    return Err(FilterError::new(
                        who.clone(),
                        "consumer closed the ring during the reset handshake",
                    ));
                }
                if start.elapsed() >= ATTACH_BUDGET {
                    return Err(FilterError::stalled(
                        who.clone(),
                        format!(
                            "consumer did not ack the ring reset within {ATTACH_BUDGET:?} \
                             (unsupervised consumer, or its serve loop already returned?)"
                        ),
                    ));
                }
                backoff.pause();
            }
            resume = map.resume().load(Ordering::Acquire);
        }
        Ok(ShmSender {
            map,
            control,
            who,
            resume,
        })
    }

    /// First sequence number the consumer still needs: non-zero exactly
    /// when this attach was a rejoin that found delivered prefix state.
    pub fn resume_seq(&self) -> u64 {
        self.resume
    }

    fn cancelled(&self) -> Option<FilterError> {
        self.control
            .as_ref()
            .filter(|c| c.is_cancelled())
            .map(|_| FilterError::cancelled(self.who.clone(), "run cancelled during shm write"))
    }

    /// Stream `buf` into the ring, publishing incrementally so records
    /// larger than the ring flow through without deadlock.
    pub fn write_all(&mut self, mut buf: &[u8]) -> FilterResult<()> {
        let mut backoff = Backoff::new();
        while !buf.is_empty() {
            if let Some(e) = self.cancelled() {
                return Err(e);
            }
            if self.map.consumer_closed() {
                return Err(FilterError::new(
                    self.who.clone(),
                    "shm ring closed by consumer",
                ));
            }
            let head = self.map.head().load(Ordering::Acquire);
            let tail = self.map.tail().load(Ordering::Relaxed);
            let free = self.map.cap - tail.wrapping_sub(head);
            if free == 0 {
                backoff.pause();
                continue;
            }
            let n = (free as usize).min(buf.len());
            self.map.copy_in(tail, &buf[..n]);
            self.map
                .tail()
                .store(tail.wrapping_add(n as u64), Ordering::Release);
            buf = &buf[n..];
            backoff.reset();
        }
        Ok(())
    }

    /// Write one control frame.
    pub fn write_frame(&mut self, f: &Frame) -> FilterResult<()> {
        self.write_all(&encode_frame(f))
    }

    /// Write a data frame without an intermediate encode of the payload.
    pub fn write_data(&mut self, from: u32, seq: u64, payload: &[u8]) -> FilterResult<()> {
        if payload.len() > MAX_FRAME_PAYLOAD {
            return Err(FilterError::new(
                self.who.clone(),
                format!(
                    "packet of {} bytes exceeds the frame cap {MAX_FRAME_PAYLOAD}",
                    payload.len()
                ),
            ));
        }
        self.write_all(&encode_data_header(from, seq, payload.len()))?;
        self.write_all(payload)
    }
}

impl Drop for ShmSender {
    fn drop(&mut self) {
        // Published after any final tail store, so the reader observing
        // the flag re-loads tail and drains everything first.
        self.map.close(OFF_PRODUCER_CLOSED);
    }
}

/// What one `fill` call produced.
enum Filled {
    /// Buffer completely filled.
    Full,
    /// Producer closed at a record boundary before any byte (only when
    /// the caller allowed EOF).
    Eof,
    /// A rejoining producer requested a ring reset; any partial fill
    /// was abandoned and the ring drained. The caller must restart its
    /// frame parse from a clean boundary.
    Reset,
}

/// One result of [`ShmReceiver::read_frame_sup`].
#[derive(Debug, PartialEq, Eq)]
pub enum ShmRead {
    /// A complete frame.
    Frame(Frame),
    /// Producer closed at a frame boundary.
    Eof,
    /// A respawned producer re-attached and the ring was drained; expect
    /// a fresh `Hello` next.
    Reset,
}

/// Consumer half of one ring: frame reader over the byte pipe. Unlinks
/// the ring file on drop.
pub struct ShmReceiver {
    map: Map,
    control: Option<Arc<RunControl>>,
    who: String,
    path: PathBuf,
    /// `Some(deadline)` turns on supervised semantics: a dead producer
    /// parks the reader (awaiting a ring reset from its respawn) for at
    /// most this long instead of erroring immediately.
    supervised: Option<Duration>,
    parked_at: Option<Instant>,
    last_liveness: Option<Instant>,
}

/// How often a blocked supervised reader re-probes the producer pid.
const LIVENESS_EVERY: Duration = Duration::from_millis(50);

impl ShmReceiver {
    /// Create the ring file at `path` and take the consumer side.
    pub fn create(
        path: &Path,
        capacity: usize,
        control: Option<Arc<RunControl>>,
        who: String,
    ) -> FilterResult<Self> {
        let map = create_ring(path, capacity, &who)?;
        Ok(ShmReceiver {
            map,
            control,
            who,
            path: path.to_path_buf(),
            supervised: None,
            parked_at: None,
            last_liveness: None,
        })
    }

    /// Enable supervised semantics: a gone producer (closed flag, or a
    /// recorded pid that no longer exists) parks the reader for up to
    /// `reconnect`, waiting for the supervisor to respawn it and the
    /// respawn to run the reset handshake.
    pub fn set_supervised(&mut self, reconnect: Duration) {
        self.supervised = Some(reconnect);
    }

    /// Publish the next sequence number this consumer expects, for a
    /// future rejoining producer to resume from. Called by the serve
    /// loop after every accepted frame.
    pub fn publish_resume(&self, next_seq: u64) {
        self.map.resume().store(next_seq, Ordering::Release);
    }

    fn cancelled(&self) -> Option<FilterError> {
        self.control
            .as_ref()
            .filter(|c| c.is_cancelled())
            .map(|_| FilterError::cancelled(self.who.clone(), "run cancelled during shm read"))
    }

    /// The producer is gone when it set its closed flag, or when it
    /// recorded a pid that no longer exists (SIGKILL runs no drop code,
    /// so the flag alone cannot be trusted). The pid probe is a syscall,
    /// so it is rate-limited to [`LIVENESS_EVERY`].
    fn producer_gone(&mut self) -> bool {
        if self.map.producer_closed() {
            return true;
        }
        if self
            .last_liveness
            .is_some_and(|at| at.elapsed() < LIVENESS_EVERY)
        {
            return false;
        }
        self.last_liveness = Some(Instant::now());
        let pid = self.map.producer_pid().load(Ordering::Acquire);
        pid != 0 && !sys::process_alive(pid)
    }

    /// Handle a pending reset request if one arrived: drain whatever the
    /// dead producer left behind (possibly a truncated frame), clear its
    /// closed flag, and ack — only after the ack does the rejoining
    /// producer start writing.
    fn take_reset(&mut self) -> bool {
        let req = self.map.reset_req().load(Ordering::Acquire);
        if req == self.map.reset_ack().load(Ordering::Relaxed) {
            return false;
        }
        let tail = self.map.tail().load(Ordering::Acquire);
        self.map.head().store(tail, Ordering::Release);
        self.map
            .atomic_u32(OFF_PRODUCER_CLOSED)
            .store(0, Ordering::Release);
        self.parked_at = None;
        self.map.reset_ack().store(req, Ordering::Release);
        true
    }

    /// Fill `buf` completely. [`Filled::Eof`] means the producer closed
    /// at a record boundary (`allow_eof` and no byte read yet); a close
    /// mid-frame is malformed — exactly the socket reader's contract —
    /// unless supervised, where a gone producer parks the reader until
    /// its respawn resets the ring or the reconnect deadline passes.
    fn fill(&mut self, buf: &mut [u8], allow_eof: bool) -> FilterResult<Filled> {
        let mut off = 0;
        let mut backoff = Backoff::new();
        while off < buf.len() {
            if let Some(e) = self.cancelled() {
                return Err(e);
            }
            let head = self.map.head().load(Ordering::Relaxed);
            let tail = self.map.tail().load(Ordering::Acquire);
            let used = tail.wrapping_sub(head);
            if used == 0 {
                if self.take_reset() {
                    return Ok(Filled::Reset);
                }
                if self.producer_gone() {
                    // The close flag trails the final tail store:
                    // re-check before declaring EOF.
                    if self.map.tail().load(Ordering::Acquire) != tail {
                        continue;
                    }
                    if let Some(deadline) = self.supervised {
                        let parked = *self.parked_at.get_or_insert_with(Instant::now);
                        if parked.elapsed() > deadline {
                            return Err(FilterError::stalled(
                                self.who.clone(),
                                format!(
                                    "producer gone and no respawn reset the ring within \
                                     {deadline:?} (worker presumed dead; restart budget \
                                     exhausted?)"
                                ),
                            ));
                        }
                        std::thread::sleep(SLEEP);
                        continue;
                    }
                    if off == 0 && allow_eof {
                        return Ok(Filled::Eof);
                    }
                    return Err(FilterError::malformed(
                        self.who.clone(),
                        "shm ring closed mid-frame",
                    ));
                }
                backoff.pause();
                continue;
            }
            self.parked_at = None;
            let n = (used as usize).min(buf.len() - off);
            self.map.copy_out(head, &mut buf[off..off + n]);
            self.map
                .head()
                .store(head.wrapping_add(n as u64), Ordering::Release);
            off += n;
            backoff.reset();
        }
        Ok(Filled::Full)
    }

    /// Read one frame, surfacing supervised ring resets to the caller.
    /// Shares the header-layout tables and [`decode_frame`] with the
    /// socket path, so both transports parse one format.
    pub fn read_frame_sup(&mut self) -> FilterResult<ShmRead> {
        let mut tag = [0u8; 1];
        match self.fill(&mut tag, true)? {
            Filled::Eof => return Ok(ShmRead::Eof),
            Filled::Reset => return Ok(ShmRead::Reset),
            Filled::Full => {}
        }
        let Some(header_len) = frame_header_len(tag[0]) else {
            return Err(FilterError::malformed(
                self.who.clone(),
                format!("unknown frame tag {}", tag[0]),
            ));
        };
        let mut frame = vec![tag[0]; 1];
        frame.resize(1 + header_len, 0);
        if matches!(self.fill(&mut frame[1..], false)?, Filled::Reset) {
            return Ok(ShmRead::Reset);
        }
        if let Some(at) = frame_len_field_at(tag[0]) {
            let len = u32::from_le_bytes(frame[at..at + 4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_PAYLOAD {
                return Err(FilterError::malformed(
                    self.who.clone(),
                    format!("frame declares {len} bytes (cap {MAX_FRAME_PAYLOAD})"),
                ));
            }
            let at = frame.len();
            frame.resize(at + len, 0);
            if matches!(self.fill(&mut frame[at..], false)?, Filled::Reset) {
                return Ok(ShmRead::Reset);
            }
        }
        decode_frame(&frame)
            .map(|(f, _)| ShmRead::Frame(f))
            .map_err(|e| FilterError {
                filter: self.who.clone(),
                ..e
            })
    }

    /// Read one frame; `Ok(None)` when the producer closed at a frame
    /// boundary. A ring reset is an error on this path — only supervised
    /// serve loops expect rejoins.
    pub fn read_frame(&mut self) -> FilterResult<Option<Frame>> {
        match self.read_frame_sup()? {
            ShmRead::Frame(f) => Ok(Some(f)),
            ShmRead::Eof => Ok(None),
            ShmRead::Reset => Err(FilterError::malformed(
                self.who.clone(),
                "unexpected ring reset (second producer attached to an unsupervised ring)",
            )),
        }
    }
}

impl Drop for ShmReceiver {
    fn drop(&mut self) {
        self.map.close(OFF_CONSUMER_CLOSED);
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Ring file path for producer copy `p` of the link at `base`.
pub fn ring_path(base: &str, producer: u32) -> PathBuf {
    PathBuf::from(format!("{base}.{producer}"))
}

/// Consumer side of one logical link over shared memory: one ring file
/// per upstream producer copy, created **eagerly** so the worker can
/// announce the base path before any producer attaches.
pub struct ShmIngress {
    base: String,
    receivers: Vec<ShmReceiver>,
}

impl std::fmt::Debug for ShmIngress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmIngress")
            .field("base", &self.base)
            .field("producers", &self.receivers.len())
            .finish()
    }
}

impl ShmIngress {
    /// Create `producers` ring files at `<base>.<p>`.
    pub fn create(
        base: &str,
        producers: usize,
        capacity: usize,
        control: Option<Arc<RunControl>>,
    ) -> FilterResult<Self> {
        let mut receivers = Vec::with_capacity(producers);
        for p in 0..producers {
            receivers.push(ShmReceiver::create(
                &ring_path(base, p as u32),
                capacity,
                control.clone(),
                format!("shm.ingress[{p}]"),
            )?);
        }
        Ok(ShmIngress {
            base: base.to_string(),
            receivers,
        })
    }

    /// The base path producers derive their ring paths from.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// Bridge every producer's frames onto the local `writers` (writer
    /// `p` plays producer copy `p`, preserving in-process round-robin
    /// routing). Returns when every producer sent `End`, or with the
    /// first error after cancelling the run. Unsupervised: a producer
    /// closing its ring before `End` is an error.
    pub fn serve_probed(
        self,
        link: u32,
        writers: Vec<StreamWriter>,
        control: Option<Arc<RunControl>>,
        probe: Option<Arc<LinkProbe>>,
    ) -> FilterResult<NetLinkStats> {
        self.serve_tuned(link, writers, control, probe, NetTuning::default())
    }

    /// [`Self::serve_probed`] with explicit [`NetTuning`]. Supervised
    /// mode arms the ring-reset protocol: a producer that dies mid-
    /// stream parks its ring reader until the supervisor's respawn
    /// re-attaches, drains the truncated tail, re-Hellos, and resumes
    /// from the published watermark (duplicates deduped by the feeder
    /// either way). Ring files stay alive until every producer ended,
    /// so a rejoin can target any ring of the link. Heartbeats do not
    /// apply here — liveness is pid-based.
    pub fn serve_tuned(
        self,
        link: u32,
        writers: Vec<StreamWriter>,
        control: Option<Arc<RunControl>>,
        probe: Option<Arc<LinkProbe>>,
        tuning: NetTuning,
    ) -> FilterResult<NetLinkStats> {
        assert_eq!(
            writers.len(),
            self.receivers.len(),
            "one local writer per producer ring"
        );
        let frames = AtomicU64::new(0);
        let bytes = AtomicU64::new(0);
        let reconnects = AtomicU64::new(0);
        let errors: Mutex<Vec<FilterError>> = Mutex::new(Vec::new());
        let (frames, bytes, reconnects, errors) = (&frames, &bytes, &reconnects, &errors);
        let control = &control;
        let fail = |e: FilterError| {
            if let Some(c) = control {
                c.cancel(format!("shm ingress link {link} failed: {e}"));
            }
            plock(errors).push(e);
        };
        let fail = &fail;
        let mut deduped = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (p, (mut rx, writer)) in self.receivers.into_iter().zip(writers).enumerate() {
                let probe = probe.clone();
                handles.push(scope.spawn(move || {
                    if tuning.supervised {
                        rx.set_supervised(tuning.reconnect);
                    }
                    let mut feeder = IngressFeeder::new(writer);
                    let watermark = feeder.watermark();
                    let res = (|| -> FilterResult<()> {
                        let mut expect_hello = true;
                        let mut connected = false;
                        loop {
                            match rx.read_frame_sup()? {
                                ShmRead::Reset => {
                                    if connected {
                                        reconnects.fetch_add(1, Ordering::Relaxed);
                                    }
                                    expect_hello = true;
                                }
                                ShmRead::Frame(Frame::Hello {
                                    link: got_link,
                                    producer,
                                }) if expect_hello => {
                                    if got_link != link || producer as usize != p {
                                        return Err(FilterError::malformed(
                                            format!("shm.ingress[{p}]"),
                                            format!(
                                                "hello for link {got_link} producer {producer} \
                                                 arrived at link {link} producer {p}"
                                            ),
                                        ));
                                    }
                                    expect_hello = false;
                                    connected = true;
                                }
                                _ if expect_hello => {
                                    return Err(FilterError::malformed(
                                        format!("shm.ingress[{p}]"),
                                        "expected Hello first on this ring",
                                    ));
                                }
                                ShmRead::Frame(Frame::Data { from, seq, payload }) => {
                                    if from as usize != p {
                                        return Err(FilterError::malformed(
                                            format!("shm.ingress[{p}]"),
                                            format!("frame from producer {from} on ring {p}"),
                                        ));
                                    }
                                    let n = payload.len() as u64;
                                    if feeder.feed(seq, Buffer::from_vec(payload))? {
                                        frames.fetch_add(1, Ordering::Relaxed);
                                        bytes.fetch_add(n, Ordering::Relaxed);
                                        if let Some(pr) = &probe {
                                            pr.count_frame(n);
                                        }
                                    } else if let Some(pr) = &probe {
                                        pr.deduped.fetch_add(1, Ordering::Relaxed);
                                    }
                                    rx.publish_resume(watermark.load(Ordering::Acquire));
                                }
                                ShmRead::Frame(Frame::End { from }) => {
                                    if from as usize != p {
                                        return Err(FilterError::malformed(
                                            format!("shm.ingress[{p}]"),
                                            format!("End from producer {from} on ring {p}"),
                                        ));
                                    }
                                    feeder.end();
                                    return Ok(());
                                }
                                // A ring closing before End means the
                                // producer died (supervised readers park
                                // inside read_frame_sup instead).
                                ShmRead::Frame(Frame::Close) | ShmRead::Eof => {
                                    return Err(FilterError::malformed(
                                        format!("shm.ingress[{p}]"),
                                        "producer closed its ring before End",
                                    ));
                                }
                                ShmRead::Frame(f) => {
                                    return Err(FilterError::malformed(
                                        format!("shm.ingress[{p}]"),
                                        format!("unexpected frame mid-stream: {f:?}"),
                                    ));
                                }
                            }
                        }
                    })();
                    if let Err(e) = res {
                        fail(e);
                    }
                    if !feeder.ended() {
                        // Error/cancel path: unblock downstream readers.
                        feeder.end();
                    }
                    // Hand the receiver back so ring files survive until
                    // the whole link completed: a late rejoin must find
                    // its ring on disk.
                    (feeder.deduped(), rx)
                }));
            }
            let mut receivers = Vec::new();
            for h in handles {
                if let Ok((d, rx)) = h.join() {
                    deduped += d;
                    receivers.push(rx);
                }
            }
        });
        if let Some(e) = plock(errors).first() {
            return Err(e.clone());
        }
        Ok(NetLinkStats {
            frames: frames.load(Ordering::Relaxed),
            bytes: bytes.load(Ordering::Relaxed),
            deduped,
            reconnects: reconnects.load(Ordering::Relaxed),
            ..Default::default()
        })
    }
}

/// Drain one local 1→1 stream behind producer copy `producer` into the
/// ring at `<base>.<producer>` — the shm analogue of
/// [`crate::net::egress_pump_probed`], with the same per-packet ack
/// commit so producer-side replay buffers stay bounded. When the attach
/// was a rejoin (respawned worker reconnecting to a surviving
/// consumer), packets below the consumer's resume watermark are
/// suppressed at the source, mirroring the TCP `HelloAck` path.
pub fn shm_egress_pump_probed(
    mut reader: StreamReader,
    base: &str,
    link: u32,
    producer: u32,
    control: Option<Arc<RunControl>>,
    probe: Option<Arc<LinkProbe>>,
) -> FilterResult<NetLinkStats> {
    let who = format!("shm.egress[{producer}]");
    let mut tx = ShmSender::attach(&ring_path(base, producer), control.clone(), who.clone())?;
    tx.write_frame(&Frame::Hello { link, producer })?;
    let resume = tx.resume_seq();
    let mut seq = 0u64;
    let (mut frames, mut bytes, mut deduped) = (0u64, 0u64, 0u64);
    while let Some(buf) = reader.read() {
        if seq >= resume {
            tx.write_data(producer, seq, buf.as_slice())?;
            frames += 1;
            bytes += buf.len() as u64;
            if let Some(p) = &probe {
                p.frames.fetch_add(1, Ordering::Relaxed);
                p.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
            }
        } else {
            deduped += 1;
            if let Some(p) = &probe {
                p.deduped.fetch_add(1, Ordering::Relaxed);
            }
        }
        seq += 1;
        reader.commit_acks();
    }
    if control.as_ref().is_some_and(|c| c.is_cancelled()) {
        return Err(FilterError::cancelled(who, "run cancelled during transmit"));
    }
    tx.write_frame(&Frame::End { from: producer })?;
    tx.write_frame(&Frame::Close)?;
    Ok(NetLinkStats {
        frames,
        bytes,
        deduped,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{logical_stream, Distribution};
    use std::sync::atomic::AtomicU32 as TestCounter;

    static NEXT: TestCounter = TestCounter::new(0);

    fn test_base(tag: &str) -> String {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        shm_dir()
            .join(format!("cgp-shm-test-{}-{tag}-{n}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn frames_roundtrip_through_the_ring() {
        let path = PathBuf::from(format!("{}.0", test_base("roundtrip")));
        let mut rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        let mut tx = ShmSender::attach(&path, None, "tx".into()).unwrap();
        let sent = vec![
            Frame::Hello {
                link: 3,
                producer: 0,
            },
            Frame::Data {
                from: 0,
                seq: 0,
                payload: vec![7; 100],
            },
            Frame::End { from: 0 },
            Frame::Close,
        ];
        let expect = sent.clone();
        let writer = std::thread::spawn(move || {
            for f in &sent {
                tx.write_frame(f).unwrap();
            }
        });
        for f in &expect {
            assert_eq!(rx.read_frame().unwrap().as_ref(), Some(f));
        }
        writer.join().unwrap();
        drop(rx);
        assert!(!path.exists(), "receiver unlinks the ring file on drop");
    }

    #[test]
    fn frame_larger_than_the_ring_streams_through() {
        let path = PathBuf::from(format!("{}.0", test_base("large")));
        let mut rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        let mut tx = ShmSender::attach(&path, None, "tx".into()).unwrap();
        // 4× the ring: the writer must publish incrementally while the
        // reader concurrently drains.
        let payload: Vec<u8> = (0..4 * MIN_CAPACITY).map(|i| (i % 251) as u8).collect();
        let want = payload.clone();
        let writer = std::thread::spawn(move || {
            tx.write_data(0, 0, &payload).unwrap();
        });
        match rx.read_frame().unwrap() {
            Some(Frame::Data { from, seq, payload }) => {
                assert_eq!((from, seq), (0, 0));
                assert_eq!(payload, want);
            }
            f => panic!("expected Data, got {f:?}"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn producer_drop_is_clean_eof_at_boundary_and_malformed_mid_frame() {
        let path = PathBuf::from(format!("{}.0", test_base("eof")));
        let mut rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        let mut tx = ShmSender::attach(&path, None, "tx".into()).unwrap();
        tx.write_frame(&Frame::End { from: 0 }).unwrap();
        drop(tx);
        assert_eq!(rx.read_frame().unwrap(), Some(Frame::End { from: 0 }));
        assert_eq!(rx.read_frame().unwrap(), None, "close at boundary is EOF");

        let path = PathBuf::from(format!("{}.0", test_base("midframe")));
        let mut rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        let mut tx = ShmSender::attach(&path, None, "tx".into()).unwrap();
        // A data header promising bytes that never arrive.
        tx.write_all(&encode_data_header(0, 0, 64)).unwrap();
        drop(tx);
        let err = rx.read_frame().unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Malformed);
        assert!(err.message.contains("mid-frame"), "{err}");
    }

    #[test]
    fn attach_validates_magic_and_version() {
        let base = test_base("validate");
        let path = PathBuf::from(format!("{base}.0"));
        let _rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        // Corrupt a copy of the file rather than the live mapping.
        let bogus = PathBuf::from(format!("{base}.bogus"));
        std::fs::copy(&path, &bogus).unwrap();
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(&bogus).unwrap();
            f.seek(SeekFrom::Start(0)).unwrap();
            f.write_all(b"XXXX").unwrap();
        }
        let err = match ShmSender::attach(&bogus, None, "tx".into()) {
            Err(e) => e,
            Ok(_) => panic!("attach accepted a corrupt ring"),
        };
        assert_eq!(err.kind, crate::error::ErrorKind::Malformed);
        assert!(err.message.contains("magic"), "{err}");
        std::fs::remove_file(&bogus).unwrap();
    }

    #[test]
    fn cancel_unblocks_a_writer_stuck_on_a_full_ring() {
        let path = PathBuf::from(format!("{}.0", test_base("cancel")));
        let control = Arc::new(RunControl::new());
        let _rx = ShmReceiver::create(&path, MIN_CAPACITY, Some(Arc::clone(&control)), "rx".into())
            .unwrap();
        let mut tx = ShmSender::attach(&path, Some(Arc::clone(&control)), "tx".into()).unwrap();
        let writer = std::thread::spawn(move || {
            // Nobody drains: this blocks once the ring fills, and must
            // return a Cancelled error when the run is cancelled.
            tx.write_data(0, 0, &vec![0u8; 4 * MIN_CAPACITY])
        });
        std::thread::sleep(Duration::from_millis(50));
        control.cancel("test");
        let err = writer.join().unwrap().unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Cancelled);
    }

    fn write_fake_ring(path: &Path, owner: u64) {
        let mut file = vec![0u8; HEADER_LEN + MIN_CAPACITY];
        file[0..4].copy_from_slice(&SHM_MAGIC);
        file[4..6].copy_from_slice(&SHM_VERSION.to_le_bytes());
        file[8..16].copy_from_slice(&(MIN_CAPACITY as u64).to_le_bytes());
        file[OWNER_PID_AT..OWNER_PID_AT + 8].copy_from_slice(&owner.to_le_bytes());
        std::fs::write(path, &file).unwrap();
    }

    /// A pid that provably no longer exists: a reaped child's.
    fn dead_pid() -> u64 {
        let mut child = std::process::Command::new("true")
            .spawn()
            .expect("spawn true");
        let pid = child.id() as u64;
        child.wait().unwrap();
        pid
    }

    #[test]
    fn stale_ring_with_dead_owner_is_reclaimed() {
        let base = test_base("reclaim");
        let path = PathBuf::from(format!("{base}.0"));
        write_fake_ring(&path, dead_pid());
        // A half-written tmp from the same crash is reclaimed too.
        std::fs::write(path.with_extension("tmp"), b"CGPS\x02").unwrap();
        let rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into())
            .expect("dead-owner leftovers must be reclaimed");
        drop(rx);

        // remove_ring_files gives the supervisor the same reclaim.
        write_fake_ring(&path, dead_pid());
        assert_eq!(remove_ring_files(&base, 1), 1);
        assert!(!path.exists());
    }

    #[test]
    fn ring_owned_by_a_live_process_is_refused_with_a_named_error() {
        let base = test_base("live-owner");
        let path = PathBuf::from(format!("{base}.0"));
        write_fake_ring(&path, std::process::id() as u64);
        let err = match ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()) {
            Err(e) => e,
            Ok(_) => panic!("created over a live owner's ring"),
        };
        assert!(err.message.contains("still alive"), "{err}");
        assert_eq!(remove_ring_files(&base, 1), 0, "live rings are kept");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_in_the_ring_slot_is_not_reclaimed() {
        let base = test_base("foreign");
        let path = PathBuf::from(format!("{base}.0"));
        std::fs::write(&path, b"someone else's data").unwrap();
        let err = match ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()) {
            Err(e) => e,
            Ok(_) => panic!("clobbered a foreign file"),
        };
        assert!(err.message.contains("not a cgp shm ring"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn supervised_ring_reset_resumes_from_the_published_watermark() {
        let base = test_base("reset");
        let ingress = ShmIngress::create(&base, 1, MIN_CAPACITY, None).unwrap();
        let (mut ws, mut rs) = logical_stream(1, 1, 16, Distribution::RoundRobin);
        let mut r = rs.remove(0);
        let reader = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(b) = r.read() {
                seen.push(b.as_slice().to_vec());
            }
            seen
        });
        let tuning = NetTuning {
            supervised: true,
            reconnect: Duration::from_secs(5),
            ..Default::default()
        };
        let writers = vec![ws.remove(0)];
        let serve = std::thread::spawn(move || ingress.serve_tuned(7, writers, None, None, tuning));

        // First incarnation: Hello + 5 packets, then dies without End
        // (the drop sets producer_closed, standing in for a SIGKILL that
        // the pid-liveness probe would catch).
        let ring = ring_path(&base, 0);
        let mut tx = ShmSender::attach(&ring, None, "tx1".into()).unwrap();
        tx.write_frame(&Frame::Hello {
            link: 7,
            producer: 0,
        })
        .unwrap();
        for seq in 0..5u64 {
            tx.write_data(0, seq, &[seq as u8]).unwrap();
        }
        drop(tx);
        std::thread::sleep(Duration::from_millis(20));

        // Respawn: the attach runs the reset handshake and learns the
        // consumer's watermark, so delivery resumes exactly at seq 5.
        let mut tx = ShmSender::attach(&ring, None, "tx2".into()).unwrap();
        assert_eq!(tx.resume_seq(), 5, "consumer published its watermark");
        tx.write_frame(&Frame::Hello {
            link: 7,
            producer: 0,
        })
        .unwrap();
        for seq in 5..10u64 {
            tx.write_data(0, seq, &[seq as u8]).unwrap();
        }
        tx.write_frame(&Frame::End { from: 0 }).unwrap();
        tx.write_frame(&Frame::Close).unwrap();
        drop(tx);

        let stats = serve.join().unwrap().unwrap();
        assert_eq!(stats.frames, 10);
        assert_eq!(stats.reconnects, 1, "the rejoin is visible in stats");
        let seen = reader.join().unwrap();
        let want: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        assert_eq!(seen, want, "no loss, no duplication across the reset");
    }

    #[test]
    fn reset_on_an_unsupervised_ring_is_a_named_error() {
        let path = PathBuf::from(format!("{}.0", test_base("unsup-reset")));
        let mut rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        let tx1 = ShmSender::attach(&path, None, "tx1".into()).unwrap();
        // Second attach on a ring that saw a producer: requests a reset.
        let p = path.clone();
        let attach2 = std::thread::spawn(move || ShmSender::attach(&p, None, "tx2".into()));
        let err = rx.read_frame().unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Malformed);
        assert!(err.message.contains("ring reset"), "{err}");
        drop(tx1);
        // The reader acked the drain before erroring, so the second
        // attach completes rather than hanging on its budget.
        attach2.join().unwrap().unwrap();
    }

    #[test]
    fn ingress_and_egress_bridge_local_streams_byte_identically() {
        let base = test_base("bridge");
        let producers = 2usize;
        let ingress = ShmIngress::create(&base, producers, MIN_CAPACITY, None).unwrap();

        // Producer side: two local 1→1 streams, one egress pump each.
        let packets_per_producer = 200usize;
        let mut pumps = Vec::new();
        for p in 0..producers {
            let (mut ws, mut rs) = logical_stream(1, 1, 16, Distribution::RoundRobin);
            let (w, r) = (ws.remove(0), rs.remove(0));
            let base = base.clone();
            pumps.push(std::thread::spawn(move || {
                let feeder = std::thread::spawn(move || {
                    let mut w = w;
                    for i in 0..packets_per_producer {
                        w.write(Buffer::from_vec(vec![p as u8, (i % 256) as u8]))
                            .unwrap();
                    }
                    w.close();
                });
                let stats = shm_egress_pump_probed(r, &base, 7, p as u32, None, None).unwrap();
                feeder.join().unwrap();
                stats
            }));
        }

        // Consumer side: a 2→1 local stream fed by the ingress.
        let (ws, mut rs) = logical_stream(producers, 1, 16, Distribution::RoundRobin);
        let reader = std::thread::spawn(move || {
            let mut seen = Vec::new();
            let mut r = rs.remove(0);
            while let Some(b) = r.read() {
                seen.push(b.as_slice().to_vec());
            }
            seen
        });
        let stats = ingress.serve_probed(7, ws, None, None).unwrap();
        assert_eq!(stats.frames, (producers * packets_per_producer) as u64);
        let mut per_producer = vec![Vec::new(); producers];
        for b in reader.join().unwrap() {
            per_producer[b[0] as usize].push(b[1]);
        }
        for (p, seen) in per_producer.iter().enumerate() {
            let want: Vec<u8> = (0..packets_per_producer).map(|i| (i % 256) as u8).collect();
            assert_eq!(seen, &want, "producer {p} FIFO preserved");
        }
        for pump in pumps {
            let stats = pump.join().unwrap();
            assert_eq!(stats.frames, packets_per_producer as u64);
        }
    }
}
