//! Shared-memory transport for same-host logical streams.
//!
//! When both endpoints of a distributed link live on the same host,
//! pushing every packet through the loopback TCP stack costs two
//! syscalls plus a kernel copy per frame. This module replaces the
//! socket with a **file-backed mmap ring**: the consumer creates a
//! file under the shm directory (`/dev/shm` when present), maps it
//! `MAP_SHARED`, and publishes byte cursors through atomics in the
//! mapped header page. The producer maps the same file and the two
//! processes stream bytes through user-space memory — no syscalls on
//! the data path at all.
//!
//! ## What flows through the ring
//!
//! Exactly the TCP wire format ([`crate::net`]): the same length-
//! prefixed `Hello` / `Data` / `End` / `Close` frames, encoded by the
//! same helpers and re-parsed by the same hardened [`decode_frame`].
//! The ring is a plain byte pipe underneath — a frame larger than the
//! ring streams through incrementally, reader consuming while the
//! writer is still copying, so [`MAX_FRAME_PAYLOAD`] stays the only
//! payload cap.
//!
//! ## Layout and memory ordering
//!
//! ```text
//! offset 0    magic "CGPS", version u16, capacity u64   (written once,
//!                                       published by an atomic rename)
//! offset 64   head: AtomicU64   — bytes consumed  (reader-owned)
//! offset 128  tail: AtomicU64   — bytes produced  (writer-owned)
//! offset 192  producer_closed: AtomicU32
//! offset 256  consumer_closed: AtomicU32
//! offset 4096 data[capacity]    — ring, indexed by cursor & (cap-1)
//! ```
//!
//! Cursors grow monotonically; `tail - head` is the fill level. The
//! writer copies payload bytes first and then stores `tail` with
//! `Release`; the reader `Acquire`-loads `tail` before touching the
//! bytes (and symmetrically for `head` when freeing space). The
//! `producer_closed` flag is stored `Release` *after* the final `tail`
//! store, so a reader that observes the flag re-loads `tail` once more
//! and can never miss trailing bytes.
//!
//! ## Handshake and failure model
//!
//! The handshake is **one-way**: the producer writes `Hello` first and
//! there is no `HelloAck` — the consumer side always resumes from
//! sequence 0. Cross-process *reconnection* is therefore not supported
//! on this transport; links that need it (recovery across a worker
//! restart) stay on TCP, which the link selector enforces. Blocking
//! waits are spin-then-bounded-sleep polls (no cross-process condvars),
//! checking run cancellation and the peer's closed flag every lap, so a
//! dead peer or a cancelled run unwedges promptly. The consumer unlinks
//! the ring file on drop.

use crate::buffer::Buffer;
use crate::error::{FilterError, FilterResult};
use crate::fault::RunControl;
use crate::net::{
    decode_frame, encode_data_header, encode_frame, frame_header_len, frame_len_field_at, Frame,
    IngressFeeder, NetLinkStats, MAX_FRAME_PAYLOAD,
};
use crate::stream::{StreamReader, StreamWriter};
use crate::telemetry::LinkProbe;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Ring-file magic: first bytes of the mapped header.
pub const SHM_MAGIC: [u8; 4] = *b"CGPS";
/// Ring-layout version (checked when the producer attaches).
pub const SHM_VERSION: u16 = 1;
/// Default data-area size per link ring.
pub const DEFAULT_SHM_CAPACITY: usize = 4 * 1024 * 1024;
/// Listener-marker prefix for shared-memory endpoints: a worker that
/// serves its ingress over shm announces `shm:<base>` instead of a TCP
/// port, and producers dispatch on the same prefix.
pub const SHM_PREFIX: &str = "shm:";

/// Smallest accepted data area (one header page's worth).
const MIN_CAPACITY: usize = 4096;
/// Header page reserved ahead of the data area.
const HEADER_LEN: usize = 4096;
const OFF_HEAD: usize = 64;
const OFF_TAIL: usize = 128;
const OFF_PRODUCER_CLOSED: usize = 192;
const OFF_CONSUMER_CLOSED: usize = 256;

/// Busy-spin laps before yielding (matches the in-process ring).
const SPINS: u32 = 128;
/// `yield_now` laps before sleeping.
const YIELDS: u32 = 16;
/// Bounded sleep once spinning gave up: the cross-process analogue of
/// parking, and the granularity at which a blocked side notices
/// cancellation or a dead peer.
const SLEEP: Duration = Duration::from_micros(100);
/// How long the producer waits for the consumer to publish the ring
/// file before giving up (the consumer creates it before announcing,
/// so this only covers slow filesystems and test races).
const ATTACH_BUDGET: Duration = Duration::from_secs(10);

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether this build supports the shm transport (mmap is required).
pub fn shm_supported() -> bool {
    cfg!(unix)
}

/// Directory for ring files: `/dev/shm` when it exists (memory-backed
/// tmpfs on Linux), the system temp directory otherwise.
pub fn shm_dir() -> PathBuf {
    let dev_shm = PathBuf::from("/dev/shm");
    if dev_shm.is_dir() {
        dev_shm
    } else {
        std::env::temp_dir()
    }
}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_SHARED: c_int = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_shared(file: &File, len: usize) -> std::io::Result<*mut u8> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(ptr.cast())
    }

    pub fn unmap(ptr: *mut u8, len: usize) {
        unsafe {
            munmap(ptr.cast(), len);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;

    pub fn map_shared(_file: &File, _len: usize) -> std::io::Result<*mut u8> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "shm transport requires mmap (unix)",
        ))
    }

    pub fn unmap(_ptr: *mut u8, _len: usize) {}
}

/// One mapped ring file. Owns the mapping; the file itself is unlinked
/// by the consumer side.
struct Map {
    ptr: *mut u8,
    len: usize,
    cap: u64,
    // Keeps the fd alive for the mapping's lifetime (not strictly
    // required by mmap semantics, but makes debugging via /proc easier).
    _file: File,
}

// The raw pointer targets a MAP_SHARED region whose cross-thread (and
// cross-process) accesses all go through the atomics below plus
// acquire/release-ordered byte copies.
unsafe impl Send for Map {}

impl Map {
    fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= HEADER_LEN && off % 8 == 0);
        unsafe { &*self.ptr.add(off).cast::<AtomicU64>() }
    }

    fn atomic_u32(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= HEADER_LEN && off % 4 == 0);
        unsafe { &*self.ptr.add(off).cast::<AtomicU32>() }
    }

    fn head(&self) -> &AtomicU64 {
        self.atomic_u64(OFF_HEAD)
    }

    fn tail(&self) -> &AtomicU64 {
        self.atomic_u64(OFF_TAIL)
    }

    fn producer_closed(&self) -> bool {
        self.atomic_u32(OFF_PRODUCER_CLOSED).load(Ordering::Acquire) != 0
    }

    fn consumer_closed(&self) -> bool {
        self.atomic_u32(OFF_CONSUMER_CLOSED).load(Ordering::Acquire) != 0
    }

    fn close(&self, off: usize) {
        self.atomic_u32(off).store(1, Ordering::Release);
    }

    fn data(&self) -> *mut u8 {
        unsafe { self.ptr.add(HEADER_LEN) }
    }

    /// Copy `src` into the ring starting at logical cursor `at`,
    /// wrapping across the capacity boundary.
    fn copy_in(&self, at: u64, src: &[u8]) {
        let mask = self.cap - 1;
        let at = (at & mask) as usize;
        let first = src.len().min(self.cap as usize - at);
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.data().add(at), first);
            std::ptr::copy_nonoverlapping(src.as_ptr().add(first), self.data(), src.len() - first);
        }
    }

    /// Copy out of the ring starting at logical cursor `at` into `dst`.
    fn copy_out(&self, at: u64, dst: &mut [u8]) {
        let mask = self.cap - 1;
        let at = (at & mask) as usize;
        let first = dst.len().min(self.cap as usize - at);
        unsafe {
            std::ptr::copy_nonoverlapping(self.data().add(at), dst.as_mut_ptr(), first);
            std::ptr::copy_nonoverlapping(
                self.data(),
                dst.as_mut_ptr().add(first),
                dst.len() - first,
            );
        }
    }
}

impl Drop for Map {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
    }
}

/// Spin → yield → bounded-sleep backoff for cross-process waits.
struct Backoff {
    step: u32,
}

impl Backoff {
    fn new() -> Self {
        Backoff { step: 0 }
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn pause(&mut self) {
        if self.step < SPINS {
            std::hint::spin_loop();
        } else if self.step < SPINS + YIELDS {
            std::thread::yield_now();
        } else {
            std::thread::sleep(SLEEP);
        }
        self.step = self.step.saturating_add(1);
    }
}

fn read_header_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(buf[at..at + 2].try_into().expect("2 bytes"))
}

fn read_header_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Create one ring file at `path` (via a temp file and an atomic
/// rename, so an attaching producer never observes a half-written
/// header) and map it. Consumer side.
fn create_ring(path: &Path, capacity: usize, who: &str) -> FilterResult<Map> {
    let err = |m: String| FilterError::new(who.to_string(), m);
    if !capacity.is_power_of_two() || capacity < MIN_CAPACITY {
        return Err(err(format!(
            "shm capacity {capacity} must be a power of two >= {MIN_CAPACITY}"
        )));
    }
    let tmp = path.with_extension("tmp");
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&tmp)
        .map_err(|e| err(format!("create {}: {e}", tmp.display())))?;
    file.set_len((HEADER_LEN + capacity) as u64)
        .map_err(|e| err(format!("size {}: {e}", tmp.display())))?;
    let mut header = [0u8; 16];
    header[0..4].copy_from_slice(&SHM_MAGIC);
    header[4..6].copy_from_slice(&SHM_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&(capacity as u64).to_le_bytes());
    {
        use std::io::Write;
        (&file)
            .write_all(&header)
            .map_err(|e| err(format!("init {}: {e}", tmp.display())))?;
    }
    let ptr = sys::map_shared(&file, HEADER_LEN + capacity)
        .map_err(|e| err(format!("mmap {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        sys::unmap(ptr, HEADER_LEN + capacity);
        err(format!("publish {}: {e}", path.display()))
    })?;
    Ok(Map {
        ptr,
        len: HEADER_LEN + capacity,
        cap: capacity as u64,
        _file: file,
    })
}

/// Open and validate an existing ring file. Producer side; retries
/// until the consumer's atomic rename lands (bounded by
/// [`ATTACH_BUDGET`]).
fn attach_ring(path: &Path, control: Option<&Arc<RunControl>>, who: &str) -> FilterResult<Map> {
    let err = |m: String| FilterError::new(who.to_string(), m);
    let start = Instant::now();
    let file = loop {
        if control.is_some_and(|c| c.is_cancelled()) {
            return Err(FilterError::cancelled(
                who.to_string(),
                "run cancelled while attaching to shm ring",
            ));
        }
        match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => break f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if start.elapsed() >= ATTACH_BUDGET {
                    return Err(err(format!(
                        "shm ring {} did not appear within {ATTACH_BUDGET:?}",
                        path.display()
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(err(format!("open {}: {e}", path.display()))),
        }
    };
    let file_len = file
        .metadata()
        .map_err(|e| err(format!("stat {}: {e}", path.display())))?
        .len() as usize;
    if file_len < HEADER_LEN + MIN_CAPACITY {
        return Err(FilterError::malformed(
            who.to_string(),
            format!(
                "shm ring {} is truncated ({file_len} bytes)",
                path.display()
            ),
        ));
    }
    let ptr = sys::map_shared(&file, file_len)
        .map_err(|e| err(format!("mmap {}: {e}", path.display())))?;
    let header = unsafe { std::slice::from_raw_parts(ptr, 16) };
    let check = (|| -> FilterResult<u64> {
        if header[0..4] != SHM_MAGIC {
            return Err(FilterError::malformed(
                who.to_string(),
                format!(
                    "bad shm magic {:02x?} (expected {SHM_MAGIC:02x?})",
                    &header[0..4]
                ),
            ));
        }
        let version = read_header_u16(header, 4);
        if version != SHM_VERSION {
            return Err(FilterError::malformed(
                who.to_string(),
                format!("shm layout version {version} (expected {SHM_VERSION})"),
            ));
        }
        let cap = read_header_u64(header, 8);
        if !cap.is_power_of_two() || cap as usize + HEADER_LEN != file_len {
            return Err(FilterError::malformed(
                who.to_string(),
                format!("shm capacity {cap} inconsistent with file size {file_len}"),
            ));
        }
        Ok(cap)
    })();
    let cap = match check {
        Ok(c) => c,
        Err(e) => {
            sys::unmap(ptr, file_len);
            return Err(e);
        }
    };
    Ok(Map {
        ptr,
        len: file_len,
        cap,
        _file: file,
    })
}

/// Producer half of one ring: frame writer over the byte pipe.
pub struct ShmSender {
    map: Map,
    control: Option<Arc<RunControl>>,
    who: String,
}

impl ShmSender {
    /// Attach to the ring file at `path` (created by the consumer).
    pub fn attach(
        path: &Path,
        control: Option<Arc<RunControl>>,
        who: String,
    ) -> FilterResult<Self> {
        let map = attach_ring(path, control.as_ref(), &who)?;
        Ok(ShmSender { map, control, who })
    }

    fn cancelled(&self) -> Option<FilterError> {
        self.control
            .as_ref()
            .filter(|c| c.is_cancelled())
            .map(|_| FilterError::cancelled(self.who.clone(), "run cancelled during shm write"))
    }

    /// Stream `buf` into the ring, publishing incrementally so records
    /// larger than the ring flow through without deadlock.
    pub fn write_all(&mut self, mut buf: &[u8]) -> FilterResult<()> {
        let mut backoff = Backoff::new();
        while !buf.is_empty() {
            if let Some(e) = self.cancelled() {
                return Err(e);
            }
            if self.map.consumer_closed() {
                return Err(FilterError::new(
                    self.who.clone(),
                    "shm ring closed by consumer",
                ));
            }
            let head = self.map.head().load(Ordering::Acquire);
            let tail = self.map.tail().load(Ordering::Relaxed);
            let free = self.map.cap - tail.wrapping_sub(head);
            if free == 0 {
                backoff.pause();
                continue;
            }
            let n = (free as usize).min(buf.len());
            self.map.copy_in(tail, &buf[..n]);
            self.map
                .tail()
                .store(tail.wrapping_add(n as u64), Ordering::Release);
            buf = &buf[n..];
            backoff.reset();
        }
        Ok(())
    }

    /// Write one control frame.
    pub fn write_frame(&mut self, f: &Frame) -> FilterResult<()> {
        self.write_all(&encode_frame(f))
    }

    /// Write a data frame without an intermediate encode of the payload.
    pub fn write_data(&mut self, from: u32, seq: u64, payload: &[u8]) -> FilterResult<()> {
        if payload.len() > MAX_FRAME_PAYLOAD {
            return Err(FilterError::new(
                self.who.clone(),
                format!(
                    "packet of {} bytes exceeds the frame cap {MAX_FRAME_PAYLOAD}",
                    payload.len()
                ),
            ));
        }
        self.write_all(&encode_data_header(from, seq, payload.len()))?;
        self.write_all(payload)
    }
}

impl Drop for ShmSender {
    fn drop(&mut self) {
        // Published after any final tail store, so the reader observing
        // the flag re-loads tail and drains everything first.
        self.map.close(OFF_PRODUCER_CLOSED);
    }
}

/// Consumer half of one ring: frame reader over the byte pipe. Unlinks
/// the ring file on drop.
pub struct ShmReceiver {
    map: Map,
    control: Option<Arc<RunControl>>,
    who: String,
    path: PathBuf,
}

impl ShmReceiver {
    /// Create the ring file at `path` and take the consumer side.
    pub fn create(
        path: &Path,
        capacity: usize,
        control: Option<Arc<RunControl>>,
        who: String,
    ) -> FilterResult<Self> {
        let map = create_ring(path, capacity, &who)?;
        Ok(ShmReceiver {
            map,
            control,
            who,
            path: path.to_path_buf(),
        })
    }

    fn cancelled(&self) -> Option<FilterError> {
        self.control
            .as_ref()
            .filter(|c| c.is_cancelled())
            .map(|_| FilterError::cancelled(self.who.clone(), "run cancelled during shm read"))
    }

    /// Fill `buf` completely. `Ok(false)` means the producer closed at
    /// a record boundary (`allow_eof` and no byte read yet); a close
    /// mid-frame is malformed — exactly the socket reader's contract.
    fn fill(&mut self, buf: &mut [u8], allow_eof: bool) -> FilterResult<bool> {
        let mut off = 0;
        let mut backoff = Backoff::new();
        while off < buf.len() {
            if let Some(e) = self.cancelled() {
                return Err(e);
            }
            let head = self.map.head().load(Ordering::Relaxed);
            let tail = self.map.tail().load(Ordering::Acquire);
            let used = tail.wrapping_sub(head);
            if used == 0 {
                if self.map.producer_closed() {
                    // The close flag trails the final tail store:
                    // re-check before declaring EOF.
                    if self.map.tail().load(Ordering::Acquire) != tail {
                        continue;
                    }
                    if off == 0 && allow_eof {
                        return Ok(false);
                    }
                    return Err(FilterError::malformed(
                        self.who.clone(),
                        "shm ring closed mid-frame",
                    ));
                }
                backoff.pause();
                continue;
            }
            let n = (used as usize).min(buf.len() - off);
            self.map.copy_out(head, &mut buf[off..off + n]);
            self.map
                .head()
                .store(head.wrapping_add(n as u64), Ordering::Release);
            off += n;
            backoff.reset();
        }
        Ok(true)
    }

    /// Read one frame; `Ok(None)` when the producer closed at a frame
    /// boundary. Shares the header-layout tables and [`decode_frame`]
    /// with the socket path, so both transports parse one format.
    pub fn read_frame(&mut self) -> FilterResult<Option<Frame>> {
        let mut tag = [0u8; 1];
        if !self.fill(&mut tag, true)? {
            return Ok(None);
        }
        let Some(header_len) = frame_header_len(tag[0]) else {
            return Err(FilterError::malformed(
                self.who.clone(),
                format!("unknown frame tag {}", tag[0]),
            ));
        };
        let mut frame = vec![tag[0]; 1];
        frame.resize(1 + header_len, 0);
        self.fill(&mut frame[1..], false)?;
        if let Some(at) = frame_len_field_at(tag[0]) {
            let len = u32::from_le_bytes(frame[at..at + 4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_PAYLOAD {
                return Err(FilterError::malformed(
                    self.who.clone(),
                    format!("frame declares {len} bytes (cap {MAX_FRAME_PAYLOAD})"),
                ));
            }
            let at = frame.len();
            frame.resize(at + len, 0);
            self.fill(&mut frame[at..], false)?;
        }
        decode_frame(&frame)
            .map(|(f, _)| Some(f))
            .map_err(|e| FilterError {
                filter: self.who.clone(),
                ..e
            })
    }
}

impl Drop for ShmReceiver {
    fn drop(&mut self) {
        self.map.close(OFF_CONSUMER_CLOSED);
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Ring file path for producer copy `p` of the link at `base`.
pub fn ring_path(base: &str, producer: u32) -> PathBuf {
    PathBuf::from(format!("{base}.{producer}"))
}

/// Consumer side of one logical link over shared memory: one ring file
/// per upstream producer copy, created **eagerly** so the worker can
/// announce the base path before any producer attaches.
pub struct ShmIngress {
    base: String,
    receivers: Vec<ShmReceiver>,
}

impl std::fmt::Debug for ShmIngress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmIngress")
            .field("base", &self.base)
            .field("producers", &self.receivers.len())
            .finish()
    }
}

impl ShmIngress {
    /// Create `producers` ring files at `<base>.<p>`.
    pub fn create(
        base: &str,
        producers: usize,
        capacity: usize,
        control: Option<Arc<RunControl>>,
    ) -> FilterResult<Self> {
        let mut receivers = Vec::with_capacity(producers);
        for p in 0..producers {
            receivers.push(ShmReceiver::create(
                &ring_path(base, p as u32),
                capacity,
                control.clone(),
                format!("shm.ingress[{p}]"),
            )?);
        }
        Ok(ShmIngress {
            base: base.to_string(),
            receivers,
        })
    }

    /// The base path producers derive their ring paths from.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// Bridge every producer's frames onto the local `writers` (writer
    /// `p` plays producer copy `p`, preserving in-process round-robin
    /// routing). Returns when every producer sent `End`, or with the
    /// first error after cancelling the run. Unlike TCP ingress there
    /// is no reconnection: a producer closing its ring before `End` is
    /// an error, and recovery-across-restart links stay on TCP.
    pub fn serve_probed(
        self,
        link: u32,
        writers: Vec<StreamWriter>,
        control: Option<Arc<RunControl>>,
        probe: Option<Arc<LinkProbe>>,
    ) -> FilterResult<NetLinkStats> {
        assert_eq!(
            writers.len(),
            self.receivers.len(),
            "one local writer per producer ring"
        );
        let frames = AtomicU64::new(0);
        let bytes = AtomicU64::new(0);
        let errors: Mutex<Vec<FilterError>> = Mutex::new(Vec::new());
        let (frames, bytes, errors) = (&frames, &bytes, &errors);
        let control = &control;
        let fail = |e: FilterError| {
            if let Some(c) = control {
                c.cancel(format!("shm ingress link {link} failed: {e}"));
            }
            plock(errors).push(e);
        };
        let fail = &fail;
        let mut deduped = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (p, (mut rx, writer)) in self.receivers.into_iter().zip(writers).enumerate() {
                let probe = probe.clone();
                handles.push(scope.spawn(move || {
                    let mut feeder = IngressFeeder::new(writer);
                    let res = (|| -> FilterResult<()> {
                        match rx.read_frame()? {
                            Some(Frame::Hello {
                                link: got_link,
                                producer,
                            }) => {
                                if got_link != link || producer as usize != p {
                                    return Err(FilterError::malformed(
                                        format!("shm.ingress[{p}]"),
                                        format!(
                                            "hello for link {got_link} producer {producer} \
                                             arrived at link {link} producer {p}"
                                        ),
                                    ));
                                }
                            }
                            f => {
                                return Err(FilterError::malformed(
                                    format!("shm.ingress[{p}]"),
                                    format!("expected Hello, got {f:?}"),
                                ))
                            }
                        }
                        loop {
                            match rx.read_frame()? {
                                Some(Frame::Data { from, seq, payload }) => {
                                    if from as usize != p {
                                        return Err(FilterError::malformed(
                                            format!("shm.ingress[{p}]"),
                                            format!("frame from producer {from} on ring {p}"),
                                        ));
                                    }
                                    let n = payload.len() as u64;
                                    if feeder.feed(seq, Buffer::from_vec(payload))? {
                                        frames.fetch_add(1, Ordering::Relaxed);
                                        bytes.fetch_add(n, Ordering::Relaxed);
                                        if let Some(pr) = &probe {
                                            pr.count_frame(n);
                                        }
                                    } else if let Some(pr) = &probe {
                                        pr.deduped.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Some(Frame::End { from }) => {
                                    if from as usize != p {
                                        return Err(FilterError::malformed(
                                            format!("shm.ingress[{p}]"),
                                            format!("End from producer {from} on ring {p}"),
                                        ));
                                    }
                                    feeder.end();
                                    return Ok(());
                                }
                                // No reconnection on shm: a ring closing
                                // before End means the producer died.
                                Some(Frame::Close) | None => {
                                    return Err(FilterError::malformed(
                                        format!("shm.ingress[{p}]"),
                                        "producer closed its ring before End",
                                    ));
                                }
                                Some(f) => {
                                    return Err(FilterError::malformed(
                                        format!("shm.ingress[{p}]"),
                                        format!("unexpected frame mid-stream: {f:?}"),
                                    ));
                                }
                            }
                        }
                    })();
                    if let Err(e) = res {
                        fail(e);
                    }
                    if !feeder.ended() {
                        // Error/cancel path: unblock downstream readers.
                        feeder.end();
                    }
                    feeder.deduped()
                }));
            }
            for h in handles {
                deduped += h.join().unwrap_or(0);
            }
        });
        if let Some(e) = plock(errors).first() {
            return Err(e.clone());
        }
        Ok(NetLinkStats {
            frames: frames.load(Ordering::Relaxed),
            bytes: bytes.load(Ordering::Relaxed),
            deduped,
        })
    }
}

/// Drain one local 1→1 stream behind producer copy `producer` into the
/// ring at `<base>.<producer>` — the shm analogue of
/// [`crate::net::egress_pump_probed`], with the same per-packet ack
/// commit so producer-side replay buffers stay bounded.
pub fn shm_egress_pump_probed(
    mut reader: StreamReader,
    base: &str,
    link: u32,
    producer: u32,
    control: Option<Arc<RunControl>>,
    probe: Option<Arc<LinkProbe>>,
) -> FilterResult<NetLinkStats> {
    let who = format!("shm.egress[{producer}]");
    let mut tx = ShmSender::attach(&ring_path(base, producer), control.clone(), who.clone())?;
    tx.write_frame(&Frame::Hello { link, producer })?;
    let mut seq = 0u64;
    let (mut frames, mut bytes) = (0u64, 0u64);
    while let Some(buf) = reader.read() {
        tx.write_data(producer, seq, buf.as_slice())?;
        seq += 1;
        reader.commit_acks();
        frames += 1;
        bytes += buf.len() as u64;
        if let Some(p) = &probe {
            p.frames.fetch_add(1, Ordering::Relaxed);
            p.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
    }
    if control.as_ref().is_some_and(|c| c.is_cancelled()) {
        return Err(FilterError::cancelled(who, "run cancelled during transmit"));
    }
    tx.write_frame(&Frame::End { from: producer })?;
    tx.write_frame(&Frame::Close)?;
    Ok(NetLinkStats {
        frames,
        bytes,
        deduped: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{logical_stream, Distribution};
    use std::sync::atomic::AtomicU32 as TestCounter;

    static NEXT: TestCounter = TestCounter::new(0);

    fn test_base(tag: &str) -> String {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        shm_dir()
            .join(format!("cgp-shm-test-{}-{tag}-{n}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn frames_roundtrip_through_the_ring() {
        let path = PathBuf::from(format!("{}.0", test_base("roundtrip")));
        let mut rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        let mut tx = ShmSender::attach(&path, None, "tx".into()).unwrap();
        let sent = vec![
            Frame::Hello {
                link: 3,
                producer: 0,
            },
            Frame::Data {
                from: 0,
                seq: 0,
                payload: vec![7; 100],
            },
            Frame::End { from: 0 },
            Frame::Close,
        ];
        let expect = sent.clone();
        let writer = std::thread::spawn(move || {
            for f in &sent {
                tx.write_frame(f).unwrap();
            }
        });
        for f in &expect {
            assert_eq!(rx.read_frame().unwrap().as_ref(), Some(f));
        }
        writer.join().unwrap();
        drop(rx);
        assert!(!path.exists(), "receiver unlinks the ring file on drop");
    }

    #[test]
    fn frame_larger_than_the_ring_streams_through() {
        let path = PathBuf::from(format!("{}.0", test_base("large")));
        let mut rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        let mut tx = ShmSender::attach(&path, None, "tx".into()).unwrap();
        // 4× the ring: the writer must publish incrementally while the
        // reader concurrently drains.
        let payload: Vec<u8> = (0..4 * MIN_CAPACITY).map(|i| (i % 251) as u8).collect();
        let want = payload.clone();
        let writer = std::thread::spawn(move || {
            tx.write_data(0, 0, &payload).unwrap();
        });
        match rx.read_frame().unwrap() {
            Some(Frame::Data { from, seq, payload }) => {
                assert_eq!((from, seq), (0, 0));
                assert_eq!(payload, want);
            }
            f => panic!("expected Data, got {f:?}"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn producer_drop_is_clean_eof_at_boundary_and_malformed_mid_frame() {
        let path = PathBuf::from(format!("{}.0", test_base("eof")));
        let mut rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        let mut tx = ShmSender::attach(&path, None, "tx".into()).unwrap();
        tx.write_frame(&Frame::End { from: 0 }).unwrap();
        drop(tx);
        assert_eq!(rx.read_frame().unwrap(), Some(Frame::End { from: 0 }));
        assert_eq!(rx.read_frame().unwrap(), None, "close at boundary is EOF");

        let path = PathBuf::from(format!("{}.0", test_base("midframe")));
        let mut rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        let mut tx = ShmSender::attach(&path, None, "tx".into()).unwrap();
        // A data header promising bytes that never arrive.
        tx.write_all(&encode_data_header(0, 0, 64)).unwrap();
        drop(tx);
        let err = rx.read_frame().unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Malformed);
        assert!(err.message.contains("mid-frame"), "{err}");
    }

    #[test]
    fn attach_validates_magic_and_version() {
        let base = test_base("validate");
        let path = PathBuf::from(format!("{base}.0"));
        let _rx = ShmReceiver::create(&path, MIN_CAPACITY, None, "rx".into()).unwrap();
        // Corrupt a copy of the file rather than the live mapping.
        let bogus = PathBuf::from(format!("{base}.bogus"));
        std::fs::copy(&path, &bogus).unwrap();
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(&bogus).unwrap();
            f.seek(SeekFrom::Start(0)).unwrap();
            f.write_all(b"XXXX").unwrap();
        }
        let err = match ShmSender::attach(&bogus, None, "tx".into()) {
            Err(e) => e,
            Ok(_) => panic!("attach accepted a corrupt ring"),
        };
        assert_eq!(err.kind, crate::error::ErrorKind::Malformed);
        assert!(err.message.contains("magic"), "{err}");
        std::fs::remove_file(&bogus).unwrap();
    }

    #[test]
    fn cancel_unblocks_a_writer_stuck_on_a_full_ring() {
        let path = PathBuf::from(format!("{}.0", test_base("cancel")));
        let control = Arc::new(RunControl::new());
        let _rx = ShmReceiver::create(&path, MIN_CAPACITY, Some(Arc::clone(&control)), "rx".into())
            .unwrap();
        let mut tx = ShmSender::attach(&path, Some(Arc::clone(&control)), "tx".into()).unwrap();
        let writer = std::thread::spawn(move || {
            // Nobody drains: this blocks once the ring fills, and must
            // return a Cancelled error when the run is cancelled.
            tx.write_data(0, 0, &vec![0u8; 4 * MIN_CAPACITY])
        });
        std::thread::sleep(Duration::from_millis(50));
        control.cancel("test");
        let err = writer.join().unwrap().unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Cancelled);
    }

    #[test]
    fn ingress_and_egress_bridge_local_streams_byte_identically() {
        let base = test_base("bridge");
        let producers = 2usize;
        let ingress = ShmIngress::create(&base, producers, MIN_CAPACITY, None).unwrap();

        // Producer side: two local 1→1 streams, one egress pump each.
        let packets_per_producer = 200usize;
        let mut pumps = Vec::new();
        for p in 0..producers {
            let (mut ws, mut rs) = logical_stream(1, 1, 16, Distribution::RoundRobin);
            let (w, r) = (ws.remove(0), rs.remove(0));
            let base = base.clone();
            pumps.push(std::thread::spawn(move || {
                let feeder = std::thread::spawn(move || {
                    let mut w = w;
                    for i in 0..packets_per_producer {
                        w.write(Buffer::from_vec(vec![p as u8, (i % 256) as u8]))
                            .unwrap();
                    }
                    w.close();
                });
                let stats = shm_egress_pump_probed(r, &base, 7, p as u32, None, None).unwrap();
                feeder.join().unwrap();
                stats
            }));
        }

        // Consumer side: a 2→1 local stream fed by the ingress.
        let (ws, mut rs) = logical_stream(producers, 1, 16, Distribution::RoundRobin);
        let reader = std::thread::spawn(move || {
            let mut seen = Vec::new();
            let mut r = rs.remove(0);
            while let Some(b) = r.read() {
                seen.push(b.as_slice().to_vec());
            }
            seen
        });
        let stats = ingress.serve_probed(7, ws, None, None).unwrap();
        assert_eq!(stats.frames, (producers * packets_per_producer) as u64);
        let mut per_producer = vec![Vec::new(); producers];
        for b in reader.join().unwrap() {
            per_producer[b[0] as usize].push(b[1]);
        }
        for (p, seen) in per_producer.iter().enumerate() {
            let want: Vec<u8> = (0..packets_per_producer).map(|i| (i % 256) as u8).collect();
            assert_eq!(seen, &want, "producer {p} FIFO preserved");
        }
        for pump in pumps {
            let stats = pump.join().unwrap();
            assert_eq!(stats.frames, packets_per_producer as u64);
        }
    }
}
