//! The buffer abstraction (Section 2.2) and the data plane's memory pool.
//!
//! "A buffer represents a contiguous memory region containing useful data.
//! Streams transfer data in fixed size buffers." — buffers are immutable
//! once sealed ([`Buffer`]), built through a [`BufferBuilder`] with a
//! capacity limit mirroring DataCutter's fixed buffer size.
//!
//! ## Zero-copy and pooling
//!
//! [`Buffer::from_vec`] takes ownership of the allocation without copying
//! (clones share it; sub-ranges adjust `start`/`end` only). A size-classed
//! [`BufferPool`] recycles packet storage across the pipeline: allocate
//! with [`BufferPool::alloc`], seal with [`BufferPool::seal`] (or mark an
//! existing buffer with [`Buffer::into_pooled`]), and when the last clone
//! of a pooled buffer drops, its allocation returns to the pool instead of
//! the global allocator. Pool hit/miss counters feed `cgp-obs` metrics and
//! the executor's `StageStats`.

use crate::error::{FilterError, FilterResult};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Default stream buffer capacity (64 KiB, DataCutter-style).
pub const DEFAULT_BUFFER_CAPACITY: usize = 64 * 1024;

/// Heap storage behind a [`Buffer`]: the payload bytes plus, for pooled
/// buffers, a handle back to the pool that recycles the allocation when
/// the last clone drops.
struct SharedVec {
    bytes: Vec<u8>,
    /// Set for pooled buffers; the drop of the last `Arc<SharedVec>`
    /// returns `bytes` (allocation, not contents) to this pool.
    pool: Option<Weak<PoolShared>>,
}

impl Drop for SharedVec {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.as_ref().and_then(Weak::upgrade) {
            pool.put(std::mem::take(&mut self.bytes));
        }
    }
}

/// Backing storage: borrowed static data, an owned (possibly pooled) heap
/// allocation, or a pre-shared `Arc<[u8]>`. Clones share the allocation
/// and sub-ranges adjust `start`/`end` only.
#[derive(Clone)]
enum Storage {
    Static(&'static [u8]),
    Owned(Arc<SharedVec>),
    Shared(Arc<[u8]>),
}

/// An immutable, cheaply-clonable chunk of stream data.
#[derive(Clone)]
pub struct Buffer {
    storage: Storage,
    start: usize,
    end: usize,
}

impl Buffer {
    /// Wrap a vector without copying; clones share the allocation.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Buffer {
            storage: Storage::Owned(Arc::new(SharedVec {
                bytes: v,
                pool: None,
            })),
            start: 0,
            end,
        }
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Buffer {
            storage: Storage::Static(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Wrap an already-shared slice without copying.
    pub fn from_arc(s: Arc<[u8]>) -> Self {
        let end = s.len();
        Buffer {
            storage: Storage::Shared(s),
            start: 0,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        let whole: &[u8] = match &self.storage {
            Storage::Static(s) => s,
            Storage::Owned(v) => &v.bytes,
            Storage::Shared(a) => a,
        };
        &whole[self.start..self.end]
    }

    /// The payload as an `Arc<[u8]>` for cheap cross-thread handoff.
    ///
    /// Free when the buffer already wraps a full-range shared slice;
    /// otherwise one copy, after which the result owns its allocation
    /// independently of this buffer (and of any pool).
    pub fn as_arc_slice(&self) -> Arc<[u8]> {
        match &self.storage {
            Storage::Shared(a) if self.start == 0 && self.end == a.len() => Arc::clone(a),
            _ => Arc::from(self.as_slice()),
        }
    }

    /// Mark this buffer's allocation for recycling into `pool` when the
    /// last clone drops. Zero-copy when this is the only handle to an
    /// owned allocation; otherwise (shared, static, or already-cloned
    /// storage) the buffer is returned unchanged.
    pub fn into_pooled(mut self, pool: &BufferPool) -> Buffer {
        if let Storage::Owned(arc) = &mut self.storage {
            if let Some(sv) = Arc::get_mut(arc) {
                if sv.pool.is_none() {
                    sv.pool = Some(Arc::downgrade(&pool.shared));
                }
            }
        }
        self
    }

    /// Decode this buffer as one little-endian `u64`.
    ///
    /// Returns a structured [`Malformed`](crate::error::ErrorKind::Malformed)
    /// error on a short or oversized payload instead of panicking —
    /// stream data crosses trust boundaries, so demo/test filters must
    /// not `unwrap` a `try_into` on it. `who` names the decoding filter
    /// for the error report.
    pub fn u64_le(&self, who: &str) -> FilterResult<u64> {
        let bytes: [u8; 8] = self.as_slice().try_into().map_err(|_| {
            FilterError::malformed(
                who,
                format!("expected an 8-byte u64 packet, got {} bytes", self.len()),
            )
        })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Decode a little-endian `u64` at byte offset `at` (packets often
    /// carry several fields). Structured error on out-of-range reads —
    /// including an offset already past the end of an empty or truncated
    /// packet; this path must never index-panic, since it decodes data
    /// that crosses trust boundaries.
    pub fn u64_le_at(&self, at: usize, who: &str) -> FilterResult<u64> {
        let bytes = at
            .checked_add(8)
            .and_then(|end| self.as_slice().get(at..end))
            .ok_or_else(|| {
                FilterError::malformed(
                    who,
                    format!(
                        "u64 field at offset {at} overruns a {}-byte packet",
                        self.len()
                    ),
                )
            })?;
        let bytes: [u8; 8] = bytes.try_into().expect("checked 8-byte range");
        Ok(u64::from_le_bytes(bytes))
    }

    /// Zero-copy sub-range (shares the backing allocation).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Buffer {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Buffer {
            storage: self.storage.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl PartialEq for Buffer {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Buffer {}

impl fmt::Debug for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Buffer({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Buffer {
    fn from(v: Vec<u8>) -> Self {
        Buffer::from_vec(v)
    }
}

// ---------------------------------------------------------------------------
// buffer pool

/// Smallest pooled size class, 2^6 = 64 bytes; tiny control packets
/// below this share one class.
const MIN_CLASS_SHIFT: u32 = 6;
/// Number of power-of-two size classes: 64 B .. 2 GiB.
const CLASSES: usize = 26;
/// Default cap on idle allocations kept per size class.
const DEFAULT_MAX_PER_CLASS: usize = 64;

/// Snapshot of a pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `alloc` calls served from a recycled allocation.
    pub hits: u64,
    /// `alloc` calls that had to touch the global allocator.
    pub misses: u64,
    /// Allocations returned to the pool by pooled-buffer drops.
    pub recycled: u64,
    /// Returned allocations discarded because their class was full.
    pub discarded: u64,
}

struct PoolShared {
    /// Idle allocations, grouped by power-of-two capacity class.
    classes: Vec<Mutex<Vec<Vec<u8>>>>,
    max_per_class: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

fn class_of(capacity: usize) -> usize {
    let bits = usize::BITS - capacity.max(1).saturating_sub(1).leading_zeros();
    (bits.saturating_sub(MIN_CLASS_SHIFT) as usize).min(CLASSES - 1)
}

impl PoolShared {
    /// Return an allocation to its class (keeping capacity, clearing
    /// contents); drops it on the floor when the class is full.
    fn put(&self, mut v: Vec<u8>) {
        if v.capacity() == 0 {
            return;
        }
        v.clear();
        let mut class = self.classes[class_of(v.capacity())]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if class.len() < self.max_per_class {
            class.push(v);
            drop(class);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(class);
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A size-classed recycling pool for packet storage.
///
/// Cloning shares the pool. The pool never blocks: a miss falls through
/// to the global allocator, and returns to a full class are discarded.
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<PoolShared>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    pub fn new() -> Self {
        Self::with_max_per_class(DEFAULT_MAX_PER_CLASS)
    }

    /// Cap the idle allocations kept per size class (bounds the pool's
    /// worst-case footprint at `cap × Σ class sizes`).
    pub fn with_max_per_class(cap: usize) -> Self {
        BufferPool {
            shared: Arc::new(PoolShared {
                classes: (0..CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
                max_per_class: cap.max(1),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                discarded: AtomicU64::new(0),
            }),
        }
    }

    /// An empty vector with at least `capacity` bytes of room — recycled
    /// when the matching size class has one (hit), freshly allocated
    /// otherwise (miss).
    pub fn alloc(&self, capacity: usize) -> Vec<u8> {
        let (v, hit) = self.alloc_counted(capacity);
        let _ = hit;
        v
    }

    /// [`alloc`](Self::alloc), also reporting whether it was a pool hit
    /// (for per-stage accounting).
    pub fn alloc_counted(&self, capacity: usize) -> (Vec<u8>, bool) {
        let class = class_of(capacity);
        // A recycled vec from this class may still be smaller than
        // `capacity` if capacity is not a power of two; reserve fixes it
        // up in place (usually a no-op).
        let recycled = {
            let mut c = self.shared.classes[class]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            c.pop()
        };
        match recycled {
            Some(mut v) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                v.reserve(capacity);
                (v, true)
            }
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                (Vec::with_capacity(capacity), false)
            }
        }
    }

    /// Seal a vector into a pooled [`Buffer`]: zero-copy now, and the
    /// allocation returns here when the last clone drops.
    pub fn seal(&self, v: Vec<u8>) -> Buffer {
        let end = v.len();
        Buffer {
            storage: Storage::Owned(Arc::new(SharedVec {
                bytes: v,
                pool: Some(Arc::downgrade(&self.shared)),
            })),
            start: 0,
            end,
        }
    }

    /// Counter snapshot (for metrics / `StageStats`).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            recycled: self.shared.recycled.load(Ordering::Relaxed),
            discarded: self.shared.discarded.load(Ordering::Relaxed),
        }
    }

    /// Idle allocations currently held (all classes; racy, for tests).
    pub fn idle(&self) -> usize {
        self.shared
            .classes
            .iter()
            .map(|c| c.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

// ---------------------------------------------------------------------------
// builders

/// Accumulates payload up to a fixed capacity, splitting into sealed
/// buffers — the way a filter writes a large result across multiple
/// fixed-size stream buffers.
pub struct BufferBuilder {
    capacity: usize,
    current: Vec<u8>,
    sealed: Vec<Buffer>,
    pool: Option<BufferPool>,
}

impl BufferBuilder {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        BufferBuilder {
            capacity,
            current: Vec::new(),
            sealed: Vec::new(),
            pool: None,
        }
    }

    /// Draw each sealed buffer's storage from (and return it to) `pool`.
    pub fn pooled(capacity: usize, pool: BufferPool) -> Self {
        let mut b = Self::new(capacity);
        b.pool = Some(pool);
        b
    }

    fn fresh(&self) -> Vec<u8> {
        match &self.pool {
            Some(p) => p.alloc(self.capacity),
            None => Vec::with_capacity(self.capacity),
        }
    }

    fn seal_vec(&self, v: Vec<u8>) -> Buffer {
        match &self.pool {
            Some(p) => p.seal(v),
            None => Buffer::from_vec(v),
        }
    }

    /// Append payload, sealing full buffers as the capacity is reached.
    pub fn push(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            if self.current.capacity() == 0 {
                self.current = self.fresh();
            }
            let room = self.capacity - self.current.len();
            let take = room.min(bytes.len());
            self.current.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.current.len() == self.capacity {
                // Next iteration (or a later push) re-fills `current`
                // lazily; finish() ignores the empty placeholder.
                let full = std::mem::take(&mut self.current);
                let sealed = self.seal_vec(full);
                self.sealed.push(sealed);
            }
        }
    }

    /// Seal any remaining partial buffer and return the sequence.
    pub fn finish(mut self) -> Vec<Buffer> {
        if !self.current.is_empty() {
            let tail = std::mem::take(&mut self.current);
            let sealed = self.seal_vec(tail);
            self.sealed.push(sealed);
        }
        self.sealed
    }
}

/// Reusable single-packet writer: `start` hands out a cleared, pooled
/// scratch vector (capacity reused across packets), `seal` turns it into
/// a pooled [`Buffer`]. The per-packet fast path of the threaded
/// executor builds every tagged packet through one of these instead of a
/// fresh heap allocation.
pub struct BufferWriter {
    pool: BufferPool,
    default_capacity: usize,
}

impl BufferWriter {
    pub fn new(pool: BufferPool) -> Self {
        Self::with_capacity(pool, DEFAULT_BUFFER_CAPACITY)
    }

    pub fn with_capacity(pool: BufferPool, default_capacity: usize) -> Self {
        BufferWriter {
            pool,
            default_capacity: default_capacity.max(1),
        }
    }

    /// An empty scratch vector with at least `hint.max(default)` bytes of
    /// room, recycled from the pool when possible.
    pub fn start(&self, hint: usize) -> Vec<u8> {
        self.pool.alloc(hint.max(self.default_capacity))
    }

    /// Seal a scratch vector into a pooled buffer (its allocation comes
    /// back to the pool when the last clone drops).
    pub fn seal(&self, v: Vec<u8>) -> Buffer {
        self.pool.seal(v)
    }

    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

/// Reassemble a logical payload from a buffer sequence (inverse of
/// [`BufferBuilder`]). Zero-copy for a single buffer (a shared view of
/// its storage); one exact-size allocation otherwise.
pub fn reassemble(buffers: &[Buffer]) -> Buffer {
    match buffers {
        [] => Buffer::from_static(&[]),
        [one] => one.clone(),
        many => {
            let total: usize = many.iter().map(Buffer::len).sum();
            let mut out = Vec::with_capacity(total);
            for b in many {
                out.extend_from_slice(b.as_slice());
            }
            Buffer::from_vec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_splits_at_capacity() {
        let mut b = BufferBuilder::new(4);
        b.push(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let bufs = b.finish();
        assert_eq!(bufs.len(), 3);
        assert_eq!(bufs[0].len(), 4);
        assert_eq!(bufs[1].len(), 4);
        assert_eq!(bufs[2].len(), 1);
        assert_eq!(
            reassemble(&bufs).as_slice(),
            &[1, 2, 3, 4, 5, 6, 7, 8, 9][..]
        );
    }

    #[test]
    fn builder_exact_multiple_has_no_tail() {
        let mut b = BufferBuilder::new(2);
        b.push(&[1, 2, 3, 4]);
        let bufs = b.finish();
        assert_eq!(bufs.len(), 2);
    }

    #[test]
    fn empty_builder_finishes_empty() {
        let b = BufferBuilder::new(8);
        assert!(b.finish().is_empty());
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Buffer::from_vec(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn u64_decode_round_trips() {
        let b = Buffer::from_vec(0xdead_beef_u64.to_le_bytes().to_vec());
        assert_eq!(b.u64_le("t").unwrap(), 0xdead_beef);
    }

    #[test]
    fn short_packet_is_a_structured_malformed_error() {
        let b = Buffer::from_vec(vec![1, 2, 3]);
        let e = b.u64_le("sum[0]").unwrap_err();
        assert_eq!(e.kind, crate::error::ErrorKind::Malformed);
        assert_eq!(e.filter, "sum[0]");
        assert!(e.message.contains("3 bytes"), "{}", e.message);
    }

    #[test]
    fn u64_at_offset_and_overrun() {
        let mut v = 7u64.to_le_bytes().to_vec();
        v.extend_from_slice(&9u64.to_le_bytes());
        let b = Buffer::from_vec(v);
        assert_eq!(b.u64_le_at(0, "t").unwrap(), 7);
        assert_eq!(b.u64_le_at(8, "t").unwrap(), 9);
        let e = b.u64_le_at(9, "t").unwrap_err();
        assert_eq!(e.kind, crate::error::ErrorKind::Malformed);
        assert!(b.u64_le_at(usize::MAX, "t").is_err(), "offset overflow");
    }

    /// Regression: a zero-length packet (hostile or truncated input) must
    /// yield `Malformed` from every offset — including offsets that are
    /// themselves past the buffer end — never an index panic.
    #[test]
    fn u64_at_on_zero_length_packet_is_malformed_not_a_panic() {
        let b = Buffer::from_vec(Vec::new());
        assert_eq!(b.len(), 0);
        for at in [0usize, 1, 8, 16, usize::MAX - 8, usize::MAX] {
            let e = b.u64_le_at(at, "t").unwrap_err();
            assert_eq!(e.kind, crate::error::ErrorKind::Malformed, "offset {at}");
            assert!(e.message.contains("0-byte packet"), "offset {at}: {e}");
        }
        let e = b.u64_le("t").unwrap_err();
        assert_eq!(e.kind, crate::error::ErrorKind::Malformed);
    }

    #[test]
    fn incremental_pushes_accumulate() {
        let mut b = BufferBuilder::new(8);
        b.push(&[1, 2, 3]);
        b.push(&[4, 5]);
        let bufs = b.finish();
        assert_eq!(bufs.len(), 1);
        assert_eq!(reassemble(&bufs).as_slice(), &[1, 2, 3, 4, 5][..]);
    }

    #[test]
    fn reassemble_single_buffer_shares_storage() {
        let b = Buffer::from_vec(vec![1, 2, 3]);
        let r = reassemble(std::slice::from_ref(&b));
        assert_eq!(r, b);
        // Shares the same allocation: both views point at the same bytes.
        assert_eq!(r.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn reassemble_empty_is_empty() {
        assert!(reassemble(&[]).is_empty());
    }

    #[test]
    fn as_arc_slice_round_trips_and_shares_when_possible() {
        let b = Buffer::from_vec(vec![9, 8, 7]);
        let a = b.as_arc_slice();
        assert_eq!(&a[..], &[9, 8, 7]);
        let shared = Buffer::from_arc(Arc::clone(&a));
        // Full-range shared buffer: another as_arc_slice is free.
        let a2 = shared.as_arc_slice();
        assert_eq!(a2.as_ptr(), a.as_ptr());
        // Sub-range must copy (independent allocation).
        let sub = shared.slice(1..3).as_arc_slice();
        assert_eq!(&sub[..], &[8, 7]);
    }

    #[test]
    fn pool_recycles_allocations() {
        let pool = BufferPool::new();
        let v = pool.alloc(100);
        assert_eq!(pool.stats().misses, 1);
        let cap = v.capacity();
        let buf = pool.seal(v);
        drop(buf);
        assert_eq!(pool.stats().recycled, 1);
        assert_eq!(pool.idle(), 1);
        let (v2, hit) = pool.alloc_counted(100);
        assert!(hit, "second alloc of the same class is a hit");
        assert!(v2.capacity() >= cap.min(100));
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn pooled_buffer_clones_share_and_recycle_once() {
        let pool = BufferPool::new();
        let mut v = pool.alloc(32);
        v.extend_from_slice(&[1, 2, 3]);
        let b = pool.seal(v);
        let c = b.clone();
        drop(b);
        assert_eq!(pool.stats().recycled, 0, "a clone still holds it");
        assert_eq!(c.as_slice(), &[1, 2, 3]);
        drop(c);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn into_pooled_recycles_unique_owned_buffers() {
        let pool = BufferPool::new();
        let b = Buffer::from_vec(vec![5; 128]).into_pooled(&pool);
        assert_eq!(b.as_slice()[0], 5);
        drop(b);
        assert_eq!(pool.stats().recycled, 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn into_pooled_on_shared_buffer_is_inert() {
        let pool = BufferPool::new();
        let b = Buffer::from_vec(vec![1, 2]);
        let c = b.clone(); // no longer unique
        let b = b.into_pooled(&pool);
        drop(b);
        drop(c);
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn pool_class_cap_discards_overflow() {
        let pool = BufferPool::with_max_per_class(1);
        // Both buffers live at once, so both drops race for one slot.
        let a = pool.seal(pool.alloc(64));
        let b = pool.seal(pool.alloc(64));
        drop(a);
        drop(b);
        let st = pool.stats();
        assert_eq!(st.recycled, 1);
        assert_eq!(st.discarded, 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn dropped_pool_does_not_break_buffers() {
        let pool = BufferPool::new();
        let mut v = pool.alloc(16);
        v.push(42);
        let b = pool.seal(v);
        drop(pool);
        assert_eq!(b.as_slice(), &[42]);
        drop(b); // weak upgrade fails; allocation freed normally
    }

    #[test]
    fn size_classes_are_monotone() {
        assert_eq!(class_of(0), 0);
        assert_eq!(class_of(64), 0);
        assert_eq!(class_of(65), 1);
        assert_eq!(class_of(128), 1);
        assert!(class_of(usize::MAX) < CLASSES);
        for c in [1usize, 63, 64, 100, 4096, 65536] {
            let v = Vec::<u8>::with_capacity(c);
            assert!(v.capacity() >= c);
            let _ = class_of(v.capacity());
        }
    }

    #[test]
    fn pooled_builder_round_trips_through_pool() {
        let pool = BufferPool::new();
        let mut b = BufferBuilder::pooled(4, pool.clone());
        b.push(&[1, 2, 3, 4, 5]);
        let bufs = b.finish();
        assert_eq!(reassemble(&bufs).as_slice(), &[1, 2, 3, 4, 5][..]);
        drop(bufs);
        assert!(pool.stats().recycled >= 2);
    }

    #[test]
    fn buffer_writer_reuses_capacity() {
        let pool = BufferPool::new();
        let w = BufferWriter::with_capacity(pool.clone(), 64);
        for i in 0..10u8 {
            let mut v = w.start(8);
            v.push(i);
            drop(w.seal(v));
        }
        let st = pool.stats();
        assert_eq!(st.misses, 1, "one real allocation serves all packets");
        assert_eq!(st.hits, 9);
    }
}
