//! The buffer abstraction (Section 2.2).
//!
//! "A buffer represents a contiguous memory region containing useful data.
//! Streams transfer data in fixed size buffers." — buffers are immutable
//! once sealed ([`Buffer`]), built through a [`BufferBuilder`] with a
//! capacity limit mirroring DataCutter's fixed buffer size.

use crate::error::{FilterError, FilterResult};
use std::fmt;
use std::sync::Arc;

/// Default stream buffer capacity (64 KiB, DataCutter-style).
pub const DEFAULT_BUFFER_CAPACITY: usize = 64 * 1024;

/// Backing storage: either borrowed static data or a shared heap
/// allocation. Replaces `bytes::Bytes` (offline build); clones share
/// the allocation and sub-ranges adjust `start`/`end` only.
#[derive(Clone)]
enum Storage {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// An immutable, cheaply-clonable chunk of stream data.
#[derive(Clone)]
pub struct Buffer {
    storage: Storage,
    start: usize,
    end: usize,
}

impl Buffer {
    pub fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Buffer {
            storage: Storage::Shared(v.into()),
            start: 0,
            end,
        }
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Buffer {
            storage: Storage::Static(s),
            start: 0,
            end: s.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        let whole: &[u8] = match &self.storage {
            Storage::Static(s) => s,
            Storage::Shared(a) => a,
        };
        &whole[self.start..self.end]
    }

    /// Decode this buffer as one little-endian `u64`.
    ///
    /// Returns a structured [`Malformed`](crate::error::ErrorKind::Malformed)
    /// error on a short or oversized payload instead of panicking —
    /// stream data crosses trust boundaries, so demo/test filters must
    /// not `unwrap` a `try_into` on it. `who` names the decoding filter
    /// for the error report.
    pub fn u64_le(&self, who: &str) -> FilterResult<u64> {
        let bytes: [u8; 8] = self.as_slice().try_into().map_err(|_| {
            FilterError::malformed(
                who,
                format!("expected an 8-byte u64 packet, got {} bytes", self.len()),
            )
        })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Decode a little-endian `u64` at byte offset `at` (packets often
    /// carry several fields). Structured error on out-of-range reads.
    pub fn u64_le_at(&self, at: usize, who: &str) -> FilterResult<u64> {
        let end = at.checked_add(8).filter(|&e| e <= self.len());
        let Some(end) = end else {
            return Err(FilterError::malformed(
                who,
                format!(
                    "u64 field at offset {at} overruns a {}-byte packet",
                    self.len()
                ),
            ));
        };
        let bytes: [u8; 8] = self.as_slice()[at..end].try_into().expect("8 bytes");
        Ok(u64::from_le_bytes(bytes))
    }

    /// Zero-copy sub-range (shares the backing allocation).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Buffer {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Buffer {
            storage: self.storage.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl PartialEq for Buffer {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Buffer {}

impl fmt::Debug for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Buffer({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Buffer {
    fn from(v: Vec<u8>) -> Self {
        Buffer::from_vec(v)
    }
}

/// Accumulates payload up to a fixed capacity, splitting into sealed
/// buffers — the way a filter writes a large result across multiple
/// fixed-size stream buffers.
pub struct BufferBuilder {
    capacity: usize,
    current: Vec<u8>,
    sealed: Vec<Buffer>,
}

impl BufferBuilder {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        BufferBuilder {
            capacity,
            current: Vec::new(),
            sealed: Vec::new(),
        }
    }

    /// Append payload, sealing full buffers as the capacity is reached.
    pub fn push(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            let room = self.capacity - self.current.len();
            let take = room.min(bytes.len());
            self.current.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.current.len() == self.capacity {
                let full = std::mem::take(&mut self.current);
                self.sealed.push(Buffer::from_vec(full));
            }
        }
    }

    /// Seal any remaining partial buffer and return the sequence.
    pub fn finish(mut self) -> Vec<Buffer> {
        if !self.current.is_empty() {
            self.sealed.push(Buffer::from_vec(self.current));
        }
        self.sealed
    }
}

/// Reassemble a logical payload from a buffer sequence (inverse of
/// [`BufferBuilder`]).
pub fn reassemble(buffers: &[Buffer]) -> Vec<u8> {
    let total: usize = buffers.iter().map(Buffer::len).sum();
    let mut out = Vec::with_capacity(total);
    for b in buffers {
        out.extend_from_slice(b.as_slice());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_splits_at_capacity() {
        let mut b = BufferBuilder::new(4);
        b.push(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let bufs = b.finish();
        assert_eq!(bufs.len(), 3);
        assert_eq!(bufs[0].len(), 4);
        assert_eq!(bufs[1].len(), 4);
        assert_eq!(bufs[2].len(), 1);
        assert_eq!(reassemble(&bufs), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn builder_exact_multiple_has_no_tail() {
        let mut b = BufferBuilder::new(2);
        b.push(&[1, 2, 3, 4]);
        let bufs = b.finish();
        assert_eq!(bufs.len(), 2);
    }

    #[test]
    fn empty_builder_finishes_empty() {
        let b = BufferBuilder::new(8);
        assert!(b.finish().is_empty());
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Buffer::from_vec(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn u64_decode_round_trips() {
        let b = Buffer::from_vec(0xdead_beef_u64.to_le_bytes().to_vec());
        assert_eq!(b.u64_le("t").unwrap(), 0xdead_beef);
    }

    #[test]
    fn short_packet_is_a_structured_malformed_error() {
        let b = Buffer::from_vec(vec![1, 2, 3]);
        let e = b.u64_le("sum[0]").unwrap_err();
        assert_eq!(e.kind, crate::error::ErrorKind::Malformed);
        assert_eq!(e.filter, "sum[0]");
        assert!(e.message.contains("3 bytes"), "{}", e.message);
    }

    #[test]
    fn u64_at_offset_and_overrun() {
        let mut v = 7u64.to_le_bytes().to_vec();
        v.extend_from_slice(&9u64.to_le_bytes());
        let b = Buffer::from_vec(v);
        assert_eq!(b.u64_le_at(0, "t").unwrap(), 7);
        assert_eq!(b.u64_le_at(8, "t").unwrap(), 9);
        let e = b.u64_le_at(9, "t").unwrap_err();
        assert_eq!(e.kind, crate::error::ErrorKind::Malformed);
        assert!(b.u64_le_at(usize::MAX, "t").is_err(), "offset overflow");
    }

    #[test]
    fn incremental_pushes_accumulate() {
        let mut b = BufferBuilder::new(8);
        b.push(&[1, 2, 3]);
        b.push(&[4, 5]);
        let bufs = b.finish();
        assert_eq!(bufs.len(), 1);
        assert_eq!(reassemble(&bufs), vec![1, 2, 3, 4, 5]);
    }
}
