//! Elastic copy-width autoscaling driven by live telemetry.
//!
//! The §4 cost model picks a static copy width per stage at compile
//! time from *predicted* per-packet costs. At runtime the prediction can
//! be wrong — input-dependent compute, a step change in load, a noisy
//! neighbour — and the live telemetry plane already measures the truth:
//! queue depths, per-copy busy/blocked time, send-blocked and
//! recv-starved fractions. This module feeds those measurements back
//! into the width decision *online*:
//!
//! - Scalable stages are **provisioned** at `max_copies` transparent
//!   copies up front (threads, queues, probes), but only the first
//!   `width` of them are **active**: the upstream writers' round-robin
//!   only rotates over the active prefix ([`StageWidth`]), so inactive
//!   copies sit parked in a blocked receive and cost nothing but an
//!   idle thread.
//! - A [`WidthController`] ticks on the telemetry sampler's cadence,
//!   attributes the bottleneck the same way post-run calibration does
//!   (the stage with the deepest sustained input backlog that is itself
//!   busy — not starved by its upstream and not backpressured by its
//!   downstream), and grows that stage's active prefix by one copy —
//!   the new copy joins the round-robin for packets not yet routed.
//!   Under recovery this is replay-safe: targets are recorded per packet
//!   when first sent, and a rewound producer only recomputes targets for
//!   packets that were *never* sent.
//! - Shrinking retires the highest active copy after a drain barrier:
//!   only when the stage's input queues are empty **and** the retirement
//!   candidate spent the last tick starved (nothing queued, nothing in
//!   flight toward it) is it removed from the rotation. The retired copy
//!   keeps draining anything already delivered and exits normally at
//!   end-of-stream, so no packet is lost or reordered relative to a
//!   fixed-width run's merge semantics.
//! - When widening stops helping — the bottleneck stage is pinned at
//!   `max_copies` and still backlogged for `escalate_ticks` consecutive
//!   ticks — the imbalance is structural (the *decomposition* is wrong,
//!   not the width) and the controller raises an escalation advice in
//!   [`AutoscaleReport`]. The harness answers it with the existing
//!   failover machinery: re-run the decomposition DP over the measured
//!   environment and redeploy with checkpoint/restore + ack/replay
//!   handover, carrying each copy's cumulative busy time forward so
//!   merged telemetry stays monotone across the handover.
//!
//! Every decision is about *routing*, never about data: output is
//! byte-identical to a fixed-width run because reduction merges are
//! associative/commutative and the replay protocol already tolerates
//! any packet→copy assignment.

use crate::error::{FilterError, FilterResult};
use crate::telemetry::StageProbe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Hysteresis and budget knobs for the online width controller
/// (`CGP_AUTOSCALE` / `--autoscale`; see [`AutoscaleConfig::parse`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    /// Hard per-stage copy budget (`--max-copies`); stages are
    /// provisioned at this width and never grow past it.
    pub max_copies: usize,
    /// Grow when a stage's input backlog exceeds this many queued
    /// packets per active copy.
    pub grow_backlog: f64,
    /// Retire the highest active copy when it spent at least this
    /// fraction of the last tick starved for input (and the stage's
    /// queues are empty — the drain barrier).
    pub shrink_starved: f64,
    /// Ticks to wait after any width change before the next one
    /// (per stage) — the pipeline needs a tick to re-settle.
    pub cooldown_ticks: u32,
    /// Consecutive ticks the bottleneck must sit saturated at
    /// `max_copies` before escalation to re-decomposition is advised.
    pub escalate_ticks: u32,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            max_copies: 4,
            grow_backlog: 4.0,
            shrink_starved: 0.5,
            cooldown_ticks: 2,
            escalate_ticks: 8,
        }
    }
}

impl AutoscaleConfig {
    /// Parse an autoscale spec:
    ///
    /// - `0` / `off` / `false` / empty → `None` (disabled);
    /// - `1` / `on` / `true` → defaults;
    /// - comma-separated `key=value` pairs over `max`, `grow`, `shrink`,
    ///   `cooldown`, `escalate` (e.g. `max=8,grow=2,escalate=4`).
    pub fn parse(spec: &str) -> FilterResult<Option<AutoscaleConfig>> {
        let bad = |what: String| FilterError::new("autoscale", what);
        let s = spec.trim().to_ascii_lowercase();
        match s.as_str() {
            "" | "0" | "off" | "false" | "no" => return Ok(None),
            "1" | "on" | "true" | "yes" => return Ok(Some(AutoscaleConfig::default())),
            _ => {}
        }
        let mut cfg = AutoscaleConfig::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| bad(format!("expected key=value, got `{part}`")))?;
            let num = || -> FilterResult<f64> {
                value
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| bad(format!("`{key}`: not a number: {value}")))
            };
            match key.trim() {
                "max" => {
                    cfg.max_copies = num()? as usize;
                    if cfg.max_copies == 0 {
                        return Err(bad("`max`: must be at least 1".into()));
                    }
                }
                "grow" => cfg.grow_backlog = num()?.max(1.0),
                "shrink" => cfg.shrink_starved = num()?.clamp(0.0, 1.0),
                "cooldown" => cfg.cooldown_ticks = num()? as u32,
                "escalate" => cfg.escalate_ticks = (num()? as u32).max(1),
                other => return Err(bad(format!("unknown key `{other}`"))),
            }
        }
        Ok(Some(cfg))
    }
}

/// Shared handle gating how many of a stage's provisioned copies the
/// upstream round-robin currently rotates over. Writers read it per
/// packet (one relaxed load); the controller writes it on its tick.
#[derive(Debug)]
pub struct StageWidth {
    active: AtomicUsize,
    provisioned: usize,
}

impl StageWidth {
    pub fn new(initial: usize, provisioned: usize) -> Arc<StageWidth> {
        let provisioned = provisioned.max(1);
        Arc::new(StageWidth {
            active: AtomicUsize::new(initial.clamp(1, provisioned)),
            provisioned,
        })
    }

    /// Copies currently in the round-robin rotation.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Copies physically provisioned (threads + queues).
    pub fn provisioned(&self) -> usize {
        self.provisioned
    }

    pub(crate) fn set_active(&self, width: usize) {
        self.active
            .store(width.clamp(1, self.provisioned), Ordering::Relaxed);
    }
}

/// One width decision the controller made.
#[derive(Debug, Clone)]
pub struct AutoscaleEvent {
    /// Controller tick (sampler cadence units) the decision fired on.
    pub tick: u64,
    pub stage: String,
    pub from: usize,
    pub to: usize,
    /// Human-readable trigger (`backlog 9.0 packets/copy` etc.).
    pub reason: String,
}

/// What the controller did over a run ([`RunStats::autoscale`]).
///
/// [`RunStats::autoscale`]: crate::exec::RunStats
#[derive(Debug, Clone, Default)]
pub struct AutoscaleReport {
    pub events: Vec<AutoscaleEvent>,
    /// Set when widening stopped helping: the named stage sat saturated
    /// at `max_copies` with sustained backlog, so the imbalance is
    /// structural and only re-decomposition (replan + redeploy over the
    /// measured environment) can move the bottleneck.
    pub escalation: Option<String>,
}

impl AutoscaleReport {
    pub fn grows(&self) -> u64 {
        self.events.iter().filter(|e| e.to > e.from).count() as u64
    }

    pub fn shrinks(&self) -> u64 {
        self.events.iter().filter(|e| e.to < e.from).count() as u64
    }
}

/// Per-copy cumulative counters at the previous tick, for per-tick
/// deltas. (The blocked counters only advance when a blocking call
/// *completes*, so a copy parked in an indefinite receive shows busy
/// time but no blocked delta — the signals below are chosen to read
/// correctly through that.)
#[derive(Default, Clone)]
struct PrevCopy {
    busy_us: u64,
    send_us: u64,
    recv_us: u64,
}

struct WatchedStage {
    width: Arc<StageWidth>,
    probe: Arc<StageProbe>,
    /// Ticks left before this stage may change width again.
    cooldown: u32,
    /// Consecutive ticks spent saturated at `max_copies` with backlog.
    saturated: u32,
    prev: Vec<PrevCopy>,
}

/// Per-stage per-tick reading the decisions are made from.
struct Obs {
    backlog_per_copy: f64,
    queue_depth: u64,
    /// Busy-weighted send-blocked fraction over the active copies.
    send_blocked: f64,
    /// Busy-weighted recv-starved fraction over the active copies.
    starved: f64,
    /// Starved fraction of the highest active copy (the retirement
    /// candidate under a shrink).
    last_starved: f64,
}

/// Samples the live probes on the telemetry cadence and adjusts each
/// watched stage's active width (see the module docs for the policy).
pub struct WidthController {
    cfg: AutoscaleConfig,
    stages: Vec<WatchedStage>,
    tick: u64,
    report: AutoscaleReport,
}

/// Cap on recorded events: a pathological oscillation must not grow the
/// report without bound (decisions keep happening, recording stops).
const MAX_EVENTS: usize = 256;

impl WidthController {
    pub fn new(cfg: AutoscaleConfig) -> WidthController {
        WidthController {
            cfg,
            stages: Vec::new(),
            tick: 0,
            report: AutoscaleReport::default(),
        }
    }

    /// Register a scalable stage (its shared width handle and probe).
    pub fn watch(&mut self, width: Arc<StageWidth>, probe: Arc<StageProbe>) {
        let provisioned = width.provisioned();
        self.stages.push(WatchedStage {
            width,
            probe,
            cooldown: 0,
            saturated: 0,
            prev: vec![PrevCopy::default(); provisioned],
        });
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    fn observe(st: &mut WatchedStage, now: u64) -> Obs {
        let active = st.width.active();
        let queue_depth: u64 = st
            .probe
            .copies
            .iter()
            .map(|c| c.queue_depth.load(Ordering::Relaxed))
            .sum();
        let (mut busy_sum, mut send_sum, mut recv_sum) = (0u64, 0u64, 0u64);
        let mut last_starved = 0.0;
        for (c, copy) in st.probe.copies.iter().enumerate() {
            let busy = copy.busy_us(now);
            let send = copy.blocked_send_us.load(Ordering::Relaxed);
            let recv = copy.blocked_recv_us.load(Ordering::Relaxed);
            let prev = &mut st.prev[c];
            let d_busy = busy.saturating_sub(prev.busy_us);
            let d_send = send.saturating_sub(prev.send_us);
            let d_recv = recv.saturating_sub(prev.recv_us);
            prev.busy_us = busy;
            prev.send_us = send;
            prev.recv_us = recv;
            if c < active {
                busy_sum += d_busy;
                send_sum += d_send;
                recv_sum += d_recv;
                if c == active - 1 && d_busy > 0 {
                    last_starved = (d_recv as f64 / d_busy as f64).clamp(0.0, 1.0);
                }
            }
        }
        let busy = busy_sum.max(1) as f64;
        Obs {
            backlog_per_copy: queue_depth as f64 / active as f64,
            queue_depth,
            send_blocked: (send_sum as f64 / busy).clamp(0.0, 1.0),
            starved: (recv_sum as f64 / busy).clamp(0.0, 1.0),
            last_starved,
        }
    }

    /// One controller tick at clock `now` (µs). At most one width change
    /// fires per tick — the grow on the attributed bottleneck wins over
    /// any shrink — so the pipeline re-settles between decisions.
    pub fn tick(&mut self, now: u64) {
        self.tick += 1;
        let observed: Vec<Obs> = self
            .stages
            .iter_mut()
            .map(|st| Self::observe(st, now))
            .collect();
        // Bottleneck attribution, the same reading post-run calibration
        // gives the measured rates: the constraining stage is the one
        // with the deepest sustained input backlog that is itself the
        // problem — a starved stage's backlog is its upstream's fault,
        // and a send-blocked one's is its downstream's.
        let bottleneck = observed
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                o.backlog_per_copy >= self.cfg.grow_backlog
                    && o.send_blocked < 0.5
                    && o.starved < 0.5
            })
            .max_by(|(_, a), (_, b)| {
                a.backlog_per_copy
                    .partial_cmp(&b.backlog_per_copy)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i);
        let mut changed = false;
        for (i, st) in self.stages.iter_mut().enumerate() {
            let obs = &observed[i];
            let active = st.width.active();
            let cap = self.cfg.max_copies.min(st.width.provisioned());
            let cooling = st.cooldown > 0;
            if cooling {
                st.cooldown -= 1;
            }
            if bottleneck == Some(i) {
                if active < cap {
                    st.saturated = 0;
                    if !cooling && !changed {
                        st.width.set_active(active + 1);
                        st.cooldown = self.cfg.cooldown_ticks;
                        changed = true;
                        if self.report.events.len() < MAX_EVENTS {
                            self.report.events.push(AutoscaleEvent {
                                tick: self.tick,
                                stage: st.probe.name.clone(),
                                from: active,
                                to: active + 1,
                                reason: format!("backlog {:.1} packets/copy", obs.backlog_per_copy),
                            });
                        }
                    }
                } else {
                    // Saturated at the budget and still the bottleneck:
                    // widening no longer moves it.
                    st.saturated += 1;
                    if st.saturated >= self.cfg.escalate_ticks && self.report.escalation.is_none() {
                        self.report.escalation = Some(st.probe.name.clone());
                    }
                }
            } else {
                st.saturated = 0;
                // Drain barrier before retiring: queues empty *and* the
                // highest active copy spent the tick starved — nothing
                // queued and nothing in flight toward it.
                if active > 1
                    && obs.queue_depth == 0
                    && obs.last_starved >= self.cfg.shrink_starved
                    && !cooling
                    && !changed
                {
                    st.width.set_active(active - 1);
                    st.cooldown = self.cfg.cooldown_ticks;
                    changed = true;
                    if self.report.events.len() < MAX_EVENTS {
                        self.report.events.push(AutoscaleEvent {
                            tick: self.tick,
                            stage: st.probe.name.clone(),
                            from: active,
                            to: active - 1,
                            reason: format!(
                                "idle: queues drained, copy starved {:.0}% of the tick",
                                obs.last_starved * 100.0
                            ),
                        });
                    }
                }
            }
        }
    }

    /// Consume the controller's decision log at end of run.
    pub fn into_report(self) -> AutoscaleReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(width: usize) -> Arc<StageProbe> {
        StageProbe::new("f2".into(), width, false, false)
    }

    /// Make copy `c` of `p` look `started`-at with the given cumulative
    /// blocked-recv time.
    fn load_copy(p: &StageProbe, c: usize, started: u64, recv_us: u64) {
        p.copy(c).mark_started(started);
        p.copy(c).blocked_recv_us.store(recv_us, Ordering::Relaxed);
    }

    #[test]
    fn parse_accepts_the_documented_forms() {
        assert_eq!(AutoscaleConfig::parse("0").unwrap(), None);
        assert_eq!(AutoscaleConfig::parse("off").unwrap(), None);
        assert_eq!(AutoscaleConfig::parse("").unwrap(), None);
        assert_eq!(
            AutoscaleConfig::parse("1").unwrap(),
            Some(AutoscaleConfig::default())
        );
        assert_eq!(
            AutoscaleConfig::parse("on").unwrap(),
            Some(AutoscaleConfig::default())
        );
        let cfg = AutoscaleConfig::parse("max=8, grow=2, shrink=0.6, cooldown=1, escalate=3")
            .unwrap()
            .unwrap();
        assert_eq!(cfg.max_copies, 8);
        assert_eq!(cfg.grow_backlog, 2.0);
        assert_eq!(cfg.shrink_starved, 0.6);
        assert_eq!(cfg.cooldown_ticks, 1);
        assert_eq!(cfg.escalate_ticks, 3);
        assert!(AutoscaleConfig::parse("max=0").is_err());
        assert!(AutoscaleConfig::parse("bogus=1").is_err());
        assert!(AutoscaleConfig::parse("max").is_err());
        assert!(AutoscaleConfig::parse("max=lots").is_err());
    }

    #[test]
    fn stage_width_clamps_to_provisioned() {
        let w = StageWidth::new(2, 4);
        assert_eq!(w.active(), 2);
        assert_eq!(w.provisioned(), 4);
        w.set_active(9);
        assert_eq!(w.active(), 4, "clamped to provisioned");
        w.set_active(0);
        assert_eq!(w.active(), 1, "never below 1");
    }

    #[test]
    fn controller_grows_the_backlogged_busy_stage() {
        let cfg = AutoscaleConfig {
            cooldown_ticks: 0,
            ..Default::default()
        };
        let p = probe(4);
        let w = StageWidth::new(1, 4);
        let mut ctl = WidthController::new(cfg);
        ctl.watch(Arc::clone(&w), Arc::clone(&p));
        // Copy 0: fully busy since tick 1000 (no blocked time), with a
        // deep input backlog — the canonical step-load signature.
        load_copy(&p, 0, 1000, 0);
        p.copy(0).queue_depth.store(20, Ordering::Relaxed);
        ctl.tick(2000);
        assert_eq!(w.active(), 2, "backlogged busy stage widens");
        ctl.tick(3000);
        assert_eq!(w.active(), 3, "keeps widening while backlogged");
        let report = ctl.into_report();
        assert_eq!(report.grows(), 2);
        assert_eq!(report.events[0].from, 1);
        assert_eq!(report.events[0].to, 2);
        assert!(report.events[0].reason.contains("backlog"));
    }

    #[test]
    fn starved_stage_is_not_grown() {
        // Backlog alone is not attribution: a stage that spent the tick
        // starved is waiting on its upstream — widening it adds nothing.
        let cfg = AutoscaleConfig {
            cooldown_ticks: 0,
            ..Default::default()
        };
        let p = probe(4);
        let w = StageWidth::new(1, 4);
        let mut ctl = WidthController::new(cfg);
        ctl.watch(Arc::clone(&w), Arc::clone(&p));
        load_copy(&p, 0, 1000, 900); // 90% of the tick starved
        p.copy(0).queue_depth.store(20, Ordering::Relaxed);
        ctl.tick(2000);
        assert_eq!(w.active(), 1, "starved stage left alone");
    }

    #[test]
    fn cooldown_spaces_width_changes() {
        let cfg = AutoscaleConfig {
            cooldown_ticks: 2,
            ..Default::default()
        };
        let p = probe(4);
        let w = StageWidth::new(1, 4);
        let mut ctl = WidthController::new(cfg);
        ctl.watch(Arc::clone(&w), Arc::clone(&p));
        load_copy(&p, 0, 1000, 0);
        p.copy(0).queue_depth.store(20, Ordering::Relaxed);
        ctl.tick(2000);
        assert_eq!(w.active(), 2);
        ctl.tick(3000);
        ctl.tick(4000);
        assert_eq!(w.active(), 2, "cooldown holds the width");
        ctl.tick(5000);
        assert_eq!(w.active(), 3, "cooldown expired");
    }

    #[test]
    fn idle_copy_retires_only_after_drain_barrier() {
        let cfg = AutoscaleConfig {
            cooldown_ticks: 0,
            ..Default::default()
        };
        let p = probe(4);
        let w = StageWidth::new(3, 4);
        let mut ctl = WidthController::new(cfg);
        ctl.watch(Arc::clone(&w), Arc::clone(&p));
        // Copies 0-1 busy; copy 2 (highest active) spent the whole tick
        // starved and the queues are empty → drain barrier passed.
        load_copy(&p, 0, 1000, 0);
        load_copy(&p, 1, 1000, 0);
        load_copy(&p, 2, 1000, 900);
        ctl.tick(2000);
        assert_eq!(w.active(), 2, "idle copy retired");
        // With backlog present the same starvation does NOT retire the
        // next copy — the barrier requires empty queues.
        p.copy(0).queue_depth.store(1, Ordering::Relaxed);
        load_copy(&p, 1, 1000, 1800);
        ctl.tick(3000);
        assert_eq!(w.active(), 2, "no shrink while packets are queued");
        let report = ctl.into_report();
        assert_eq!(report.shrinks(), 1);
        assert!(report.events[0].reason.contains("idle"), "{report:?}");
    }

    #[test]
    fn saturated_bottleneck_escalates_to_replan_advice() {
        let cfg = AutoscaleConfig {
            max_copies: 2,
            cooldown_ticks: 0,
            escalate_ticks: 3,
            ..Default::default()
        };
        let p = probe(2);
        let w = StageWidth::new(2, 2);
        let mut ctl = WidthController::new(cfg);
        ctl.watch(Arc::clone(&w), Arc::clone(&p));
        load_copy(&p, 0, 1000, 0);
        load_copy(&p, 1, 1000, 0);
        p.copy(0).queue_depth.store(30, Ordering::Relaxed);
        ctl.tick(2000);
        ctl.tick(3000);
        assert!(
            ctl.report.escalation.is_none(),
            "not yet: {:?}",
            ctl.report.escalation
        );
        ctl.tick(4000);
        let report = ctl.into_report();
        assert_eq!(w.active(), 2, "cannot widen past the budget");
        assert_eq!(
            report.escalation.as_deref(),
            Some("f2"),
            "structural imbalance advises re-decomposition"
        );
    }

    #[test]
    fn relief_resets_the_escalation_streak() {
        let cfg = AutoscaleConfig {
            max_copies: 1,
            cooldown_ticks: 0,
            escalate_ticks: 2,
            ..Default::default()
        };
        let p = probe(1);
        let w = StageWidth::new(1, 1);
        let mut ctl = WidthController::new(cfg);
        ctl.watch(Arc::clone(&w), Arc::clone(&p));
        load_copy(&p, 0, 1000, 0);
        p.copy(0).queue_depth.store(30, Ordering::Relaxed);
        ctl.tick(2000);
        // Backlog clears before the streak completes.
        p.copy(0).queue_depth.store(0, Ordering::Relaxed);
        ctl.tick(3000);
        p.copy(0).queue_depth.store(30, Ordering::Relaxed);
        ctl.tick(4000);
        assert!(
            ctl.report.escalation.is_none(),
            "streak restarted after relief"
        );
    }
}
