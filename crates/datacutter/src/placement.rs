//! Placement descriptions: which host runs which filter copies.
//!
//! The executor in this crate runs everything on local threads; placement
//! metadata describes the *intended* distributed deployment and is consumed
//! by `cgp-grid`'s simulator (hosts, links) and by reports.

use std::fmt;

/// A named host in the execution environment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HostId(pub String);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Placement of one logical filter: one host per transparent copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlacement {
    pub stage: String,
    pub hosts: Vec<HostId>,
}

impl StagePlacement {
    pub fn width(&self) -> usize {
        self.hosts.len()
    }
}

/// A full pipeline placement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Placement {
    pub stages: Vec<StagePlacement>,
}

impl Placement {
    /// The paper's `w-w-1` style configurations: `widths[i]` copies of
    /// stage `i`, hosts named `c<i>-<copy>`.
    pub fn uniform(stage_names: &[&str], widths: &[usize]) -> Placement {
        assert_eq!(stage_names.len(), widths.len());
        Placement {
            stages: stage_names
                .iter()
                .zip(widths)
                .enumerate()
                .map(|(i, (name, w))| StagePlacement {
                    stage: (*name).to_string(),
                    hosts: (0..*w).map(|c| HostId(format!("c{i}-{c}"))).collect(),
                })
                .collect(),
        }
    }

    /// Total hosts used.
    pub fn host_count(&self) -> usize {
        self.stages.iter().map(StagePlacement::width).sum()
    }
}

/// A serialized stage assignment handed to one worker process of a
/// distributed run: which stage of the shared plan it executes, the full
/// width vector (so every worker derives the identical topology), and
/// the network endpoints of its boundary links.
///
/// Rendered/parsed as a single line so launchers can pass it through an
/// environment variable or argv without a structured codec:
///
/// ```text
/// stage=1 widths=1,2,1 listen=127.0.0.1:7101 connect=127.0.0.1:7102
/// ```
///
/// `listen`/`connect` are omitted for the first/last stage respectively.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageAssignment {
    /// Index of the stage this worker executes.
    pub stage: usize,
    /// Transparent-copy width of every stage in the pipeline.
    pub widths: Vec<usize>,
    /// Address the worker's ingress listener binds (stage > 0).
    pub listen: Option<String>,
    /// Address of the downstream worker's listener (stage < last).
    pub connect: Option<String>,
}

impl StageAssignment {
    /// Render to the one-line `key=value` form shown in the type docs.
    pub fn render(&self) -> String {
        let mut out = format!(
            "stage={} widths={}",
            self.stage,
            self.widths
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
        if let Some(l) = &self.listen {
            out.push_str(&format!(" listen={l}"));
        }
        if let Some(c) = &self.connect {
            out.push_str(&format!(" connect={c}"));
        }
        out
    }

    /// Parse the `render` form. Unknown keys are rejected (an assignment
    /// travels between processes of possibly different builds — silently
    /// dropping a key would desynchronise topology).
    pub fn parse(s: &str) -> Result<StageAssignment, String> {
        let mut out = StageAssignment::default();
        let mut saw_stage = false;
        for tok in s.split_whitespace() {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("stage assignment: expected key=value, got {tok:?}"))?;
            match key {
                "stage" => {
                    out.stage = value
                        .parse()
                        .map_err(|e| format!("stage assignment: bad stage {value:?}: {e}"))?;
                    saw_stage = true;
                }
                "widths" => {
                    out.widths = value
                        .split(',')
                        .map(|w| {
                            w.parse::<usize>()
                                .map_err(|e| format!("stage assignment: bad width {w:?}: {e}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "listen" => out.listen = Some(value.to_string()),
                "connect" => out.connect = Some(value.to_string()),
                _ => return Err(format!("stage assignment: unknown key {key:?}")),
            }
        }
        if !saw_stage || out.widths.is_empty() {
            return Err("stage assignment: missing stage= or widths=".to_string());
        }
        if out.stage >= out.widths.len() {
            return Err(format!(
                "stage assignment: stage {} out of range ({} stages)",
                out.stage,
                out.widths.len()
            ));
        }
        if out.widths.contains(&0) {
            return Err("stage assignment: zero-width stage".to_string());
        }
        Ok(out)
    }
}

impl fmt::Display for StageAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}×{}", s.stage, s.width())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_expected_hosts() {
        let p = Placement::uniform(&["read", "compute", "view"], &[2, 2, 1]);
        assert_eq!(p.host_count(), 5);
        assert_eq!(p.stages[0].hosts[1], HostId("c0-1".into()));
        assert_eq!(p.to_string(), "read×2 -> compute×2 -> view×1");
    }

    #[test]
    fn stage_assignment_roundtrips() {
        for a in [
            StageAssignment {
                stage: 0,
                widths: vec![1, 2, 1],
                listen: None,
                connect: Some("127.0.0.1:7101".into()),
            },
            StageAssignment {
                stage: 1,
                widths: vec![1, 2, 1],
                listen: Some("127.0.0.1:7101".into()),
                connect: Some("127.0.0.1:7102".into()),
            },
            StageAssignment {
                stage: 2,
                widths: vec![1, 2, 1],
                listen: Some("127.0.0.1:7102".into()),
                connect: None,
            },
        ] {
            assert_eq!(StageAssignment::parse(&a.render()).unwrap(), a);
        }
    }

    #[test]
    fn stage_assignment_rejects_malformed_input() {
        for bad in [
            "",
            "stage=1",
            "widths=1,2,1",
            "stage=3 widths=1,2,1",
            "stage=0 widths=1,0,1",
            "stage=0 widths=1,2,1 bogus=x",
            "stage=zero widths=1",
            "stage widths=1",
        ] {
            assert!(StageAssignment::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
