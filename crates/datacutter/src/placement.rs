//! Placement descriptions: which host runs which filter copies.
//!
//! The executor in this crate runs everything on local threads; placement
//! metadata describes the *intended* distributed deployment and is consumed
//! by `cgp-grid`'s simulator (hosts, links) and by reports.

use std::fmt;

/// A named host in the execution environment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HostId(pub String);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Placement of one logical filter: one host per transparent copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlacement {
    pub stage: String,
    pub hosts: Vec<HostId>,
}

impl StagePlacement {
    pub fn width(&self) -> usize {
        self.hosts.len()
    }
}

/// A full pipeline placement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Placement {
    pub stages: Vec<StagePlacement>,
}

impl Placement {
    /// The paper's `w-w-1` style configurations: `widths[i]` copies of
    /// stage `i`, hosts named `c<i>-<copy>`.
    pub fn uniform(stage_names: &[&str], widths: &[usize]) -> Placement {
        assert_eq!(stage_names.len(), widths.len());
        Placement {
            stages: stage_names
                .iter()
                .zip(widths)
                .enumerate()
                .map(|(i, (name, w))| StagePlacement {
                    stage: (*name).to_string(),
                    hosts: (0..*w).map(|c| HostId(format!("c{i}-{c}"))).collect(),
                })
                .collect(),
        }
    }

    /// Total hosts used.
    pub fn host_count(&self) -> usize {
        self.stages.iter().map(StagePlacement::width).sum()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}×{}", s.stage, s.width())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_expected_hosts() {
        let p = Placement::uniform(&["read", "compute", "view"], &[2, 2, 1]);
        assert_eq!(p.host_count(), 5);
        assert_eq!(p.stages[0].hosts[1], HostId("c0-1".into()));
        assert_eq!(p.to_string(), "read×2 -> compute×2 -> view×1");
    }
}
