//! Executor-side probes for the live telemetry plane.
//!
//! `cgp_obs::telemetry` defines the sample model and the fan-out sink;
//! this module owns the *probing*: shared, lock-light state the stream
//! endpoints and filter copies update as they run, which a sampler
//! thread in the executor reads every `CGP_STATUS_EVERY` ms without
//! stopping the pipeline.
//!
//! - [`CopyProbe`] — per filter copy: incremental busy time (start tick
//!   published at spawn, so a mid-run snapshot or a crashed copy reports
//!   real busy time, not zero), blocked-send/recv accumulators, buffer
//!   counts, input queue depth. All atomics, all relaxed.
//! - [`StageProbe`] — per logical stage: the copy probes plus the
//!   per-stage residence-latency histogram (and, on the final stage, the
//!   pipeline-wide end-to-end histogram). The histograms sit behind a
//!   `Mutex`, but each is only locked by its own copy's reader thread
//!   (uncontended fast path) and briefly by the sampler.
//! - [`LinkProbe`] — per network link: live frame/byte/dedup counters
//!   updated by the ingress/egress bridges.
//!
//! Everything here is built **only when telemetry is enabled**
//! ([`Pipeline::with_telemetry`]); with no probe attached, the stream
//! hot path pays nothing beyond an `Option` check.
//!
//! [`Pipeline::with_telemetry`]: crate::exec::Pipeline::with_telemetry

use crate::error::{FilterError, FilterResult};
use crate::stream::ReplayShared;
use cgp_obs::metrics::{Histogram, MetricsRegistry};
use cgp_obs::telemetry::{StageSample, TelemetrySample, TelemetrySampler};
use cgp_obs::{trace, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone microsecond tick shared with the trace layer, so packet
/// stamps and trace events live on one clock. Floored at 1: stamp 0
/// means "unstamped", and the epoch is lazily initialized, so the very
/// first tick of a process would otherwise read as missing.
pub(crate) fn now_us() -> u64 {
    (trace::now_us() as u64).max(1)
}

/// [`now_us`] for an [`std::time::Instant`] already in hand: no clock
/// read, just the epoch subtraction.
pub(crate) fn instant_us(at: std::time::Instant) -> u64 {
    (trace::instant_us(at) as u64).max(1)
}

/// Lock-light in-flight counters for one filter copy.
#[derive(Default)]
pub struct CopyProbe {
    /// Tick when the copy thread started (0 = not yet started). Published
    /// at spawn so busy time accrues incrementally.
    started_us: AtomicU64,
    /// Final busy time, published at copy exit (0 = still running).
    final_busy_us: AtomicU64,
    /// Busy time inherited from a previous incarnation of this copy
    /// (supervised restart, or an autoscale escalation handover that
    /// redeploys the pipeline): folded into [`busy_us`] so merged
    /// per-copy busy never jumps backwards across a restart.
    ///
    /// [`busy_us`]: CopyProbe::busy_us
    carried_us: AtomicU64,
    pub(crate) blocked_send_us: AtomicU64,
    pub(crate) blocked_recv_us: AtomicU64,
    pub(crate) buffers_in: AtomicU64,
    pub(crate) buffers_out: AtomicU64,
    /// Input queue backlog observed at the last delivery.
    pub(crate) queue_depth: AtomicU64,
}

impl CopyProbe {
    pub(crate) fn mark_started(&self, now: u64) {
        self.started_us.store(now.max(1), Ordering::Relaxed);
    }

    pub(crate) fn mark_finished(&self, busy_us: u64) {
        self.final_busy_us.store(busy_us.max(1), Ordering::Relaxed);
    }

    pub(crate) fn set_carried(&self, us: u64) {
        self.carried_us.store(us, Ordering::Relaxed);
    }

    /// Busy wall-time so far, µs, including any carried-forward time from
    /// a previous incarnation: the final value for finished copies,
    /// `now − start` for running ones, the carry alone before the copy
    /// starts.
    pub fn busy_us(&self, now: u64) -> u64 {
        self.carried_us.load(Ordering::Relaxed) + self.own_busy_us(now)
    }

    /// Busy time of *this* incarnation only (no carry) — the denominator
    /// blocked fractions are judged against, since the blocked counters
    /// also start from zero at each incarnation.
    fn own_busy_us(&self, now: u64) -> u64 {
        let fin = self.final_busy_us.load(Ordering::Relaxed);
        if fin != 0 {
            return fin;
        }
        match self.started_us.load(Ordering::Relaxed) {
            0 => 0,
            start => now.saturating_sub(start),
        }
    }

    /// Fraction of busy time spent neither send-blocked nor recv-starved.
    pub fn active_frac(&self, now: u64) -> f64 {
        let busy = self.own_busy_us(now);
        if busy == 0 {
            return 0.0;
        }
        let blocked = self.blocked_send_us.load(Ordering::Relaxed)
            + self.blocked_recv_us.load(Ordering::Relaxed);
        (1.0 - blocked as f64 / busy as f64).clamp(0.0, 1.0)
    }
}

/// Shared in-flight state for one logical stage.
pub struct StageProbe {
    pub name: String,
    pub(crate) copies: Vec<CopyProbe>,
    /// Shared-queue distribution: every copy reads the same queue, so
    /// depth aggregates by max instead of sum.
    pub(crate) shared_queue: bool,
    /// Residence latency (upstream send → delivery at this stage), µs.
    pub(crate) residence_us: Mutex<Histogram>,
    /// End-to-end latency (ingest origin → delivery), µs; `Some` only on
    /// the pipeline's final stage.
    pub(crate) e2e_us: Option<Mutex<Histogram>>,
    /// Replay state feeding this stage's input (recovery runs only), for
    /// occupancy sampling.
    pub(crate) replay: Mutex<Option<Arc<ReplayShared>>>,
}

impl StageProbe {
    pub(crate) fn new(name: String, width: usize, last: bool, shared_queue: bool) -> Arc<Self> {
        Arc::new(StageProbe {
            name,
            copies: (0..width).map(|_| CopyProbe::default()).collect(),
            shared_queue,
            residence_us: Mutex::new(Histogram::default()),
            e2e_us: last.then(|| Mutex::new(Histogram::default())),
            replay: Mutex::new(None),
        })
    }

    pub(crate) fn copy(&self, c: usize) -> &CopyProbe {
        &self.copies[c]
    }

    /// Snapshot this stage's gauges (called from the sampler thread).
    pub fn sample(&self, now: u64) -> StageSample {
        let depths = self
            .copies
            .iter()
            .map(|c| c.queue_depth.load(Ordering::Relaxed));
        let queue_depth = if self.shared_queue {
            depths.max().unwrap_or(0)
        } else {
            depths.sum()
        };
        let residence = plock(&self.residence_us).clone();
        let replay_occupancy = plock(&self.replay)
            .as_ref()
            .map_or(0, |r| r.unacked_total());
        StageSample {
            stage: self.name.clone(),
            queue_depth,
            busy_us_per_copy: self.copies.iter().map(|c| c.busy_us(now)).collect(),
            active_frac_per_copy: self.copies.iter().map(|c| c.active_frac(now)).collect(),
            blocked_send_us: self
                .copies
                .iter()
                .map(|c| c.blocked_send_us.load(Ordering::Relaxed))
                .sum(),
            blocked_recv_us: self
                .copies
                .iter()
                .map(|c| c.blocked_recv_us.load(Ordering::Relaxed))
                .sum(),
            buffers_in: self
                .copies
                .iter()
                .map(|c| c.buffers_in.load(Ordering::Relaxed))
                .sum(),
            buffers_out: self
                .copies
                .iter()
                .map(|c| c.buffers_out.load(Ordering::Relaxed))
                .sum(),
            replay_occupancy,
            residence_p50_us: residence.percentile(0.5),
            residence_p95_us: residence.percentile(0.95),
            residence_p99_us: residence.percentile(0.99),
        }
    }

    /// Snapshot of the per-stage residence-latency histogram.
    pub fn residence(&self) -> Histogram {
        plock(&self.residence_us).clone()
    }

    /// Snapshot of the end-to-end histogram (final stage only).
    pub fn e2e(&self) -> Option<Histogram> {
        self.e2e_us.as_ref().map(|h| plock(h).clone())
    }
}

/// Live counters for one network link (shared with the ingress/egress
/// bridge threads).
#[derive(Default)]
pub struct LinkProbe {
    pub frames: AtomicU64,
    pub bytes: AtomicU64,
    pub deduped: AtomicU64,
}

impl LinkProbe {
    pub(crate) fn count_frame(&self, payload_bytes: u64) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(payload_bytes, Ordering::Relaxed);
    }
}

/// Build one in-flight sample from the live probes. Called from the
/// executor's sampler thread on every tick and once more (with
/// `fin = true`) after the run finishes.
pub(crate) fn build_sample(
    source: &str,
    elapsed_us: u64,
    now: u64,
    fin: bool,
    probes: &[Option<Arc<StageProbe>>],
    pool: Option<&crate::buffer::BufferPool>,
    links: &[(u32, Arc<LinkProbe>)],
) -> TelemetrySample {
    let mut stages = Vec::new();
    let mut e2e = Histogram::default();
    for probe in probes.iter().flatten() {
        stages.push(probe.sample(now));
        if let Some(h) = probe.e2e() {
            e2e = h;
        }
    }
    let mut counters: Vec<(String, u64)> = Vec::new();
    if let Some(p) = pool {
        let st = p.stats();
        counters.push(("pool.hits".to_string(), st.hits));
        counters.push(("pool.misses".to_string(), st.misses));
        counters.push(("pool.recycled".to_string(), st.recycled));
    }
    for (link, p) in links {
        counters.push((
            format!("net.link{link}.frames"),
            p.frames.load(Ordering::Relaxed),
        ));
        counters.push((
            format!("net.link{link}.bytes"),
            p.bytes.load(Ordering::Relaxed),
        ));
        let deduped = p.deduped.load(Ordering::Relaxed);
        if deduped > 0 {
            counters.push((format!("net.link{link}.deduped"), deduped));
        }
    }
    TelemetrySample {
        source: source.to_string(),
        seq: 0, // stamped by TelemetrySampler::record
        elapsed_us,
        fin,
        stages,
        counters,
        e2e_count: e2e.count,
        e2e_p50_us: e2e.percentile(0.5),
        e2e_p95_us: e2e.percentile(0.95),
        e2e_p99_us: e2e.percentile(0.99),
    }
}

/// Telemetry configuration attached to a pipeline
/// ([`Pipeline::with_telemetry`]).
///
/// [`Pipeline::with_telemetry`]: crate::exec::Pipeline::with_telemetry
#[derive(Clone)]
pub struct TelemetryConfig {
    /// Sink + cadence; shared so callers can poll
    /// [`TelemetrySampler::latest`] while the run is live.
    pub sampler: Arc<TelemetrySampler>,
    /// Identity stamped on every sample (`local`, `worker:2`, ...).
    pub source: String,
    /// Launcher telemetry address: when set, every sample (and the final
    /// registry snapshot) is also shipped as a `Telemetry` frame.
    pub ship_to: Option<String>,
}

impl TelemetryConfig {
    pub fn new(sampler: Arc<TelemetrySampler>, source: impl Into<String>) -> Self {
        TelemetryConfig {
            sampler,
            source: source.into(),
            ship_to: None,
        }
    }

    pub fn ship_to(mut self, addr: impl Into<String>) -> Self {
        self.ship_to = Some(addr.into());
        self
    }
}

/// Decoded payload of one `Telemetry` frame: a periodic sample, a final
/// registry snapshot, or both.
#[derive(Debug, Clone, Default)]
pub struct TelemetryUpdate {
    pub source: String,
    /// Last update this source will send (its run finished).
    pub fin: bool,
    pub sample: Option<TelemetrySample>,
    pub registry: Option<MetricsRegistry>,
}

/// Encode a telemetry update as the JSON payload of a `Telemetry` frame.
pub fn encode_telemetry_payload(
    source: &str,
    fin: bool,
    sample: Option<&TelemetrySample>,
    registry: Option<&MetricsRegistry>,
) -> Vec<u8> {
    let mut o = Json::obj();
    o.set("source", Json::Str(source.to_string()));
    o.set("fin", Json::Bool(fin));
    if let Some(s) = sample {
        o.set("sample", s.to_json());
    }
    if let Some(r) = registry {
        o.set("registry", r.to_wire_json());
    }
    o.to_string().into_bytes()
}

/// Decode a `Telemetry` frame payload; structured errors on malformed
/// input (the launcher treats them like any other hardened-decode
/// failure).
pub fn decode_telemetry_payload(bytes: &[u8]) -> FilterResult<TelemetryUpdate> {
    let bad = |what: &str| FilterError::new("telemetry", format!("malformed payload: {what}"));
    let text = std::str::from_utf8(bytes).map_err(|_| bad("not utf-8"))?;
    let j = Json::parse(text).map_err(|e| bad(&e.to_string()))?;
    let source = j
        .get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing source"))?
        .to_string();
    let fin = j
        .get("fin")
        .and_then(Json::as_bool)
        .ok_or_else(|| bad("missing fin"))?;
    let sample = match j.get("sample") {
        Some(s) => Some(TelemetrySample::from_json(s).ok_or_else(|| bad("bad sample"))?),
        None => None,
    };
    let registry = match j.get("registry") {
        Some(r) => Some(MetricsRegistry::from_wire_json(r).ok_or_else(|| bad("bad registry"))?),
        None => None,
    };
    Ok(TelemetryUpdate {
        source,
        fin,
        sample,
        registry,
    })
}

fn plock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_probe_busy_is_incremental() {
        let p = CopyProbe::default();
        assert_eq!(p.busy_us(1000), 0, "not started");
        p.mark_started(1000);
        assert_eq!(p.busy_us(3500), 2500, "running: now - start");
        p.mark_finished(2600);
        assert_eq!(p.busy_us(9999), 2600, "finished: final value wins");
    }

    /// Tick 0 is the "unstamped" sentinel: both clock reads floor at 1,
    /// so an event genuinely falling in the process's first microsecond
    /// (or on the lazily-initialized epoch itself) is still
    /// distinguishable from "never stamped".
    #[test]
    fn origin_tick_sentinel_reserves_zero() {
        assert!(now_us() >= 1);
        assert!(instant_us(std::time::Instant::now()) >= 1);
        // A copy started at raw tick 0 must still read as started —
        // mark_started floors the stamp, so busy time accrues instead of
        // reporting 0 forever.
        let p = CopyProbe::default();
        p.mark_started(0);
        assert_eq!(p.busy_us(5), 4, "floored start tick 1, busy = now - 1");
        assert!(p.busy_us(1) == 0, "same-tick snapshot: no busy yet");
        // Clock skew between sampler and copy never wraps: busy
        // saturates at 0 when now < start.
        let q = CopyProbe::default();
        q.mark_started(1000);
        assert_eq!(q.busy_us(999), 0, "saturating, not wrapping");
        // A copy whose entire life fit in the first microsecond (raw
        // busy 0) still publishes a nonzero final value — 0 would read
        // as "still running" and busy would jump back to now - start.
        q.mark_finished(0);
        assert_eq!(q.busy_us(5000), 1, "floored final value wins");
    }

    /// Residence values sit right against the sentinel when a packet is
    /// sent and delivered within the same floored tick: the histogram
    /// must take 0 and 1 as ordinary values and keep them through a
    /// cross-thread merge.
    #[test]
    fn histogram_merges_sentinel_adjacent_residences() {
        let mut a = Histogram::default();
        a.record(0); // delivered on the sender's tick
        a.record(1); // one floored tick later
        let mut b = Histogram::default();
        b.record(1);
        b.record(u64::MAX); // wrapped/garbage stamp parks in the top bucket
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.min, 0);
        assert_eq!(a.max, u64::MAX);
        // Quantiles stay near the sentinel-adjacent values (the median
        // interpolates inside the [1,2) bucket) — they neither vanish
        // nor smear toward the garbage stamp.
        assert_eq!(a.percentile(0.0), 0);
        assert!((1..=2).contains(&a.percentile(0.5)));
        assert_eq!(a.percentile(1.0), u64::MAX);
    }

    /// Regression (busy accounting across copy restarts): a restarted
    /// copy's incremental busy counter restarts from its own epoch, so
    /// without the carry the merged per-copy busy jumps backwards — and
    /// blocked fractions computed against the *merged* busy can exceed
    /// 1.0. The carry folds into `busy_us` but not into the denominator
    /// `active_frac` judges blocked time against.
    #[test]
    fn carried_busy_folds_in_without_skewing_active_frac() {
        let p = CopyProbe::default();
        p.set_carried(5000);
        assert_eq!(p.busy_us(1000), 5000, "carry alone before (re)start");
        p.mark_started(1000);
        assert_eq!(p.busy_us(3000), 7000, "carry + this incarnation");
        p.blocked_send_us.store(1000, Ordering::Relaxed);
        assert!(
            (p.active_frac(3000) - 0.5).abs() < 1e-9,
            "active fraction judges only this incarnation: blocked 1000 \
             of own busy 2000, not of merged 7000"
        );
        p.mark_finished(2000);
        assert_eq!(p.busy_us(9999), 7000, "final value still carries");
    }

    #[test]
    fn active_frac_subtracts_blocked_time() {
        let p = CopyProbe::default();
        p.mark_started(1000);
        p.blocked_send_us.store(250, Ordering::Relaxed);
        p.blocked_recv_us.store(250, Ordering::Relaxed);
        assert!((p.active_frac(2000) - 0.5).abs() < 1e-9);
        // Blocked can transiently exceed busy (racy reads): clamped.
        p.blocked_send_us.store(5000, Ordering::Relaxed);
        assert_eq!(p.active_frac(2000), 0.0);
    }

    #[test]
    fn stage_probe_samples_gauges() {
        let probe = StageProbe::new("f2".into(), 2, true, false);
        probe.copy(0).mark_started(1000);
        probe.copy(1).mark_started(1000);
        probe.copy(0).queue_depth.store(3, Ordering::Relaxed);
        probe.copy(1).queue_depth.store(4, Ordering::Relaxed);
        probe.copy(0).buffers_in.store(10, Ordering::Relaxed);
        plock(&probe.residence_us).record(100);
        if let Some(h) = probe.e2e_us.as_ref() {
            plock(h).record(900);
        }
        let s = probe.sample(2000);
        assert_eq!(s.stage, "f2");
        assert_eq!(s.queue_depth, 7, "round-robin depths sum");
        assert_eq!(s.busy_us_per_copy, vec![1000, 1000]);
        assert_eq!(s.buffers_in, 10);
        assert_eq!(s.residence_p50_us, 100);
        assert_eq!(probe.e2e().unwrap().count, 1);
    }

    #[test]
    fn shared_queue_depth_aggregates_by_max() {
        let probe = StageProbe::new("f1".into(), 2, false, true);
        probe.copy(0).queue_depth.store(5, Ordering::Relaxed);
        probe.copy(1).queue_depth.store(5, Ordering::Relaxed);
        assert_eq!(probe.sample(0).queue_depth, 5);
    }

    #[test]
    fn telemetry_payload_roundtrip() {
        let mut reg = MetricsRegistry::new();
        reg.counter("net.link1.frames", 3);
        reg.observe("stage.f1.residence_us", 120);
        let sample = TelemetrySample {
            source: "worker:0".into(),
            seq: 4,
            elapsed_us: 10,
            fin: false,
            stages: Vec::new(),
            counters: vec![("pool.hits".into(), 1)],
            ..Default::default()
        };
        let bytes = encode_telemetry_payload("worker:0", true, Some(&sample), Some(&reg));
        let update = decode_telemetry_payload(&bytes).unwrap();
        assert_eq!(update.source, "worker:0");
        assert!(update.fin);
        assert_eq!(update.sample.unwrap(), sample);
        let back = update.registry.unwrap();
        assert_eq!(back.get_counter("net.link1.frames"), 3);
        assert_eq!(
            back.get_histogram("stage.f1.residence_us"),
            reg.get_histogram("stage.f1.residence_us")
        );
    }

    #[test]
    fn telemetry_payload_rejects_malformed() {
        assert!(decode_telemetry_payload(b"\xff\xfe").is_err());
        assert!(decode_telemetry_payload(b"{}").is_err());
        assert!(decode_telemetry_payload(b"{\"source\":\"x\"}").is_err());
        assert!(
            decode_telemetry_payload(b"{\"source\":\"x\",\"fin\":false,\"sample\":3}").is_err()
        );
        assert!(decode_telemetry_payload(
            b"{\"source\":\"x\",\"fin\":false,\"registry\":{\"counters\":1}}"
        )
        .is_err());
    }
}
