//! Streams: how filters are logically connected (Section 2.2).
//!
//! A stream carries fixed-size [`Buffer`]s from a logical producer filter
//! to a logical consumer filter. Either side may be *transparently copied*
//! (Section 2.2, "Transparent copies"): the runtime preserves the illusion
//! of one logical point-to-point stream while distributing buffers among
//! the copies — round-robin for load balancing, or through a shared
//! (demand-driven) queue.

use crate::buffer::Buffer;
use crate::channel::{bounded, bounded_cancellable, Receiver, Sender};
use crate::error::{FilterError, FilterResult};
use crate::fault::RunControl;
use cgp_obs::trace::{self, PID_RUNTIME};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stalls shorter than this are not worth a trace event (they would
/// dominate the trace without carrying signal); they still count
/// toward the accumulated blocked duration.
const STALL_EVENT_THRESHOLD: Duration = Duration::from_micros(100);

/// How a producer distributes buffers among consumer copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distribution {
    /// Rotate through consumer copies (DataCutter's load-balancing default).
    #[default]
    RoundRobin,
    /// One shared queue: whichever consumer copy is free takes the next
    /// buffer (demand-driven).
    Shared,
}

enum Msg {
    Data(Buffer),
    /// A producer copy finished its unit of work.
    End,
}

/// Reading end held by one consumer copy.
pub struct StreamReader {
    rx: Receiver<Msg>,
    producers_remaining: usize,
    /// Locally drained messages not yet handed to the filter. Filled by
    /// the adaptive drain: after a blocking receive delivers one message,
    /// up to `batch - 1` more are taken under a single extra lock
    /// acquisition, so a busy consumer amortizes synchronization while an
    /// idle one keeps per-packet latency.
    pending: VecDeque<Msg>,
    /// Max messages moved per lock acquisition; 1 disables batching.
    batch: usize,
    buffers_read: u64,
    bytes_read: u64,
    blocked: Duration,
    /// Trace thread id of the owning filter copy (see
    /// [`StreamReader::set_trace_tid`]).
    tid: u32,
    /// Run-wide control (cancellation + progress), when the executor
    /// runs with a deadline/stall watchdog.
    control: Option<Arc<RunControl>>,
    /// Set when a receive was aborted by run cancellation — the copy was
    /// blocked here when the watchdog fired.
    cancelled_while_blocked: bool,
}

impl StreamReader {
    /// Set the adaptive-drain batch size (messages moved per lock
    /// acquisition); 1 restores strict per-packet operation.
    pub fn set_batch(&mut self, batch: usize) {
        self.batch = batch.max(1);
    }

    /// Blocking read; `None` once every producer copy has closed.
    pub fn read(&mut self) -> Option<Buffer> {
        loop {
            // Cancellation takes priority over locally drained packets,
            // matching the channel's cancel-beats-queued-data rule: a
            // cancelled pipeline stops moving data even if this copy
            // already holds some.
            if !self.pending.is_empty() && self.control.as_ref().is_some_and(|c| c.is_cancelled()) {
                self.pending.clear();
                return None;
            }
            match self.pending.pop_front() {
                Some(Msg::Data(b)) => return Some(self.account(b)),
                Some(Msg::End) => {
                    self.producers_remaining -= 1;
                    continue;
                }
                None => {}
            }
            if self.producers_remaining == 0 {
                return None;
            }
            let wait_start = Instant::now();
            let msg = self.rx.recv();
            let waited = wait_start.elapsed();
            self.blocked += waited;
            if trace::enabled() && waited >= STALL_EVENT_THRESHOLD {
                let end_us = trace::now_us();
                trace::complete(
                    "blocked_on_recv",
                    "stall",
                    end_us - waited.as_secs_f64() * 1e6,
                    waited.as_secs_f64() * 1e6,
                    PID_RUNTIME,
                    self.tid,
                    vec![],
                );
            }
            match msg {
                Ok(m) => {
                    self.pending.push_back(m);
                    if self.batch > 1 {
                        // Adaptive drain: whatever else is already queued
                        // comes along under one extra lock acquisition.
                        // Errors here (cancel/disconnect) are surfaced by
                        // the checks at the top of the loop.
                        let _ = self.rx.try_recv_batch(self.batch - 1, &mut self.pending);
                    }
                }
                Err(_) => {
                    // All senders dropped, or the run was cancelled out
                    // from under a blocked receive.
                    if self.control.as_ref().is_some_and(|c| c.is_cancelled()) {
                        self.cancelled_while_blocked = true;
                    }
                    return None;
                }
            }
        }
    }

    /// Per-packet accounting for a buffer about to be handed to the
    /// filter: stats, progress for the stall detector, trace event.
    fn account(&mut self, b: Buffer) -> Buffer {
        self.buffers_read += 1;
        self.bytes_read += b.len() as u64;
        if let Some(c) = &self.control {
            c.note_progress();
        }
        if trace::enabled() {
            trace::instant(
                "recv",
                "packet",
                PID_RUNTIME,
                self.tid,
                vec![("bytes", (b.len() as u64).into())],
            );
        }
        b
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.buffers_read, self.bytes_read)
    }

    /// Whether a blocking receive on this endpoint was aborted by run
    /// cancellation (the stall report uses this to name wedged copies).
    pub fn cancelled_while_blocked(&self) -> bool {
        self.cancelled_while_blocked
    }

    /// Total time this endpoint spent inside blocking receives — i.e.
    /// the copy was starved waiting for upstream data.
    pub fn blocked(&self) -> Duration {
        self.blocked
    }

    /// Set the trace row for per-packet and stall events (the executor
    /// assigns one tid per filter copy).
    pub fn set_trace_tid(&mut self, tid: u32) {
        self.tid = tid;
    }
}

/// Writing end held by one producer copy.
pub struct StreamWriter {
    txs: Vec<Sender<Msg>>,
    distribution: Distribution,
    next: usize,
    buffers_written: u64,
    bytes_written: u64,
    closed: bool,
    blocked: Duration,
    /// Trace thread id of the owning filter copy (see
    /// [`StreamWriter::set_trace_tid`]).
    tid: u32,
    /// Run-wide control (cancellation + progress), when the executor
    /// runs with a deadline/stall watchdog.
    control: Option<Arc<RunControl>>,
    /// Set when a send was aborted by run cancellation — the copy was
    /// blocked here (downstream backpressure) when the watchdog fired.
    cancelled_while_blocked: bool,
}

impl StreamWriter {
    /// Send one buffer to (one copy of) the logical consumer.
    pub fn write(&mut self, buf: Buffer) -> FilterResult<()> {
        if self.closed {
            return Err(FilterError::new("stream", "write after close"));
        }
        self.buffers_written += 1;
        let bytes = buf.len() as u64;
        self.bytes_written += bytes;
        let target = match self.distribution {
            Distribution::RoundRobin => {
                let t = self.next % self.txs.len();
                self.next += 1;
                t
            }
            Distribution::Shared => 0,
        };
        // Queue depth *before* the send: how much backlog the consumer
        // already has. Only sampled when tracing (it takes the queue
        // lock).
        let tracing = trace::enabled();
        let depth = if tracing {
            self.txs[target].len() as u64
        } else {
            0
        };
        let wait_start = Instant::now();
        let sent = self.txs[target].send(Msg::Data(buf));
        let waited = wait_start.elapsed();
        self.blocked += waited;
        if tracing {
            if waited >= STALL_EVENT_THRESHOLD {
                let end_us = trace::now_us();
                trace::complete(
                    "blocked_on_send",
                    "stall",
                    end_us - waited.as_secs_f64() * 1e6,
                    waited.as_secs_f64() * 1e6,
                    PID_RUNTIME,
                    self.tid,
                    vec![("queue_depth", depth.into())],
                );
            }
            trace::instant(
                "send",
                "packet",
                PID_RUNTIME,
                self.tid,
                vec![("bytes", bytes.into()), ("queue_depth", depth.into())],
            );
        }
        match sent {
            Ok(()) => {
                if let Some(c) = &self.control {
                    c.note_progress();
                }
                Ok(())
            }
            Err(_) if self.control.as_ref().is_some_and(|c| c.is_cancelled()) => {
                self.cancelled_while_blocked = true;
                Err(FilterError::cancelled(
                    "stream",
                    "run cancelled during send",
                ))
            }
            Err(_) => Err(FilterError::new("stream", "consumer hung up")),
        }
    }

    /// Send a run of buffers, amortizing lock acquisitions and condvar
    /// wakeups over the whole run instead of paying one per packet.
    /// Round-robin distribution is preserved exactly: each consumer copy
    /// receives the same subsequence, in the same order, as `len` calls
    /// to [`write`](Self::write) would have produced.
    pub fn write_batch(&mut self, bufs: Vec<Buffer>) -> FilterResult<()> {
        if self.closed {
            return Err(FilterError::new("stream", "write after close"));
        }
        if bufs.is_empty() {
            return Ok(());
        }
        let count = bufs.len() as u64;
        let bytes: u64 = bufs.iter().map(|b| b.len() as u64).sum();
        self.buffers_written += count;
        self.bytes_written += bytes;
        // Group the run by target queue. Shared distribution and width-1
        // round-robin collapse to a single group; multi-consumer
        // round-robin rotates per packet, exactly like `write`.
        let targets = self.txs.len();
        let mut per_target: Vec<VecDeque<Msg>> = (0..targets).map(|_| VecDeque::new()).collect();
        for buf in bufs {
            let target = match self.distribution {
                Distribution::RoundRobin => {
                    let t = self.next % targets;
                    self.next += 1;
                    t
                }
                Distribution::Shared => 0,
            };
            per_target[target].push_back(Msg::Data(buf));
        }
        let tracing = trace::enabled();
        for (target, mut batch) in per_target.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let n = batch.len() as u64;
            let depth = if tracing {
                self.txs[target].len() as u64
            } else {
                0
            };
            let wait_start = Instant::now();
            let sent = self.txs[target].send_batch(&mut batch);
            let waited = wait_start.elapsed();
            self.blocked += waited;
            if tracing {
                if waited >= STALL_EVENT_THRESHOLD {
                    let end_us = trace::now_us();
                    trace::complete(
                        "blocked_on_send",
                        "stall",
                        end_us - waited.as_secs_f64() * 1e6,
                        waited.as_secs_f64() * 1e6,
                        PID_RUNTIME,
                        self.tid,
                        vec![("queue_depth", depth.into())],
                    );
                }
                trace::instant(
                    "send_batch",
                    "packet",
                    PID_RUNTIME,
                    self.tid,
                    vec![("count", n.into()), ("queue_depth", depth.into())],
                );
            }
            match sent {
                Ok(()) => {
                    if let Some(c) = &self.control {
                        c.note_progress();
                    }
                }
                Err(_) if self.control.as_ref().is_some_and(|c| c.is_cancelled()) => {
                    self.cancelled_while_blocked = true;
                    return Err(FilterError::cancelled(
                        "stream",
                        "run cancelled during send",
                    ));
                }
                Err(_) => return Err(FilterError::new("stream", "consumer hung up")),
            }
        }
        Ok(())
    }

    /// Whether a blocking send on this endpoint was aborted by run
    /// cancellation (the stall report uses this to name wedged copies).
    pub fn cancelled_while_blocked(&self) -> bool {
        self.cancelled_while_blocked
    }

    /// Signal end-of-work to every consumer copy. Idempotent.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for tx in &self.txs {
            let _ = tx.send(Msg::End);
        }
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.buffers_written, self.bytes_written)
    }

    /// Total time this endpoint spent inside blocking sends — i.e. the
    /// copy was throttled by downstream backpressure.
    pub fn blocked(&self) -> Duration {
        self.blocked
    }

    /// Set the trace row for per-packet and stall events (the executor
    /// assigns one tid per filter copy).
    pub fn set_trace_tid(&mut self, tid: u32) {
        self.tid = tid;
    }
}

impl Drop for StreamWriter {
    fn drop(&mut self) {
        self.close();
    }
}

/// Build the endpoints of one logical stream between `producers` copies of
/// the upstream filter and `consumers` copies of the downstream filter.
///
/// Returns one writer per producer copy and one reader per consumer copy.
/// `capacity` bounds each underlying queue (buffers in flight), providing
/// backpressure.
pub fn logical_stream(
    producers: usize,
    consumers: usize,
    capacity: usize,
    distribution: Distribution,
) -> (Vec<StreamWriter>, Vec<StreamReader>) {
    logical_stream_controlled(producers, consumers, capacity, distribution, None)
}

/// [`logical_stream`] with run-wide control attached: channels become
/// cancellable through the control's token, and every successful
/// send/receive bumps its progress counter (for the stall detector).
pub fn logical_stream_controlled(
    producers: usize,
    consumers: usize,
    capacity: usize,
    distribution: Distribution,
    control: Option<Arc<RunControl>>,
) -> (Vec<StreamWriter>, Vec<StreamReader>) {
    assert!(producers > 0 && consumers > 0);
    assert!(capacity > 0);
    let channel = |cap: usize| match &control {
        Some(c) => bounded_cancellable(cap, c.token()),
        None => bounded(cap),
    };
    let reader = |rx: Receiver<Msg>| StreamReader {
        rx,
        producers_remaining: producers,
        pending: VecDeque::new(),
        batch: 1,
        buffers_read: 0,
        bytes_read: 0,
        blocked: Duration::ZERO,
        tid: 0,
        control: control.clone(),
        cancelled_while_blocked: false,
    };
    let writer = |txs: Vec<Sender<Msg>>, next: usize| StreamWriter {
        txs,
        distribution,
        next,
        buffers_written: 0,
        bytes_written: 0,
        closed: false,
        blocked: Duration::ZERO,
        tid: 0,
        control: control.clone(),
        cancelled_while_blocked: false,
    };
    match distribution {
        Distribution::RoundRobin => {
            // One queue per consumer copy; every producer can reach every
            // consumer and rotates among them. Each producer sends one End
            // per consumer; each consumer therefore waits for `producers`
            // Ends.
            let mut txs_per_consumer = Vec::with_capacity(consumers);
            let mut readers = Vec::with_capacity(consumers);
            for _ in 0..consumers {
                let (tx, rx) = channel(capacity);
                txs_per_consumer.push(tx);
                readers.push(reader(rx));
            }
            let writers = (0..producers)
                // Stagger start positions so multiple producers do not
                // all hit consumer 0 first.
                .map(|p| writer(txs_per_consumer.clone(), p))
                .collect();
            (writers, readers)
        }
        Distribution::Shared => {
            // One shared MPMC queue; consumers race for buffers. Each
            // producer sends `consumers` Ends so that every consumer
            // eventually sees `producers` Ends.
            let (tx, rx) = channel(capacity);
            let writers = (0..producers)
                .map(|_| writer(vec![tx.clone(); consumers], 0))
                .collect();
            let readers = (0..consumers).map(|_| reader(rx.clone())).collect();
            (writers, readers)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(tag: u8) -> Buffer {
        Buffer::from_vec(vec![tag])
    }

    #[test]
    fn point_to_point_delivers_in_order() {
        let (mut ws, mut rs) = logical_stream(1, 1, 16, Distribution::RoundRobin);
        for t in 0..5 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        let mut seen = Vec::new();
        while let Some(b) = rs[0].read() {
            seen.push(b.as_slice()[0]);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn round_robin_distributes_evenly() {
        let (mut ws, mut rs) = logical_stream(1, 3, 16, Distribution::RoundRobin);
        for t in 0..9 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        for (c, r) in rs.iter_mut().enumerate() {
            let mut seen = Vec::new();
            while let Some(b) = r.read() {
                seen.push(b.as_slice()[0]);
            }
            assert_eq!(seen.len(), 3, "consumer {c}");
            for v in seen {
                assert_eq!(v as usize % 3, c, "round robin order");
            }
        }
    }

    #[test]
    fn multiple_producers_all_must_close() {
        let (mut ws, mut rs) = logical_stream(2, 1, 16, Distribution::RoundRobin);
        ws[0].write(buf(1)).unwrap();
        ws[1].write(buf(2)).unwrap();
        ws[0].close();
        // Reader must still see producer 1's buffer, then wait for its End.
        ws[1].close();
        let mut n = 0;
        while rs[0].read().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn shared_queue_consumed_exactly_once() {
        let (mut ws, rs) = logical_stream(1, 2, 32, Distribution::Shared);
        for t in 0..10 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        let handles: Vec<_> = rs
            .into_iter()
            .map(|mut r| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(b) = r.read() {
                        got.push(b.as_slice()[0]);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u8> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        assert_eq!(all, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn write_after_close_errors() {
        let (mut ws, _rs) = logical_stream(1, 1, 4, Distribution::RoundRobin);
        ws[0].close();
        assert!(ws[0].write(buf(0)).is_err());
    }

    #[test]
    fn drop_closes_stream() {
        let (ws, mut rs) = logical_stream(1, 1, 4, Distribution::RoundRobin);
        drop(ws);
        assert!(rs[0].read().is_none());
    }

    #[test]
    fn staggered_start_balances_multi_producer_round_robin() {
        let (mut ws, mut rs) = logical_stream(2, 2, 32, Distribution::RoundRobin);
        // each producer writes 2 buffers
        ws[0].write(buf(0)).unwrap();
        ws[0].write(buf(1)).unwrap();
        ws[1].write(buf(2)).unwrap();
        ws[1].write(buf(3)).unwrap();
        ws.iter_mut().for_each(StreamWriter::close);
        let c0: Vec<u8> = std::iter::from_fn(|| rs[0].read())
            .map(|b| b.as_slice()[0])
            .collect();
        let c1: Vec<u8> = std::iter::from_fn(|| rs[1].read())
            .map(|b| b.as_slice()[0])
            .collect();
        assert_eq!(c0.len(), 2);
        assert_eq!(c1.len(), 2);
    }

    #[test]
    fn stats_track_buffers_and_bytes() {
        let (mut ws, mut rs) = logical_stream(1, 1, 4, Distribution::RoundRobin);
        ws[0].write(Buffer::from_vec(vec![0; 10])).unwrap();
        ws[0].write(Buffer::from_vec(vec![0; 5])).unwrap();
        assert_eq!(ws[0].stats(), (2, 15));
        ws[0].close();
        while rs[0].read().is_some() {}
        assert_eq!(rs[0].stats(), (2, 15));
    }
}
