//! Streams: how filters are logically connected (Section 2.2).
//!
//! A stream carries fixed-size [`Buffer`]s from a logical producer filter
//! to a logical consumer filter. Either side may be *transparently copied*
//! (Section 2.2, "Transparent copies"): the runtime preserves the illusion
//! of one logical point-to-point stream while distributing buffers among
//! the copies — round-robin for load balancing, or through a shared
//! (demand-driven) queue.
//!
//! ## Ack/replay delivery (recovery)
//!
//! When a pipeline runs with recovery enabled
//! ([`Pipeline::with_recovery`]), every data message carries the producer
//! copy index and a producer-global sequence number. The endpoints then
//! cooperate on an upstream-backup protocol:
//!
//! * **Producers** keep each sent packet in a per-(producer, consumer)
//!   replay buffer until the consumer acknowledges it. Sends whose
//!   sequence number is below the producer's high-water mark (a restarted
//!   producer regenerating output it already sent) are suppressed — the
//!   original is either still buffered or already processed.
//! * **Consumers** acknowledge cumulatively by publishing a per-producer
//!   watermark ("all sequence numbers below W are durable here") at
//!   durability boundaries: every packet for stateless stages, checkpoint
//!   commits for stateful ones. Acks ride on shared atomics rather than a
//!   reverse channel — the in-process analogue of piggybacking them on
//!   the channel protocol.
//! * **On restart** a consumer resets its watermarks to the acknowledged
//!   prefix and pre-loads every unacknowledged packet from the replay
//!   buffers back into its delivery queue; sequence-based dedup (accept
//!   only `seq >= watermark`) then discards the in-queue originals the
//!   replay duplicated, so each packet is processed effectively exactly
//!   once.
//!
//! Replay needs a deterministic packet→consumer mapping to requeue
//! packets where the originals went, so it is only built for round-robin
//! distribution (where the target is a pure function of the sequence
//! number); the executor rejects recovery + shared queues.
//!
//! [`Pipeline::with_recovery`]: crate::exec::Pipeline::with_recovery

use crate::buffer::Buffer;
use crate::channel::{bounded, bounded_cancellable, Receiver, RecvError, SendError, Sender};
use crate::error::{FilterError, FilterResult};
use crate::fault::RunControl;
use crate::ring::{self, RingReceiver, RingSender};
use crate::telemetry::{instant_us, StageProbe};
use crate::width::StageWidth;
use cgp_obs::metrics::Histogram;
use cgp_obs::trace::{self, PID_RUNTIME};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Stalls shorter than this are not worth a trace event (they would
/// dominate the trace without carrying signal); they still count
/// toward the accumulated blocked duration.
const STALL_EVENT_THRESHOLD: Duration = Duration::from_micros(100);

/// Lock a mutex, tolerating poisoning (a replay buffer is plain data —
/// a panicking peer thread cannot leave it logically corrupt).
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How a producer distributes buffers among consumer copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distribution {
    /// Rotate through consumer copies (DataCutter's load-balancing default).
    #[default]
    RoundRobin,
    /// One shared queue: whichever consumer copy is free takes the next
    /// buffer (demand-driven).
    Shared,
}

/// Sent-but-unacknowledged `(seq, packet)` pairs for one
/// producer→consumer pair, in sequence order.
type UnackedQueue = Mutex<VecDeque<(u64, Buffer)>>;

enum Msg {
    /// One packet from producer copy `from`, the `seq`-th packet that
    /// producer ever wrote on this logical stream. `from`/`seq` are only
    /// meaningful under recovery; without it they are always 0 and
    /// ignored.
    Data {
        from: u32,
        seq: u64,
        /// Tick when the packet was sent, µs (0 = unstamped: telemetry
        /// off, or a packet re-delivered from a replay buffer).
        sent_us: u64,
        /// Ingest-origin tick propagated from the pipeline's source
        /// stage, µs (0 = unknown, e.g. across a process boundary where
        /// clocks are not comparable).
        origin_us: u64,
        buf: Buffer,
    },
    /// A producer copy finished its unit of work.
    End,
}

/// Sending half of one queue backing a logical stream: the mutex
/// channel (general: MPMC, N→1 fan-in, replay-friendly) or the
/// lock-free SPSC ring (selected automatically for 1→1 non-recovering
/// links). Both expose identical blocking/batched/cancel semantics, so
/// the stream layer is agnostic beyond this dispatch.
enum MsgTx {
    Chan(Sender<Msg>),
    Ring(RingSender<Msg>),
}

impl MsgTx {
    fn send(&self, msg: Msg) -> Result<(), SendError<Msg>> {
        match self {
            MsgTx::Chan(tx) => tx.send(msg),
            MsgTx::Ring(tx) => tx.send(msg),
        }
    }

    fn send_batch(&self, batch: &mut VecDeque<Msg>) -> Result<(), SendError<VecDeque<Msg>>> {
        match self {
            MsgTx::Chan(tx) => tx.send_batch(batch),
            MsgTx::Ring(tx) => tx.send_batch(batch),
        }
    }

    fn len(&self) -> usize {
        match self {
            MsgTx::Chan(tx) => tx.len(),
            MsgTx::Ring(tx) => tx.len(),
        }
    }
}

/// Receiving half, mirroring [`MsgTx`].
enum MsgRx {
    Chan(Receiver<Msg>),
    Ring(RingReceiver<Msg>),
}

impl MsgRx {
    fn recv(&self) -> Result<Msg, RecvError> {
        match self {
            MsgRx::Chan(rx) => rx.recv(),
            MsgRx::Ring(rx) => rx.recv(),
        }
    }

    fn try_recv_batch(&self, max: usize, out: &mut VecDeque<Msg>) -> Result<usize, RecvError> {
        match self {
            MsgRx::Chan(rx) => rx.try_recv_batch(max, out),
            MsgRx::Ring(rx) => rx.try_recv_batch(max, out),
        }
    }

    fn len(&self) -> usize {
        match self {
            MsgRx::Chan(rx) => rx.len(),
            MsgRx::Ring(rx) => rx.len(),
        }
    }
}

/// Ack/replay state shared by every endpoint of one logical stream
/// (recovery runs only). Indexing is `[producer][consumer]`.
pub(crate) struct ReplayShared {
    /// `acked[p][c]`: every packet from producer `p` with `seq <` this
    /// value is durable at consumer `c`. Written by the consumer at ack
    /// boundaries, read by the producer (to prune) and by the consumer
    /// itself on restart (to reset its watermark).
    acked: Vec<Vec<AtomicU64>>,
    /// `unacked[p][c]`: sent-but-unacknowledged `(seq, packet)` pairs in
    /// sequence order. Bounded by the ack cadence: at most
    /// `checkpoint_every + queue capacity` entries per pair.
    unacked: Vec<Vec<UnackedQueue>>,
    /// `order[c]`: the `(producer, seq)` consumption order at consumer `c`
    /// since its last ack commit. With several producers, per-producer
    /// sequence order alone does not pin down the interleaving the failed
    /// attempt actually processed — and a restarted *stateful* consumer
    /// must regenerate its downstream writes in the original order for
    /// the writer's sequence-based suppression to line up. Survives the
    /// consumer's restart precisely because it lives here, not in the
    /// reader. Cleared on every ack commit (acked packets never replay).
    order: Vec<Mutex<Vec<(u32, u64)>>>,
}

impl ReplayShared {
    fn new(producers: usize, consumers: usize) -> Self {
        ReplayShared {
            acked: (0..producers)
                .map(|_| (0..consumers).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            unacked: (0..producers)
                .map(|_| {
                    (0..consumers)
                        .map(|_| Mutex::new(VecDeque::new()))
                        .collect()
                })
                .collect(),
            order: (0..consumers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Total sent-but-unacknowledged packets across every
    /// producer→consumer pair (replay-buffer occupancy, for telemetry).
    pub(crate) fn unacked_total(&self) -> u64 {
        self.unacked
            .iter()
            .flatten()
            .map(|q| plock(q).len() as u64)
            .sum()
    }
}

/// Reading end held by one consumer copy.
pub struct StreamReader {
    rx: MsgRx,
    producers_remaining: usize,
    /// Locally drained messages not yet handed to the filter. Filled by
    /// the adaptive drain: after a blocking receive delivers one message,
    /// up to `batch - 1` more are taken under a single extra lock
    /// acquisition, so a busy consumer amortizes synchronization while an
    /// idle one keeps per-packet latency.
    pending: VecDeque<Msg>,
    /// Max messages moved per lock acquisition; 1 disables batching.
    batch: usize,
    buffers_read: u64,
    bytes_read: u64,
    blocked: Duration,
    /// Trace thread id of the owning filter copy (see
    /// [`StreamReader::set_trace_tid`]).
    tid: u32,
    /// Run-wide control (cancellation + progress), when the executor
    /// runs with a deadline/stall watchdog.
    control: Option<Arc<RunControl>>,
    /// Set when a receive was aborted by run cancellation — the copy was
    /// blocked here when the watchdog fired.
    cancelled_while_blocked: bool,
    /// Which consumer copy this reader belongs to (replay indexing).
    consumer: usize,
    /// Ack/replay state, present only under recovery.
    replay: Option<Arc<ReplayShared>>,
    /// Per-producer next-expected sequence number: packets with
    /// `seq < watermark[p]` were already delivered (replay duplicates)
    /// and are dropped. Reset from the acked prefix on restart.
    watermark: Vec<u64>,
    /// Packets re-delivered from replay buffers after restarts.
    replayed: u64,
    /// Duplicate packets discarded by the sequence watermark.
    deduped: u64,
    /// Accepted packets still to consume before appending to the shared
    /// consumption-order log again — i.e. the length of the replayed
    /// prefix, which is already logged from the failed attempt.
    log_skip: usize,
    /// Stage probe + this reader's copy index, when live telemetry is
    /// attached ([`Pipeline::with_telemetry`]). `None` costs one branch
    /// per delivery.
    ///
    /// [`Pipeline::with_telemetry`]: crate::exec::Pipeline::with_telemetry
    probe: Option<(Arc<StageProbe>, usize)>,
    /// Ingest-origin tick of the most recently delivered packet (0 =
    /// unknown); the filter shim propagates it onto the stage's output
    /// writer so end-to-end latency survives the stage hop.
    last_origin_us: u64,
    /// Clock tick taken once per channel drain: per-packet latency math
    /// reuses it instead of reading the clock per delivery (clock reads
    /// dominate probe cost otherwise). Each packet is measured with its
    /// own drain's tick, so residence is quantized to drain boundaries
    /// but never negative.
    now_us_cache: u64,
    /// Reader-local latency accumulators, merged into the shared probe
    /// histograms once per drain (and at end of stream) — per-packet
    /// recording stays lock-free.
    local_residence: Histogram,
    local_e2e: Histogram,
    /// Deliveries not yet published to the probe's `buffers_in` counter
    /// (flushed with the histograms, so the per-packet path has no
    /// atomics at all).
    local_buffers_in: u64,
    /// Channel drains so far; the queue-depth gauge refreshes on every
    /// 16th (taking the channel lock for an honest depth), which at
    /// batched drain rates is still orders of magnitude finer than any
    /// sampling cadence.
    drains: u64,
    /// Tick of the last local→shared flush. Mid-run flushes are
    /// throttled to [`FLUSH_INTERVAL_US`]; even the branch deciding
    /// whether to flush is measurable at packet-echo rates, so the
    /// publish cadence trades staleness (bounded, and well under any
    /// sampling interval) for hot-path cost.
    last_flush_us: u64,
}

/// Minimum µs between mid-run local→shared telemetry flushes. The
/// sampler's finest practical cadence (`--status-every`) is tens of
/// milliseconds, so a 10 ms publish lag is invisible to it; final stats
/// are exact regardless via the end-of-stream flush.
const FLUSH_INTERVAL_US: u64 = 10_000;

impl StreamReader {
    /// Set the adaptive-drain batch size (messages moved per lock
    /// acquisition); 1 restores strict per-packet operation.
    pub fn set_batch(&mut self, batch: usize) {
        self.batch = batch.max(1);
    }

    /// Blocking read; `None` once every producer copy has closed.
    pub fn read(&mut self) -> Option<Buffer> {
        loop {
            // Cancellation takes priority over locally drained packets,
            // matching the channel's cancel-beats-queued-data rule: a
            // cancelled pipeline stops moving data even if this copy
            // already holds some.
            if !self.pending.is_empty() && self.control.as_ref().is_some_and(|c| c.is_cancelled()) {
                self.pending.clear();
                self.flush_probe_locals();
                return None;
            }
            match self.pending.pop_front() {
                Some(Msg::Data {
                    from,
                    seq,
                    sent_us,
                    origin_us,
                    buf,
                }) => {
                    if let Some(rep) = &self.replay {
                        let wm = &mut self.watermark[from as usize];
                        if seq < *wm {
                            // Replay duplicate: the replayed copy of this
                            // packet was already delivered.
                            self.deduped += 1;
                            continue;
                        }
                        *wm = seq + 1;
                        if self.log_skip > 0 {
                            // Replayed prefix: already in the order log.
                            self.log_skip -= 1;
                        } else {
                            plock(&rep.order[self.consumer]).push((from, seq));
                        }
                    }
                    if let Some((probe, _)) = &self.probe {
                        // Latency math reuses the tick taken when this
                        // packet's drain pulled it off the channel and
                        // records into reader-local histograms: the
                        // clock read and the shared-histogram locks are
                        // paid once per drain, not per packet, keeping
                        // sampling within the guard's 5% budget.
                        let now = self.now_us_cache;
                        if sent_us > 0 {
                            self.local_residence.record(now.saturating_sub(sent_us));
                        }
                        if origin_us > 0 && probe.e2e_us.is_some() {
                            self.local_e2e.record(now.saturating_sub(origin_us));
                        }
                        self.local_buffers_in += 1;
                    }
                    self.last_origin_us = origin_us;
                    if self.pending.is_empty()
                        && self.now_us_cache.saturating_sub(self.last_flush_us) >= FLUSH_INTERVAL_US
                    {
                        // Local batch exhausted and the publish lag is
                        // due: push the locally recorded latencies to
                        // the shared probe. Checked only at batch
                        // boundaries, fired at most every 10 ms.
                        self.flush_probe_locals();
                    }
                    return Some(self.account(buf));
                }
                Some(Msg::End) => {
                    self.producers_remaining -= 1;
                    continue;
                }
                None => {}
            }
            if self.producers_remaining == 0 {
                self.flush_probe_locals();
                return None;
            }
            let wait_start = Instant::now();
            let msg = self.rx.recv();
            let waited = wait_start.elapsed();
            self.blocked += waited;
            if let Some((probe, copy)) = &self.probe {
                probe
                    .copy(*copy)
                    .blocked_recv_us
                    .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
            }
            if trace::enabled() && waited >= STALL_EVENT_THRESHOLD {
                let end_us = trace::now_us();
                trace::complete(
                    "blocked_on_recv",
                    "stall",
                    end_us - waited.as_secs_f64() * 1e6,
                    waited.as_secs_f64() * 1e6,
                    PID_RUNTIME,
                    self.tid,
                    vec![],
                );
            }
            match msg {
                Ok(m) => {
                    self.pending.push_back(m);
                    if self.batch > 1 {
                        // Adaptive drain: whatever else is already queued
                        // comes along under one extra lock acquisition.
                        // Errors here (cancel/disconnect) are surfaced by
                        // the checks at the top of the loop.
                        let _ = self.rx.try_recv_batch(self.batch - 1, &mut self.pending);
                    }
                    if let Some((probe, copy)) = &self.probe {
                        // The drain tick is derived from the recv-side
                        // `Instant` the blocked accounting already paid
                        // for — epoch subtraction, no second clock read.
                        self.now_us_cache = instant_us(wait_start + waited);
                        // Refresh the depth gauge every 16th drain (the
                        // first included, so short runs report at all):
                        // `rx.len()` takes the channel lock the batched
                        // path exists to amortize, and a gauge that is
                        // at most 15 drains stale is still far fresher
                        // than any sampling cadence reading it.
                        if self.drains & 0xF == 0 {
                            probe.copy(*copy).queue_depth.store(
                                (self.rx.len() + self.pending.len()) as u64,
                                Ordering::Relaxed,
                            );
                        }
                        self.drains = self.drains.wrapping_add(1);
                    }
                }
                Err(_) => {
                    // All senders dropped, or the run was cancelled out
                    // from under a blocked receive.
                    if self.control.as_ref().is_some_and(|c| c.is_cancelled()) {
                        self.cancelled_while_blocked = true;
                    }
                    self.flush_probe_locals();
                    return None;
                }
            }
        }
    }

    /// Merge the reader-local latency histograms into the shared probe
    /// histograms. Runs once per channel drain and on every
    /// end-of-stream path; a no-op while the locals are empty, so the
    /// tail flush is idempotent.
    fn flush_probe_locals(&mut self) {
        self.last_flush_us = self.now_us_cache;
        let Some((probe, copy)) = &self.probe else {
            return;
        };
        if self.local_buffers_in > 0 {
            probe
                .copy(*copy)
                .buffers_in
                .fetch_add(self.local_buffers_in, Ordering::Relaxed);
            self.local_buffers_in = 0;
        }
        if self.local_residence.count > 0 {
            plock(&probe.residence_us).merge(&self.local_residence);
            self.local_residence = Histogram::default();
        }
        if self.local_e2e.count > 0 {
            if let Some(h) = &probe.e2e_us {
                plock(h).merge(&self.local_e2e);
            }
            self.local_e2e = Histogram::default();
        }
    }

    /// Per-packet accounting for a buffer about to be handed to the
    /// filter: stats, progress for the stall detector, trace event.
    fn account(&mut self, b: Buffer) -> Buffer {
        self.buffers_read += 1;
        self.bytes_read += b.len() as u64;
        if let Some(c) = &self.control {
            c.note_progress();
        }
        if trace::enabled() {
            trace::instant(
                "recv",
                "packet",
                PID_RUNTIME,
                self.tid,
                vec![("bytes", (b.len() as u64).into())],
            );
        }
        b
    }

    /// Publish the delivered prefix as acknowledged: every producer's
    /// watermark becomes the acked value and the replay buffers are
    /// pruned. Call only at a durability boundary — once published, a
    /// restart will NOT replay those packets.
    pub(crate) fn commit_acks(&mut self) {
        let Some(rep) = &self.replay else {
            return;
        };
        for (p, wm) in self.watermark.iter().enumerate() {
            let cell = &rep.acked[p][self.consumer];
            if cell.load(Ordering::Acquire) < *wm {
                // Prune before publishing: a producer reading the new ack
                // value only skips its own pruning work, never resurrects
                // an entry.
                let mut un = plock(&rep.unacked[p][self.consumer]);
                while un.front().is_some_and(|(s, _)| *s < *wm) {
                    un.pop_front();
                }
                drop(un);
                cell.store(*wm, Ordering::Release);
            }
        }
        // Everything consumed so far is now acknowledged — it will never
        // replay, so its consumption order no longer matters.
        plock(&rep.order[self.consumer]).clear();
        self.log_skip = 0;
    }

    /// Prepare this endpoint for a restarted unit-of-work attempt: reset
    /// watermarks to the acknowledged prefix and pre-load every
    /// unacknowledged packet ahead of whatever is already queued — first
    /// the packets the failed attempt actually consumed, in its exact
    /// consumption order (the shared order log), then the never-consumed
    /// remainder in per-producer sequence order. Replaying the consumed
    /// prefix in the original interleaving makes a deterministic filter
    /// regenerate byte-identical downstream writes, which is what the
    /// writer's sequence-based suppression relies on. In-queue originals
    /// that the replay duplicates are later discarded by the watermark.
    /// `End` markers drained into `pending` are kept — producers send
    /// them only once.
    pub(crate) fn begin_attempt(&mut self) {
        let Some(rep) = self.replay.clone() else {
            return;
        };
        // Locally drained data is a subset of the unacknowledged replay
        // set (it was never acked), so dropping it loses nothing.
        self.pending.retain(|m| matches!(m, Msg::End));
        for (p, wm) in self.watermark.iter_mut().enumerate() {
            *wm = rep.acked[p][self.consumer].load(Ordering::Acquire);
        }
        // The consumed-and-unacked prefix, in original consumption order.
        let mut log = plock(&rep.order[self.consumer]);
        let mut preload: Vec<Msg> = Vec::new();
        let mut replay_high: Vec<Option<u64>> = vec![None; self.watermark.len()];
        for &(from, seq) in log.iter() {
            let p = from as usize;
            if seq < self.watermark[p] {
                continue; // defensively skip anything already acked
            }
            let un = plock(&rep.unacked[p][self.consumer]);
            if let Some((_, buf)) = un.iter().find(|(s, _)| *s == seq) {
                // Replayed packets carry no stamps: their original send
                // time is long gone, and counting the failure stall as
                // latency would poison the percentiles.
                preload.push(Msg::Data {
                    from,
                    seq,
                    sent_us: 0,
                    origin_us: 0,
                    buf: buf.clone(),
                });
                replay_high[p] = Some(replay_high[p].map_or(seq, |h| h.max(seq)));
            }
        }
        // Re-seed the log with exactly the prefix being replayed, so the
        // skip counter and the log stay in lockstep even if an entry was
        // filtered out above.
        *log = preload
            .iter()
            .map(|m| match m {
                Msg::Data { from, seq, .. } => (*from, *seq),
                Msg::End => unreachable!("preload holds only data"),
            })
            .collect();
        self.log_skip = log.len();
        drop(log);
        // Sent-but-never-consumed packets follow; the failed attempt put
        // no ordering constraint on them.
        for (p, wm) in self.watermark.iter().enumerate() {
            let floor = replay_high[p].map_or(*wm, |h| h + 1);
            let un = plock(&rep.unacked[p][self.consumer]);
            for (seq, buf) in un.iter() {
                if *seq >= floor {
                    preload.push(Msg::Data {
                        from: p as u32,
                        seq: *seq,
                        sent_us: 0,
                        origin_us: 0,
                        buf: buf.clone(),
                    });
                }
            }
        }
        self.replayed += preload.len() as u64;
        for m in preload.into_iter().rev() {
            self.pending.push_front(m);
        }
        self.cancelled_while_blocked = false;
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.buffers_read, self.bytes_read)
    }

    /// Packets re-delivered from replay buffers / duplicates discarded by
    /// the sequence watermark (both 0 without recovery).
    pub fn recovery_stats(&self) -> (u64, u64) {
        (self.replayed, self.deduped)
    }

    /// Whether a blocking receive on this endpoint was aborted by run
    /// cancellation (the stall report uses this to name wedged copies).
    pub fn cancelled_while_blocked(&self) -> bool {
        self.cancelled_while_blocked
    }

    /// Total time this endpoint spent inside blocking receives — i.e.
    /// the copy was starved waiting for upstream data.
    pub fn blocked(&self) -> Duration {
        self.blocked
    }

    /// Set the trace row for per-packet and stall events (the executor
    /// assigns one tid per filter copy).
    pub fn set_trace_tid(&mut self, tid: u32) {
        self.tid = tid;
    }

    /// Attach a live-telemetry probe for this consumer copy; also hands
    /// the stream's replay state to the probe so the sampler can report
    /// replay-buffer occupancy.
    pub(crate) fn attach_probe(&mut self, probe: Arc<StageProbe>, copy: usize) {
        if let Some(rep) = &self.replay {
            *plock(&probe.replay) = Some(rep.clone());
        }
        self.probe = Some((probe, copy));
    }

    /// Ingest-origin tick of the most recently delivered packet
    /// (0 = unknown).
    pub(crate) fn last_origin_us(&self) -> u64 {
        self.last_origin_us
    }
}

/// Writing end held by one producer copy.
pub struct StreamWriter {
    txs: Vec<MsgTx>,
    distribution: Distribution,
    next: usize,
    buffers_written: u64,
    bytes_written: u64,
    closed: bool,
    blocked: Duration,
    /// Trace thread id of the owning filter copy (see
    /// [`StreamWriter::set_trace_tid`]).
    tid: u32,
    /// Run-wide control (cancellation + progress), when the executor
    /// runs with a deadline/stall watchdog.
    control: Option<Arc<RunControl>>,
    /// Set when a send was aborted by run cancellation — the copy was
    /// blocked here (downstream backpressure) when the watchdog fired.
    cancelled_while_blocked: bool,
    /// Which producer copy this writer belongs to (replay indexing).
    from: usize,
    /// Round-robin start offset (producer stagger); with recovery the
    /// invariant `next == stagger + write_index` makes the packet→target
    /// mapping a pure function of the sequence number, so a rewound
    /// producer regenerates the identical routing.
    stagger: usize,
    /// Sequence number of the next packet to write.
    write_index: u64,
    /// One past the highest sequence number ever sent. NOT rewound on
    /// restart: regenerated packets below it are suppressed.
    sent_high: u64,
    /// Ack/replay state, present only under recovery.
    replay: Option<Arc<ReplayShared>>,
    /// Stage probe + this writer's copy index, when live telemetry is
    /// attached.
    probe: Option<(Arc<StageProbe>, usize)>,
    /// Stamp `sent_us`/`origin_us` on outgoing packets (telemetry on).
    stamp: bool,
    /// Origin tick to propagate on subsequent writes (set by the filter
    /// shim from the input side; 0 = unknown).
    origin_us: u64,
    /// Source-stage mode: every packet gets a fresh ingest-origin tick
    /// instead of a propagated one.
    fresh_origin: bool,
    /// Elastic-width gate: when set, round-robin rotates only over the
    /// consumer's *active* prefix instead of all provisioned queues
    /// (autoscaled runs). `None` = fixed width, rotate over everything.
    active_width: Option<Arc<StageWidth>>,
}

impl StreamWriter {
    /// How many consumer queues the round-robin currently rotates over:
    /// the active prefix under elastic width, every queue otherwise.
    fn fanout(&self) -> usize {
        match &self.active_width {
            Some(w) => w.active().min(self.txs.len()).max(1),
            None => self.txs.len(),
        }
    }

    /// Packet stamps for the next write: `(sent_us, origin_us)`, both 0
    /// when telemetry is off.
    fn stamps(&self) -> (u64, u64) {
        if !self.stamp {
            return (0, 0);
        }
        self.stamps_at(instant_us(Instant::now()))
    }

    /// [`stamps`](Self::stamps) from a tick already in hand (the batched
    /// write path reuses its blocked-accounting `Instant`, so stamping a
    /// whole batch costs no clock read at all).
    fn stamps_at(&self, now: u64) -> (u64, u64) {
        let origin = if self.fresh_origin {
            now
        } else {
            self.origin_us
        };
        (now, origin)
    }

    /// Send one buffer to (one copy of) the logical consumer.
    pub fn write(&mut self, buf: Buffer) -> FilterResult<()> {
        if self.closed {
            return Err(FilterError::new("stream", "write after close"));
        }
        let seq = self.write_index;
        self.write_index += 1;
        let target = match self.distribution {
            Distribution::RoundRobin => {
                let t = self.next % self.fanout();
                self.next += 1;
                t
            }
            Distribution::Shared => 0,
        };
        if let Some(rep) = &self.replay {
            if seq < self.sent_high {
                // A rewound producer regenerating already-sent output:
                // the original packet is still in the replay buffer (or
                // already processed), so re-sending would only create a
                // duplicate for the watermark to discard. Suppressed
                // sends do not count toward stats.
                return Ok(());
            }
            self.sent_high = seq + 1;
            let acked = rep.acked[self.from][target].load(Ordering::Acquire);
            let mut un = plock(&rep.unacked[self.from][target]);
            while un.front().is_some_and(|(s, _)| *s < acked) {
                un.pop_front();
            }
            un.push_back((seq, buf.clone()));
        }
        self.buffers_written += 1;
        let bytes = buf.len() as u64;
        self.bytes_written += bytes;
        // Queue depth *before* the send: how much backlog the consumer
        // already has. Only sampled when tracing (it takes the queue
        // lock).
        let tracing = trace::enabled();
        let depth = if tracing {
            self.txs[target].len() as u64
        } else {
            0
        };
        let (sent_us, origin_us) = self.stamps();
        let wait_start = Instant::now();
        let sent = self.txs[target].send(Msg::Data {
            from: self.from as u32,
            seq,
            sent_us,
            origin_us,
            buf,
        });
        let waited = wait_start.elapsed();
        self.blocked += waited;
        if let Some((probe, copy)) = &self.probe {
            let cp = probe.copy(*copy);
            cp.blocked_send_us
                .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
            cp.buffers_out.fetch_add(1, Ordering::Relaxed);
        }
        if tracing {
            if waited >= STALL_EVENT_THRESHOLD {
                let end_us = trace::now_us();
                trace::complete(
                    "blocked_on_send",
                    "stall",
                    end_us - waited.as_secs_f64() * 1e6,
                    waited.as_secs_f64() * 1e6,
                    PID_RUNTIME,
                    self.tid,
                    vec![("queue_depth", depth.into())],
                );
            }
            trace::instant(
                "send",
                "packet",
                PID_RUNTIME,
                self.tid,
                vec![("bytes", bytes.into()), ("queue_depth", depth.into())],
            );
        }
        match sent {
            Ok(()) => {
                if let Some(c) = &self.control {
                    c.note_progress();
                }
                Ok(())
            }
            Err(_) if self.control.as_ref().is_some_and(|c| c.is_cancelled()) => {
                self.cancelled_while_blocked = true;
                Err(FilterError::cancelled(
                    "stream",
                    "run cancelled during send",
                ))
            }
            Err(_) => Err(FilterError::new("stream", "consumer hung up")),
        }
    }

    /// Send a run of buffers, amortizing lock acquisitions and condvar
    /// wakeups over the whole run instead of paying one per packet.
    /// Round-robin distribution is preserved exactly: each consumer copy
    /// receives the same subsequence, in the same order, as `len` calls
    /// to [`write`](Self::write) would have produced.
    ///
    /// Under recovery this degrades to per-packet [`write`](Self::write):
    /// every packet must pass the sequence/replay bookkeeping
    /// individually. Runs without recovery keep the batched fast path.
    pub fn write_batch(&mut self, bufs: Vec<Buffer>) -> FilterResult<()> {
        if self.closed {
            return Err(FilterError::new("stream", "write after close"));
        }
        if bufs.is_empty() {
            return Ok(());
        }
        if self.replay.is_some() {
            for buf in bufs {
                self.write(buf)?;
            }
            return Ok(());
        }
        let count = bufs.len() as u64;
        let bytes: u64 = bufs.iter().map(|b| b.len() as u64).sum();
        self.buffers_written += count;
        self.bytes_written += bytes;
        // Group the run by target queue. Shared distribution and width-1
        // round-robin collapse to a single group; multi-consumer
        // round-robin rotates per packet, exactly like `write`. Elastic
        // width is sampled once per batch: the whole run rotates over the
        // fanout in force when the batch started.
        let targets = self.txs.len();
        let fan = self.fanout();
        // One tick for the whole run: it is the first send's
        // blocked-accounting start (message assembly lands in "blocked"
        // time — nanoseconds against the µs-scale waits it accounts) and,
        // with telemetry on, the shared send stamp. The packets leave
        // together, so a shared stamp loses nothing, and deriving it from
        // the `Instant` already needed for accounting makes stamping a
        // batch cost no extra clock read.
        let batch_start = Instant::now();
        let (sent_us, origin_us) = if self.stamp {
            self.stamps_at(instant_us(batch_start))
        } else {
            (0, 0)
        };
        let mut per_target: Vec<VecDeque<Msg>> = (0..targets).map(|_| VecDeque::new()).collect();
        for buf in bufs {
            let seq = self.write_index;
            self.write_index += 1;
            let target = match self.distribution {
                Distribution::RoundRobin => {
                    let t = self.next % fan;
                    self.next += 1;
                    t
                }
                Distribution::Shared => 0,
            };
            per_target[target].push_back(Msg::Data {
                from: self.from as u32,
                seq,
                sent_us,
                origin_us,
                buf,
            });
        }
        let tracing = trace::enabled();
        let mut first_send = Some(batch_start);
        for (target, mut batch) in per_target.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let n = batch.len() as u64;
            let depth = if tracing {
                self.txs[target].len() as u64
            } else {
                0
            };
            let wait_start = first_send.take().unwrap_or_else(Instant::now);
            let sent = self.txs[target].send_batch(&mut batch);
            let waited = wait_start.elapsed();
            self.blocked += waited;
            if let Some((probe, copy)) = &self.probe {
                let cp = probe.copy(*copy);
                cp.blocked_send_us
                    .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
                cp.buffers_out.fetch_add(n, Ordering::Relaxed);
            }
            if tracing {
                if waited >= STALL_EVENT_THRESHOLD {
                    let end_us = trace::now_us();
                    trace::complete(
                        "blocked_on_send",
                        "stall",
                        end_us - waited.as_secs_f64() * 1e6,
                        waited.as_secs_f64() * 1e6,
                        PID_RUNTIME,
                        self.tid,
                        vec![("queue_depth", depth.into())],
                    );
                }
                trace::instant(
                    "send_batch",
                    "packet",
                    PID_RUNTIME,
                    self.tid,
                    vec![("count", n.into()), ("queue_depth", depth.into())],
                );
            }
            match sent {
                Ok(()) => {
                    if let Some(c) = &self.control {
                        c.note_progress();
                    }
                }
                Err(_) if self.control.as_ref().is_some_and(|c| c.is_cancelled()) => {
                    self.cancelled_while_blocked = true;
                    return Err(FilterError::cancelled(
                        "stream",
                        "run cancelled during send",
                    ));
                }
                Err(_) => return Err(FilterError::new("stream", "consumer hung up")),
            }
        }
        Ok(())
    }

    /// Sequence number of the next packet to write (recovery bookkeeping:
    /// a checkpoint records this as its output boundary).
    pub(crate) fn write_index(&self) -> u64 {
        self.write_index
    }

    /// Rewind this endpoint to a committed output boundary before a
    /// restarted attempt. Regenerated packets keep their original
    /// sequence numbers and round-robin targets; those already sent
    /// (`seq < sent_high`, which is never rewound) are suppressed.
    pub(crate) fn rewind_for_replay(&mut self, out_index: u64) {
        self.write_index = out_index;
        self.next = self.stagger.wrapping_add(out_index as usize);
        self.cancelled_while_blocked = false;
    }

    /// Whether a blocking send on this endpoint was aborted by run
    /// cancellation (the stall report uses this to name wedged copies).
    pub fn cancelled_while_blocked(&self) -> bool {
        self.cancelled_while_blocked
    }

    /// Signal end-of-work to every consumer copy. Idempotent.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for tx in &self.txs {
            let _ = tx.send(Msg::End);
        }
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.buffers_written, self.bytes_written)
    }

    /// Total time this endpoint spent inside blocking sends — i.e. the
    /// copy was throttled by downstream backpressure.
    pub fn blocked(&self) -> Duration {
        self.blocked
    }

    /// Set the trace row for per-packet and stall events (the executor
    /// assigns one tid per filter copy).
    pub fn set_trace_tid(&mut self, tid: u32) {
        self.tid = tid;
    }

    /// Attach a live-telemetry probe for this producer copy (also turns
    /// on packet stamping).
    pub(crate) fn attach_probe(&mut self, probe: Arc<StageProbe>, copy: usize) {
        self.probe = Some((probe, copy));
        self.stamp = true;
    }

    /// Stamp `sent_us` without a probe. Used by network ingress bridges:
    /// residence latency at the receiving stage still works, while
    /// origins (which don't survive the process boundary — clocks are
    /// not comparable) stay unset.
    pub(crate) fn enable_stamping(&mut self) {
        self.stamp = true;
    }

    /// Source-stage mode: stamp a fresh ingest-origin tick on every
    /// packet (the pipeline's first stage, where end-to-end latency
    /// starts counting).
    pub(crate) fn mark_source(&mut self) {
        self.fresh_origin = true;
    }

    /// Propagate the given ingest-origin tick (from the input side of
    /// this copy) on subsequent writes; 0 = unknown.
    pub(crate) fn set_origin(&mut self, us: u64) {
        self.origin_us = us;
    }

    /// Gate round-robin rotation behind a live width handle (autoscaled
    /// runs): packets only route to the consumer's active prefix.
    pub(crate) fn set_active_width(&mut self, width: Arc<StageWidth>) {
        self.active_width = Some(width);
    }
}

impl Drop for StreamWriter {
    fn drop(&mut self) {
        self.close();
    }
}

/// Build the endpoints of one logical stream between `producers` copies of
/// the upstream filter and `consumers` copies of the downstream filter.
///
/// Returns one writer per producer copy and one reader per consumer copy.
/// `capacity` bounds each underlying queue (buffers in flight), providing
/// backpressure.
pub fn logical_stream(
    producers: usize,
    consumers: usize,
    capacity: usize,
    distribution: Distribution,
) -> (Vec<StreamWriter>, Vec<StreamReader>) {
    logical_stream_controlled(producers, consumers, capacity, distribution, None)
}

/// [`logical_stream`] with run-wide control attached: channels become
/// cancellable through the control's token, and every successful
/// send/receive bumps its progress counter (for the stall detector).
pub fn logical_stream_controlled(
    producers: usize,
    consumers: usize,
    capacity: usize,
    distribution: Distribution,
    control: Option<Arc<RunControl>>,
) -> (Vec<StreamWriter>, Vec<StreamReader>) {
    logical_stream_recovering(producers, consumers, capacity, distribution, control, false)
}

/// [`logical_stream_controlled`] with optional ack/replay state attached
/// (`recovering`), enabling the upstream-backup protocol described in the
/// module docs. Only round-robin distribution gets replay state; a shared
/// queue has no deterministic packet→consumer mapping to replay against
/// (the executor rejects that combination up front).
pub fn logical_stream_recovering(
    producers: usize,
    consumers: usize,
    capacity: usize,
    distribution: Distribution,
    control: Option<Arc<RunControl>>,
    recovering: bool,
) -> (Vec<StreamWriter>, Vec<StreamReader>) {
    logical_stream_with(
        producers,
        consumers,
        capacity,
        distribution,
        control,
        recovering,
        true,
    )
}

/// [`logical_stream_recovering`] with explicit backend selection:
/// `same_host_rings` permits the lock-free SPSC ring for 1→1
/// non-recovering links (the default everywhere); `false` forces the
/// mutex channel on every link, which benchmarks use to measure the
/// ring against the channel on an otherwise identical pipeline.
#[allow(clippy::fn_params_excessive_bools)]
pub fn logical_stream_with(
    producers: usize,
    consumers: usize,
    capacity: usize,
    distribution: Distribution,
    control: Option<Arc<RunControl>>,
    recovering: bool,
    same_host_rings: bool,
) -> (Vec<StreamWriter>, Vec<StreamReader>) {
    assert!(producers > 0 && consumers > 0);
    assert!(capacity > 0);
    let replay = (recovering && distribution == Distribution::RoundRobin)
        .then(|| Arc::new(ReplayShared::new(producers, consumers)));
    let channel = |cap: usize| match &control {
        Some(c) => bounded_cancellable(cap, c.token()),
        None => bounded(cap),
    };
    let reader = |rx: MsgRx, consumer: usize| StreamReader {
        rx,
        producers_remaining: producers,
        pending: VecDeque::new(),
        batch: 1,
        buffers_read: 0,
        bytes_read: 0,
        blocked: Duration::ZERO,
        tid: 0,
        control: control.clone(),
        cancelled_while_blocked: false,
        consumer,
        replay: replay.clone(),
        watermark: vec![0; producers],
        replayed: 0,
        deduped: 0,
        log_skip: 0,
        probe: None,
        last_origin_us: 0,
        now_us_cache: 0,
        local_residence: Histogram::default(),
        local_e2e: Histogram::default(),
        local_buffers_in: 0,
        drains: 0,
        last_flush_us: 0,
    };
    let writer = |txs: Vec<MsgTx>, from: usize, stagger: usize| StreamWriter {
        txs,
        distribution,
        next: stagger,
        buffers_written: 0,
        bytes_written: 0,
        closed: false,
        blocked: Duration::ZERO,
        tid: 0,
        control: control.clone(),
        cancelled_while_blocked: false,
        from,
        stagger,
        write_index: 0,
        sent_high: 0,
        replay: replay.clone(),
        probe: None,
        stamp: false,
        origin_us: 0,
        fresh_origin: false,
        active_width: None,
    };
    // 1→1 non-recovering links ride the lock-free SPSC ring: exactly one
    // producer endpoint and one consumer endpoint, and no replay state
    // (replay wants the channel's MPMC bookkeeping shape). Both
    // distributions collapse to the same point-to-point semantics at
    // width 1. Everything else — fan-in, fan-out, shared queues,
    // recovering links — keeps the mutex channel.
    if same_host_rings && producers == 1 && consumers == 1 && replay.is_none() {
        let (tx, rx) = ring::spsc(capacity, control.as_ref().map(|c| c.token()));
        return (
            vec![writer(vec![MsgTx::Ring(tx)], 0, 0)],
            vec![reader(MsgRx::Ring(rx), 0)],
        );
    }
    match distribution {
        Distribution::RoundRobin => {
            // One queue per consumer copy; every producer can reach every
            // consumer and rotates among them. Each producer sends one End
            // per consumer; each consumer therefore waits for `producers`
            // Ends.
            let mut txs_per_consumer = Vec::with_capacity(consumers);
            let mut readers = Vec::with_capacity(consumers);
            for c in 0..consumers {
                let (tx, rx) = channel(capacity);
                txs_per_consumer.push(tx);
                readers.push(reader(MsgRx::Chan(rx), c));
            }
            let writers = (0..producers)
                // Stagger start positions so multiple producers do not
                // all hit consumer 0 first.
                .map(|p| {
                    writer(
                        txs_per_consumer
                            .iter()
                            .map(|tx| MsgTx::Chan(tx.clone()))
                            .collect(),
                        p,
                        p,
                    )
                })
                .collect();
            (writers, readers)
        }
        Distribution::Shared => {
            // One shared MPMC queue; consumers race for buffers. Each
            // producer sends `consumers` Ends so that every consumer
            // eventually sees `producers` Ends.
            let (tx, rx) = channel(capacity);
            let writers = (0..producers)
                .map(|p| {
                    writer(
                        (0..consumers).map(|_| MsgTx::Chan(tx.clone())).collect(),
                        p,
                        0,
                    )
                })
                .collect();
            let readers = (0..consumers)
                .map(|c| reader(MsgRx::Chan(rx.clone()), c))
                .collect();
            (writers, readers)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::now_us;

    fn buf(tag: u8) -> Buffer {
        Buffer::from_vec(vec![tag])
    }

    #[test]
    fn point_to_point_delivers_in_order() {
        let (mut ws, mut rs) = logical_stream(1, 1, 16, Distribution::RoundRobin);
        for t in 0..5 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        let mut seen = Vec::new();
        while let Some(b) = rs[0].read() {
            seen.push(b.as_slice()[0]);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn round_robin_distributes_evenly() {
        let (mut ws, mut rs) = logical_stream(1, 3, 16, Distribution::RoundRobin);
        for t in 0..9 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        for (c, r) in rs.iter_mut().enumerate() {
            let mut seen = Vec::new();
            while let Some(b) = r.read() {
                seen.push(b.as_slice()[0]);
            }
            assert_eq!(seen.len(), 3, "consumer {c}");
            for v in seen {
                assert_eq!(v as usize % 3, c, "round robin order");
            }
        }
    }

    #[test]
    fn multiple_producers_all_must_close() {
        let (mut ws, mut rs) = logical_stream(2, 1, 16, Distribution::RoundRobin);
        ws[0].write(buf(1)).unwrap();
        ws[1].write(buf(2)).unwrap();
        ws[0].close();
        // Reader must still see producer 1's buffer, then wait for its End.
        ws[1].close();
        let mut n = 0;
        while rs[0].read().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn shared_queue_consumed_exactly_once() {
        let (mut ws, rs) = logical_stream(1, 2, 32, Distribution::Shared);
        for t in 0..10 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        let handles: Vec<_> = rs
            .into_iter()
            .map(|mut r| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(b) = r.read() {
                        got.push(b.as_slice()[0]);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u8> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        assert_eq!(all, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn write_after_close_errors() {
        let (mut ws, _rs) = logical_stream(1, 1, 4, Distribution::RoundRobin);
        ws[0].close();
        assert!(ws[0].write(buf(0)).is_err());
    }

    #[test]
    fn drop_closes_stream() {
        let (ws, mut rs) = logical_stream(1, 1, 4, Distribution::RoundRobin);
        drop(ws);
        assert!(rs[0].read().is_none());
    }

    #[test]
    fn staggered_start_balances_multi_producer_round_robin() {
        let (mut ws, mut rs) = logical_stream(2, 2, 32, Distribution::RoundRobin);
        // each producer writes 2 buffers
        ws[0].write(buf(0)).unwrap();
        ws[0].write(buf(1)).unwrap();
        ws[1].write(buf(2)).unwrap();
        ws[1].write(buf(3)).unwrap();
        ws.iter_mut().for_each(StreamWriter::close);
        let c0: Vec<u8> = std::iter::from_fn(|| rs[0].read())
            .map(|b| b.as_slice()[0])
            .collect();
        let c1: Vec<u8> = std::iter::from_fn(|| rs[1].read())
            .map(|b| b.as_slice()[0])
            .collect();
        assert_eq!(c0.len(), 2);
        assert_eq!(c1.len(), 2);
    }

    #[test]
    fn stats_track_buffers_and_bytes() {
        let (mut ws, mut rs) = logical_stream(1, 1, 4, Distribution::RoundRobin);
        ws[0].write(Buffer::from_vec(vec![0; 10])).unwrap();
        ws[0].write(Buffer::from_vec(vec![0; 5])).unwrap();
        assert_eq!(ws[0].stats(), (2, 15));
        ws[0].close();
        while rs[0].read().is_some() {}
        assert_eq!(rs[0].stats(), (2, 15));
    }

    /// A recovering logical stream with no failures behaves exactly like
    /// a plain one (same delivery, no replays, no dedups).
    #[test]
    fn recovering_stream_without_failures_is_transparent() {
        let (mut ws, mut rs) =
            logical_stream_recovering(1, 2, 16, Distribution::RoundRobin, None, true);
        for t in 0..8 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        for (c, r) in rs.iter_mut().enumerate() {
            let mut seen = Vec::new();
            while let Some(b) = r.read() {
                seen.push(b.as_slice()[0]);
            }
            assert_eq!(seen.len(), 4, "consumer {c}");
            assert_eq!(r.recovery_stats(), (0, 0));
        }
    }

    /// Consumer restart: unacked packets are replayed, the watermark
    /// dedups the in-queue originals, every packet is delivered exactly
    /// once overall.
    #[test]
    fn consumer_restart_replays_unacked_exactly_once() {
        let (mut ws, mut rs) =
            logical_stream_recovering(1, 1, 64, Distribution::RoundRobin, None, true);
        for t in 0..10 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        let r = &mut rs[0];
        // Deliver 4 packets, ack after 2 (a mid-stream checkpoint).
        let mut first = Vec::new();
        for _ in 0..2 {
            first.push(r.read().unwrap().as_slice()[0]);
        }
        r.commit_acks();
        for _ in 0..2 {
            first.push(r.read().unwrap().as_slice()[0]);
        }
        assert_eq!(first, vec![0, 1, 2, 3]);
        // Crash + restart: packets 2..10 must come back (2 and 3 were
        // delivered but never acked), with no duplicates.
        r.begin_attempt();
        let mut again = Vec::new();
        while let Some(b) = r.read() {
            again.push(b.as_slice()[0]);
        }
        assert_eq!(again, (2..10).collect::<Vec<u8>>());
        let (replayed, _deduped) = r.recovery_stats();
        assert_eq!(replayed, 8, "packets 2..10 were preloaded from replay");
    }

    /// Producer restart: rewinding to the committed boundary regenerates
    /// suppressed sends for everything at or past `sent_high`, so the
    /// consumer sees no duplicates and no losses.
    #[test]
    fn producer_rewind_suppresses_already_sent_packets() {
        let (mut ws, mut rs) =
            logical_stream_recovering(1, 1, 64, Distribution::RoundRobin, None, true);
        for t in 0..6 {
            ws[0].write(buf(t)).unwrap();
        }
        // Producer crashes having committed nothing: rewind to 0 and
        // regenerate all 6 packets, then 4 more new ones.
        ws[0].rewind_for_replay(0);
        for t in 0..10 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        let mut seen = Vec::new();
        while let Some(b) = rs[0].read() {
            seen.push(b.as_slice()[0]);
        }
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
        // Only 10 distinct packets ever hit the wire.
        assert_eq!(ws[0].stats().0, 10);
    }

    /// Round-robin targets survive a rewind: regenerated packets land on
    /// the same consumers as the originals would have.
    #[test]
    fn rewound_round_robin_keeps_target_mapping() {
        let (mut ws, mut rs) =
            logical_stream_recovering(1, 2, 64, Distribution::RoundRobin, None, true);
        for t in 0..4 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].rewind_for_replay(0);
        for t in 0..8 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        for (c, r) in rs.iter_mut().enumerate() {
            let mut seen = Vec::new();
            while let Some(b) = r.read() {
                seen.push(b.as_slice()[0]);
            }
            assert_eq!(seen.len(), 4, "consumer {c}");
            for v in seen {
                assert_eq!(v as usize % 2, c, "round robin target after rewind");
            }
        }
    }

    /// Acks bound the replay buffer: after a full ack, a restart replays
    /// nothing.
    #[test]
    fn acked_packets_are_never_replayed() {
        let (mut ws, mut rs) =
            logical_stream_recovering(1, 1, 64, Distribution::RoundRobin, None, true);
        for t in 0..5 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        let r = &mut rs[0];
        for _ in 0..5 {
            r.read().unwrap();
        }
        r.commit_acks();
        r.begin_attempt();
        assert!(r.read().is_none());
        assert_eq!(r.recovery_stats().0, 0, "nothing left to replay");
    }

    /// With a probe attached, delivery records residence + end-to-end
    /// latency and the in-flight gauges move; replayed packets are
    /// excluded from the latency percentiles.
    #[test]
    fn probes_record_latency_and_gauges() {
        let (mut ws, mut rs) =
            logical_stream_recovering(1, 1, 64, Distribution::RoundRobin, None, true);
        let probe = StageProbe::new("sink".into(), 1, true, false);
        ws[0].attach_probe(probe.clone(), 0);
        ws[0].mark_source();
        rs[0].attach_probe(probe.clone(), 0);
        for t in 0..4 {
            ws[0].write(buf(t)).unwrap();
        }
        for _ in 0..4 {
            rs[0].read().unwrap();
        }
        // Mid-run publishing is throttled; force the local→shared flush
        // that end-of-stream (or the 10 ms cadence) would perform.
        rs[0].flush_probe_locals();
        assert_eq!(probe.residence().count, 4);
        assert_eq!(probe.e2e().unwrap().count, 4);
        assert!(rs[0].last_origin_us() > 0, "source origin propagated");
        let s = probe.sample(now_us());
        assert_eq!(s.buffers_in, 4);
        assert_eq!(s.buffers_out, 4);
        assert_eq!(s.busy_us_per_copy, vec![0], "copy never marked started");
        assert_eq!(s.replay_occupancy, 4, "nothing acked yet");
        // Restart: the 4 unacked packets replay with zero stamps — the
        // latency histograms must not move.
        rs[0].begin_attempt();
        for _ in 0..4 {
            rs[0].read().unwrap();
        }
        rs[0].flush_probe_locals();
        assert_eq!(probe.residence().count, 4, "replays excluded");
        assert_eq!(probe.e2e().unwrap().count, 4, "replays excluded");
        assert_eq!(probe.sample(now_us()).buffers_in, 8);
    }

    /// Stamping without a probe (ingress bridges) sets `sent_us` but no
    /// origin, so downstream residence works while e2e stays silent.
    #[test]
    fn ingress_stamping_feeds_residence_only() {
        let (mut ws, mut rs) = logical_stream(1, 1, 16, Distribution::RoundRobin);
        ws[0].enable_stamping();
        let probe = StageProbe::new("f2".into(), 1, true, false);
        rs[0].attach_probe(probe.clone(), 0);
        ws[0].write(buf(0)).unwrap();
        ws[0].close();
        rs[0].read().unwrap();
        rs[0].flush_probe_locals();
        assert_eq!(probe.residence().count, 1);
        assert_eq!(probe.e2e().unwrap().count, 0, "no origin crossed");
        assert_eq!(rs[0].last_origin_us(), 0);
    }

    /// The published ack watermark is monotone: a consumer whose local
    /// watermark somehow regresses (e.g. a reconnecting remote consumer
    /// re-offering an older cumulative ack) must not pull the shared
    /// acked prefix backwards — that would resurrect replay of packets
    /// the producer already pruned.
    #[test]
    fn committed_ack_watermark_never_regresses() {
        let (mut ws, mut rs) =
            logical_stream_recovering(1, 1, 64, Distribution::RoundRobin, None, true);
        for t in 0..5 {
            ws[0].write(buf(t)).unwrap();
        }
        ws[0].close();
        let r = &mut rs[0];
        for _ in 0..5 {
            r.read().unwrap();
        }
        r.commit_acks();
        let rep = r.replay.as_ref().unwrap();
        assert_eq!(rep.acked[0][0].load(Ordering::Acquire), 5);
        // Force the local watermark below the published prefix and
        // commit again: the shared cell must keep the high-water mark.
        r.watermark[0] = 3;
        r.commit_acks();
        let rep = r.replay.as_ref().unwrap();
        assert_eq!(
            rep.acked[0][0].load(Ordering::Acquire),
            5,
            "ack watermark regressed"
        );
    }
}
