//! TCP transport for logical streams (distributed DataCutter).
//!
//! The in-process runtime connects filter copies through bounded channels
//! ([`crate::stream`]). This module extends one logical stream across a
//! process boundary with length-prefixed frames over TCP, *without*
//! re-implementing any stream semantics: both sides of the socket are
//! bridged onto ordinary local streams, so batching, backpressure,
//! cancellation, deadlines, fault injection, and ack/replay recovery all
//! keep working unchanged.
//!
//! ## Topology
//!
//! One logical link `stage s → stage s+1` split across two processes:
//!
//! ```text
//!  producer process                      consumer process
//!  ┌──────────────┐  local 1→1 stream   ┌──────────────────────────────┐
//!  │ filter copy c ├──▶ egress pump c ──TCP──▶ ingress handler p ──┐   │
//!  └──────────────┘   (one socket per         (one per upstream    │   │
//!                      producer copy)          producer copy)      ▼   │
//!                                              local P→C stream, writer│
//!                                              p staggered like the    │
//!                                              in-process round robin  │
//!                                         ┌──────────────┐◀────────────┘
//!                                         │ filter copies │
//!                                         └──────────────┘
//! ```
//!
//! Each producer copy gets its own connection, so per-producer FIFO order
//! is the socket's FIFO order. The consumer side feeds a local
//! [`StreamWriter`] with the *same* producer index and stagger the
//! in-process run would use; round-robin routing is a pure function of the
//! sequence number, so packet→consumer-copy routing is reproduced exactly
//! and results stay byte-identical to the in-process run.
//!
//! ## Wire format
//!
//! Every frame is `tag: u8` followed by a fixed header and (for data) a
//! length-prefixed payload, all little-endian:
//!
//! | frame      | layout                                                  |
//! |------------|---------------------------------------------------------|
//! | `Hello`    | magic `CGPN`, `version: u16`, `link: u32`, `producer: u32` |
//! | `HelloAck` | `resume_seq: u64` (consumer's cumulative-ack watermark)  |
//! | `Data`     | `from: u32`, `seq: u64`, `len: u32`, payload             |
//! | `End`      | `from: u32` (producer finished its unit of work)         |
//! | `Close`    | — (orderly connection shutdown)                          |
//! | `Telemetry`| `len: u32`, payload (JSON telemetry update)              |
//!
//! `Telemetry` frames travel on their own connections — worker →
//! launcher, handshaken with the sentinel link id [`TELEMETRY_LINK`] —
//! never interleaved with data links, so the data plane's framing and
//! ordering are untouched when telemetry is on.
//!
//! Decoding is hardened: declared payload lengths are validated against
//! [`MAX_FRAME_PAYLOAD`] *before* any allocation, unknown tags / bad magic
//! / version mismatches are [`ErrorKind::Malformed`] errors, and EOF in
//! the middle of a frame is malformed rather than silently truncated.
//!
//! ## Recovery across the socket
//!
//! Within each process, filter-copy restarts use the local streams'
//! ack/replay machinery exactly as in-process runs do. Across the socket,
//! the consumer publishes its cumulative per-producer watermark in
//! `HelloAck` whenever a producer (re)connects: a reconnecting producer
//! resumes past the acknowledged prefix, and any duplicated in-flight
//! frame is discarded by the same sequence watermark
//! ([`IngressFeeder::feed`]) — the watermark never regresses across a
//! reconnect because it lives in the serve loop's slot table, not in the
//! per-connection handler.
//!
//! [`ErrorKind::Malformed`]: crate::error::ErrorKind

use crate::buffer::Buffer;
use crate::error::{FilterError, FilterResult};
use crate::fault::RunControl;
use crate::stream::{StreamReader, StreamWriter};
use crate::telemetry::LinkProbe;
use cgp_obs::trace::{self, PID_RUNTIME};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Connection magic: first bytes of every `Hello` frame.
pub const NET_MAGIC: [u8; 4] = *b"CGPN";
/// Wire-protocol version (checked during the handshake).
pub const NET_VERSION: u16 = 1;
/// Hard cap on a single data frame's payload. A `Data` frame declaring
/// more than this is malformed and rejected before any allocation.
pub const MAX_FRAME_PAYLOAD: usize = 64 * 1024 * 1024;

/// Socket read/write timeout: the granularity at which blocked socket
/// operations notice run cancellation.
const POLL: Duration = Duration::from_millis(100);
/// Accept-loop poll interval (nonblocking listener).
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Default overall budget for [`connect_with_retry`].
const CONNECT_BUDGET: Duration = Duration::from_secs(10);

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_END: u8 = 4;
const TAG_CLOSE: u8 = 5;
const TAG_TELEMETRY: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;

/// Fixed header length (bytes after the tag) for each frame tag, or
/// `None` for an unknown tag. Shared by the socket reader and the
/// shared-memory transport so both parse the identical wire format.
pub(crate) fn frame_header_len(tag: u8) -> Option<usize> {
    match tag {
        TAG_HELLO => Some(14),
        TAG_HELLO_ACK => Some(8),
        TAG_DATA => Some(16),
        TAG_END => Some(4),
        TAG_CLOSE => Some(0),
        TAG_TELEMETRY => Some(4),
        TAG_HEARTBEAT => Some(0),
        _ => None,
    }
}

/// Offset of the `len: u32` field within the fixed header (tag included)
/// for frames that carry a variable payload.
pub(crate) fn frame_len_field_at(tag: u8) -> Option<usize> {
    match tag {
        TAG_DATA => Some(13),
        TAG_TELEMETRY => Some(1),
        _ => None,
    }
}

/// Encode a `Data` frame's fixed header (the payload follows verbatim).
pub(crate) fn encode_data_header(from: u32, seq: u64, len: usize) -> [u8; 17] {
    let mut header = [0u8; 17];
    header[0] = TAG_DATA;
    header[1..5].copy_from_slice(&from.to_le_bytes());
    header[5..13].copy_from_slice(&seq.to_le_bytes());
    header[13..17].copy_from_slice(&(len as u32).to_le_bytes());
    header
}

/// Sentinel link id carried in the `Hello` of telemetry connections, so
/// they share the data plane's versioned handshake while remaining
/// unmistakable for a data link.
pub const TELEMETRY_LINK: u32 = u32::MAX;

/// Poison-tolerant lock (slot state is plain data).
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One frame of the stream protocol (see the module docs for the wire
/// layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection opener: which logical link and which producer copy this
    /// connection carries.
    Hello { link: u32, producer: u32 },
    /// Handshake reply: the consumer's cumulative-ack watermark for this
    /// producer; the producer suppresses frames with `seq < resume_seq`.
    HelloAck { resume_seq: u64 },
    /// One packet: the `seq`-th the producer copy `from` ever sent on
    /// this link.
    Data {
        from: u32,
        seq: u64,
        payload: Vec<u8>,
    },
    /// Producer copy `from` finished its unit of work.
    End { from: u32 },
    /// Orderly connection shutdown (reconnection stays possible until
    /// `End` was seen).
    Close,
    /// One telemetry update (JSON payload; see
    /// [`crate::telemetry::decode_telemetry_payload`]). Only valid on
    /// connections handshaken with [`TELEMETRY_LINK`].
    Telemetry { payload: Vec<u8> },
    /// Liveness beacon on an otherwise idle link: carries no data and is
    /// consumed transparently by the frame reader (it only refreshes the
    /// per-peer silence deadline). Emitted by egress pumps when
    /// [`NetTuning::heartbeat`] is configured.
    Heartbeat,
}

/// Encode one frame to bytes (the socket path writes data payloads
/// without this intermediate copy; this form is for tests and small
/// control frames).
pub fn encode_frame(f: &Frame) -> Vec<u8> {
    match f {
        Frame::Hello { link, producer } => {
            let mut out = Vec::with_capacity(15);
            out.push(TAG_HELLO);
            out.extend_from_slice(&NET_MAGIC);
            out.extend_from_slice(&NET_VERSION.to_le_bytes());
            out.extend_from_slice(&link.to_le_bytes());
            out.extend_from_slice(&producer.to_le_bytes());
            out
        }
        Frame::HelloAck { resume_seq } => {
            let mut out = Vec::with_capacity(9);
            out.push(TAG_HELLO_ACK);
            out.extend_from_slice(&resume_seq.to_le_bytes());
            out
        }
        Frame::Data { from, seq, payload } => {
            let mut out = Vec::with_capacity(17 + payload.len());
            out.push(TAG_DATA);
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
            out
        }
        Frame::End { from } => {
            let mut out = Vec::with_capacity(5);
            out.push(TAG_END);
            out.extend_from_slice(&from.to_le_bytes());
            out
        }
        Frame::Close => vec![TAG_CLOSE],
        Frame::Heartbeat => vec![TAG_HEARTBEAT],
        Frame::Telemetry { payload } => {
            let mut out = Vec::with_capacity(5 + payload.len());
            out.push(TAG_TELEMETRY);
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
            out
        }
    }
}

fn get<const N: usize>(buf: &[u8], pos: usize, who: &str) -> FilterResult<[u8; N]> {
    buf.get(pos..pos + N)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| FilterError::malformed(who, "truncated frame"))
}

/// Decode one frame from the front of `buf`, returning it and the bytes
/// consumed. Hardened: payload lengths are validated against
/// [`MAX_FRAME_PAYLOAD`] and the remaining buffer before allocation;
/// unknown tags, bad magic, and version mismatches are `Malformed`.
pub fn decode_frame(buf: &[u8]) -> FilterResult<(Frame, usize)> {
    let who = "net";
    let tag = *buf
        .first()
        .ok_or_else(|| FilterError::malformed(who, "empty frame"))?;
    match tag {
        TAG_HELLO => {
            let magic: [u8; 4] = get(buf, 1, who)?;
            if magic != NET_MAGIC {
                return Err(FilterError::malformed(
                    who,
                    format!("bad magic {magic:02x?} (expected {NET_MAGIC:02x?})"),
                ));
            }
            let version = u16::from_le_bytes(get(buf, 5, who)?);
            if version != NET_VERSION {
                return Err(FilterError::malformed(
                    who,
                    format!("protocol version {version} (expected {NET_VERSION})"),
                ));
            }
            let link = u32::from_le_bytes(get(buf, 7, who)?);
            let producer = u32::from_le_bytes(get(buf, 11, who)?);
            Ok((Frame::Hello { link, producer }, 15))
        }
        TAG_HELLO_ACK => {
            let resume_seq = u64::from_le_bytes(get(buf, 1, who)?);
            Ok((Frame::HelloAck { resume_seq }, 9))
        }
        TAG_DATA => {
            let from = u32::from_le_bytes(get(buf, 1, who)?);
            let seq = u64::from_le_bytes(get(buf, 5, who)?);
            let len = u32::from_le_bytes(get(buf, 13, who)?) as usize;
            if len > MAX_FRAME_PAYLOAD {
                return Err(FilterError::malformed(
                    who,
                    format!("data frame declares {len} bytes (cap {MAX_FRAME_PAYLOAD})"),
                ));
            }
            let payload = buf
                .get(17..17 + len)
                .ok_or_else(|| FilterError::malformed(who, "truncated data payload"))?
                .to_vec();
            Ok((Frame::Data { from, seq, payload }, 17 + len))
        }
        TAG_END => {
            let from = u32::from_le_bytes(get(buf, 1, who)?);
            Ok((Frame::End { from }, 5))
        }
        TAG_CLOSE => Ok((Frame::Close, 1)),
        TAG_HEARTBEAT => Ok((Frame::Heartbeat, 1)),
        TAG_TELEMETRY => {
            let len = u32::from_le_bytes(get(buf, 1, who)?) as usize;
            if len > MAX_FRAME_PAYLOAD {
                return Err(FilterError::malformed(
                    who,
                    format!("telemetry frame declares {len} bytes (cap {MAX_FRAME_PAYLOAD})"),
                ));
            }
            let payload = buf
                .get(5..5 + len)
                .ok_or_else(|| FilterError::malformed(who, "truncated telemetry payload"))?
                .to_vec();
            Ok((Frame::Telemetry { payload }, 5 + len))
        }
        t => Err(FilterError::malformed(
            who,
            format!("unknown frame tag {t}"),
        )),
    }
}

/// Per-link transfer counters, reported into `cgp_obs` metrics by the
/// executor (`net.link<id>.frames` / `.bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetLinkStats {
    /// Data frames moved across the socket(s).
    pub frames: u64,
    /// Payload bytes moved across the socket(s).
    pub bytes: u64,
    /// Duplicated in-flight frames discarded by the sequence watermark
    /// after a reconnect (ingress side only).
    pub deduped: u64,
    /// Heartbeat-deadline verdicts: a peer went silent past the liveness
    /// deadline (ingress side only; under supervision this is a dirty
    /// disconnect awaiting a respawned peer, otherwise it fails the link).
    pub timeouts: u64,
    /// Times a producer reconnected to this link after a disconnect
    /// (ingress side only): a respawned worker process rejoining.
    pub reconnects: u64,
}

/// Liveness knobs for one link's endpoints.
///
/// `heartbeat` turns the protocol on: egress pumps emit
/// [`Frame::Heartbeat`] whenever the link has been idle that long, and
/// readers fail (or, supervised, declare a dirty disconnect) when a peer
/// is silent past [`NetTuning::deadline`]. `supervised` makes the ingress
/// side *lenient*: a dead connection parks the producer's slot instead of
/// failing the link, waiting up to `reconnect` for a respawned process to
/// rejoin (the launcher's supervision layer guarantees one is coming, or
/// kills the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetTuning {
    /// Emit a heartbeat after this much idle time, and derive the silence
    /// deadline from it. `None` disables the liveness protocol entirely
    /// (the pre-supervision behavior: a dead peer blocks reads until the
    /// run watchdog fires).
    pub heartbeat: Option<Duration>,
    /// Lenient ingress: treat dead connections as dirty disconnects and
    /// wait (bounded) for the producer to be respawned and reconnect.
    pub supervised: bool,
    /// How long a supervised ingress waits for a disconnected producer to
    /// reconnect before declaring the link dead.
    pub reconnect: Duration,
}

impl Default for NetTuning {
    fn default() -> Self {
        NetTuning {
            heartbeat: None,
            supervised: false,
            reconnect: Duration::from_secs(10),
        }
    }
}

impl NetTuning {
    /// Silence deadline: a peer that has sent nothing (not even a
    /// heartbeat) for this long is presumed dead or hung. Several missed
    /// beats, floored so scheduling jitter never fires it spuriously.
    pub fn deadline(&self) -> Option<Duration> {
        self.heartbeat
            .map(|every| (every * 4).max(Duration::from_secs(1)))
    }
}

/// A framed, cancellation-aware connection: blocking reads and writes
/// poll the socket at [`POLL`] granularity so a cancelled run unwedges
/// promptly even while a peer is silent.
struct FrameConn {
    stream: TcpStream,
    control: Option<Arc<RunControl>>,
    who: String,
    /// Fail a read when the peer has been silent this long (heartbeats
    /// count as traffic). `None` = wait forever (the run watchdog is the
    /// only backstop).
    deadline: Option<Duration>,
    /// Last time any byte arrived from the peer.
    last_rx: Instant,
}

/// Marker prefix for silence-deadline errors, so callers can count them
/// as heartbeat timeouts without a dedicated error kind.
const HEARTBEAT_TIMEOUT_MSG: &str = "heartbeat deadline exceeded";

/// Whether an error is a liveness verdict from [`FrameConn`]'s silence
/// deadline (vs. an ordinary socket/framing failure).
pub fn is_heartbeat_timeout(e: &FilterError) -> bool {
    e.message.starts_with(HEARTBEAT_TIMEOUT_MSG)
}

impl FrameConn {
    fn new(stream: TcpStream, control: Option<Arc<RunControl>>, who: String) -> FilterResult<Self> {
        let err = |e: std::io::Error| FilterError::new(who.clone(), format!("socket setup: {e}"));
        stream.set_nodelay(true).map_err(err)?;
        stream.set_read_timeout(Some(POLL)).map_err(err)?;
        stream.set_write_timeout(Some(POLL)).map_err(err)?;
        Ok(FrameConn {
            stream,
            control,
            who,
            deadline: None,
            last_rx: Instant::now(),
        })
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
        self.last_rx = Instant::now();
    }

    fn cancelled(&self) -> Option<FilterError> {
        self.control
            .as_ref()
            .filter(|c| c.is_cancelled())
            .map(|_| FilterError::cancelled(self.who.clone(), "run cancelled during socket I/O"))
    }

    /// Fill `buf` completely. `Ok(false)` means a clean EOF *before any
    /// byte* and `allow_eof` — the peer closed at a frame boundary. EOF
    /// mid-frame is malformed.
    fn fill(&mut self, buf: &mut [u8], allow_eof: bool) -> FilterResult<bool> {
        let mut off = 0;
        while off < buf.len() {
            match self.stream.read(&mut buf[off..]) {
                Ok(0) => {
                    if off == 0 && allow_eof {
                        return Ok(false);
                    }
                    return Err(FilterError::malformed(
                        self.who.clone(),
                        "connection closed mid-frame",
                    ));
                }
                Ok(n) => {
                    off += n;
                    self.last_rx = Instant::now();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if let Some(c) = self.cancelled() {
                        return Err(c);
                    }
                    if let Some(d) = self.deadline {
                        let silent = self.last_rx.elapsed();
                        if silent > d {
                            return Err(FilterError::stalled(
                                self.who.clone(),
                                format!(
                                    "{HEARTBEAT_TIMEOUT_MSG}: peer silent for \
                                     {silent:?} (deadline {d:?})"
                                ),
                            ));
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(FilterError::new(
                        self.who.clone(),
                        format!("socket read: {e}"),
                    ))
                }
            }
        }
        Ok(true)
    }

    /// Read one frame; `Ok(None)` on a clean EOF at a frame boundary.
    /// Heartbeats are consumed here (their only effect — refreshing the
    /// silence deadline — happens in `fill`), so callers never see them.
    /// The frame headers are re-parsed through [`decode_frame`] so the
    /// socket path and the testable slice path share one hardened parser.
    fn read_frame(&mut self) -> FilterResult<Option<Frame>> {
        loop {
            match self.read_frame_raw()? {
                Some(Frame::Heartbeat) => continue,
                other => return Ok(other),
            }
        }
    }

    fn read_frame_raw(&mut self) -> FilterResult<Option<Frame>> {
        let mut tag = [0u8; 1];
        if !self.fill(&mut tag, true)? {
            return Ok(None);
        }
        let Some(header_len) = frame_header_len(tag[0]) else {
            return Err(FilterError::malformed(
                self.who.clone(),
                format!("unknown frame tag {}", tag[0]),
            ));
        };
        let mut frame = vec![tag[0]; 1];
        frame.resize(1 + header_len, 0);
        self.fill(&mut frame[1..], false)?;
        // Frames with a variable payload: the length field's offset
        // within the fixed header.
        if let Some(at) = frame_len_field_at(tag[0]) {
            let len = u32::from_le_bytes(frame[at..at + 4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_PAYLOAD {
                return Err(FilterError::malformed(
                    self.who.clone(),
                    format!("frame declares {len} bytes (cap {MAX_FRAME_PAYLOAD})"),
                ));
            }
            let at = frame.len();
            frame.resize(at + len, 0);
            self.fill(&mut frame[at..], false)?;
        }
        decode_frame(&frame)
            .map(|(f, _)| Some(f))
            .map_err(|e| FilterError {
                filter: self.who.clone(),
                ..e
            })
    }

    fn write_all(&mut self, mut buf: &[u8]) -> FilterResult<()> {
        while !buf.is_empty() {
            match self.stream.write(buf) {
                Ok(0) => {
                    return Err(FilterError::new(
                        self.who.clone(),
                        "socket write returned 0 bytes",
                    ))
                }
                Ok(n) => buf = &buf[n..],
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if let Some(c) = self.cancelled() {
                        return Err(c);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(FilterError::new(
                        self.who.clone(),
                        format!("socket write: {e}"),
                    ))
                }
            }
        }
        Ok(())
    }

    fn write_frame(&mut self, f: &Frame) -> FilterResult<()> {
        self.write_all(&encode_frame(f))
    }

    /// Write a data frame without copying the payload into an
    /// intermediate encoding.
    fn write_data(&mut self, from: u32, seq: u64, payload: &[u8]) -> FilterResult<()> {
        debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
        self.write_all(&encode_data_header(from, seq, payload.len()))?;
        self.write_all(payload)
    }
}

/// Connect to `addr` with bounded retry and backoff (the peer worker may
/// not have bound its listener yet). Cancellable; emits a `net.connect`
/// trace span covering the whole attempt sequence.
/// Whether a failed `connect` is worth retrying: the listener may not be
/// accepting yet (the launcher spawns workers concurrently), the peer may
/// have dropped a backlogged attempt, or the kernel was momentarily out
/// of ephemeral ports. Anything else — an unparseable or unroutable
/// address, permission denied — fails identically on every attempt, so
/// retrying only burns the whole budget before reporting it.
fn connect_error_is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        e.kind(),
        ConnectionRefused
            | ConnectionReset
            | ConnectionAborted
            | NotConnected
            | TimedOut
            | WouldBlock
            | Interrupted
            | AddrNotAvailable
    )
}

/// Ceiling for the exponential backoff between connect attempts.
const MAX_CONNECT_DELAY: Duration = Duration::from_millis(500);

/// Double the backoff without overflowing, capped at
/// [`MAX_CONNECT_DELAY`].
fn next_connect_delay(delay: Duration) -> Duration {
    delay.saturating_mul(2).min(MAX_CONNECT_DELAY)
}

pub fn connect_with_retry(
    addr: &str,
    control: Option<&Arc<RunControl>>,
    who: &str,
) -> FilterResult<TcpStream> {
    let _span = trace::span(format!("net.connect {addr}"), "net", PID_RUNTIME, 0);
    let start = Instant::now();
    let mut delay = Duration::from_millis(10);
    let mut attempts = 0u32;
    loop {
        if control.is_some_and(|c| c.is_cancelled()) {
            return Err(FilterError::cancelled(
                who.to_string(),
                "run cancelled while connecting",
            ));
        }
        attempts += 1;
        match TcpStream::connect(addr) {
            Ok(s) => {
                if trace::enabled() && attempts > 1 {
                    trace::instant(
                        "net.connect.retries",
                        "net",
                        PID_RUNTIME,
                        0,
                        vec![("attempts", u64::from(attempts).into())],
                    );
                }
                return Ok(s);
            }
            Err(e) => {
                if !connect_error_is_transient(&e) {
                    return Err(FilterError::new(
                        who.to_string(),
                        format!("connect to {addr} failed (not retryable): {e}"),
                    ));
                }
                if start.elapsed() >= CONNECT_BUDGET {
                    return Err(FilterError::new(
                        who.to_string(),
                        format!("connect to {addr} failed after {attempts} attempts: {e}"),
                    ));
                }
                std::thread::sleep(delay);
                delay = next_connect_delay(delay);
            }
        }
    }
}

/// Producer-side remote endpoint: one connection carrying one producer
/// copy's packets for one logical link. Sequence numbers are assigned
/// densely here; the `HelloAck` resume watermark suppresses frames the
/// consumer already acknowledged (reconnection after a consumer restart).
///
/// With [`NetTuning::heartbeat`] configured, a sidecar thread shares the
/// connection (frame-granular mutex, so a heartbeat can never interleave
/// inside a data frame) and emits [`Frame::Heartbeat`] whenever the link
/// has been idle for one heartbeat interval — a blocked or slow producer
/// stage no longer looks dead to the consumer's silence deadline.
pub struct RemoteStreamWriter {
    conn: Arc<Mutex<FrameConn>>,
    producer: u32,
    next_seq: u64,
    resume_seq: u64,
    frames: u64,
    bytes: u64,
    beat: Option<HeartbeatHandle>,
}

/// The egress heartbeat sidecar: stop flag + thread + beats-sent counter.
struct HeartbeatHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
    sent: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
    last_tx: Arc<Mutex<Instant>>,
}

impl HeartbeatHandle {
    fn spawn(conn: Arc<Mutex<FrameConn>>, every: Duration) -> Self {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sent = Arc::new(AtomicU64::new(0));
        let last_tx = Arc::new(Mutex::new(Instant::now()));
        let (stop2, sent2, last2) = (Arc::clone(&stop), Arc::clone(&sent), Arc::clone(&last_tx));
        let thread = std::thread::spawn(move || {
            let slice = every.min(Duration::from_millis(50));
            while !stop2.load(Ordering::Acquire) {
                std::thread::sleep(slice);
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let idle = plock(&last2).elapsed();
                if idle < every {
                    continue;
                }
                let mut conn = plock(&conn);
                // Re-check idleness under the lock (a data write may have
                // just refreshed it) and stop on write errors — the data
                // path will surface the same failure with full context.
                if plock(&last2).elapsed() < every {
                    continue;
                }
                if conn.write_frame(&Frame::Heartbeat).is_err() {
                    break;
                }
                *plock(&last2) = Instant::now();
                sent2.fetch_add(1, Ordering::Relaxed);
            }
        });
        HeartbeatHandle {
            stop,
            sent,
            thread: Some(thread),
            last_tx,
        }
    }

    fn mark_tx(&self) {
        *plock(&self.last_tx) = Instant::now();
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl RemoteStreamWriter {
    /// Connect (with retry) and handshake as `producer` on `link`.
    pub fn connect(
        addr: &str,
        link: u32,
        producer: u32,
        control: Option<Arc<RunControl>>,
    ) -> FilterResult<Self> {
        Self::connect_tuned(addr, link, producer, control, NetTuning::default())
    }

    /// [`RemoteStreamWriter::connect`] with liveness tuning: the
    /// handshake wait is bounded by the silence deadline and, when
    /// heartbeats are on, the idle-link beacon thread is started.
    pub fn connect_tuned(
        addr: &str,
        link: u32,
        producer: u32,
        control: Option<Arc<RunControl>>,
        tuning: NetTuning,
    ) -> FilterResult<Self> {
        let who = format!("net.egress[{producer}]");
        let stream = connect_with_retry(addr, control.as_ref(), &who)?;
        let mut conn = FrameConn::new(stream, control, who.clone())?;
        // A consumer that accepted but never replies must not hang the
        // producer forever: bound the handshake by the silence deadline.
        conn.set_deadline(tuning.deadline());
        conn.write_frame(&Frame::Hello { link, producer })?;
        let resume_seq = match conn.read_frame()? {
            Some(Frame::HelloAck { resume_seq }) => resume_seq,
            Some(f) => {
                return Err(FilterError::malformed(
                    who,
                    format!("expected HelloAck, got {f:?}"),
                ))
            }
            None => {
                return Err(FilterError::malformed(
                    who,
                    "connection closed during handshake",
                ))
            }
        };
        let conn = Arc::new(Mutex::new(conn));
        let beat = tuning
            .heartbeat
            .map(|every| HeartbeatHandle::spawn(Arc::clone(&conn), every));
        Ok(RemoteStreamWriter {
            conn,
            producer,
            next_seq: resume_seq,
            resume_seq,
            frames: 0,
            bytes: 0,
            beat,
        })
    }

    /// Send one packet. Frames below the consumer's resume watermark are
    /// suppressed (already durable on the other side).
    pub fn write(&mut self, buf: &Buffer) -> FilterResult<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        if seq < self.resume_seq {
            return Ok(());
        }
        let mut conn = plock(&self.conn);
        if buf.len() > MAX_FRAME_PAYLOAD {
            return Err(FilterError::new(
                conn.who.clone(),
                format!(
                    "packet of {} bytes exceeds the frame cap {MAX_FRAME_PAYLOAD}",
                    buf.len()
                ),
            ));
        }
        conn.write_data(self.producer, seq, buf.as_slice())?;
        drop(conn);
        if let Some(b) = &self.beat {
            b.mark_tx();
        }
        self.frames += 1;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Signal end-of-work and close the connection in order.
    pub fn finish(mut self) -> FilterResult<NetLinkStats> {
        if let Some(mut b) = self.beat.take() {
            b.stop();
        }
        let mut conn = plock(&self.conn);
        conn.write_frame(&Frame::End {
            from: self.producer,
        })?;
        conn.write_frame(&Frame::Close)?;
        let _ = conn.stream.shutdown(std::net::Shutdown::Write);
        Ok(NetLinkStats {
            frames: self.frames,
            bytes: self.bytes,
            ..Default::default()
        })
    }

    /// Data frames / payload bytes sent so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.frames, self.bytes)
    }

    /// Heartbeats emitted on this connection so far.
    pub fn heartbeats_sent(&self) -> u64 {
        self.beat
            .as_ref()
            .map_or(0, |b| b.sent.load(Ordering::Relaxed))
    }
}

/// Consumer-side remote endpoint: one accepted, handshaken connection
/// delivering one upstream producer copy's frames.
pub struct RemoteStreamReader {
    conn: FrameConn,
    producer: u32,
}

impl RemoteStreamReader {
    /// Validate an accepted connection's `Hello` against this link and
    /// reply with the producer's resume watermark.
    pub fn accept(
        stream: TcpStream,
        link: u32,
        producers: usize,
        resume_seq_of: impl Fn(u32) -> u64,
        control: Option<Arc<RunControl>>,
    ) -> FilterResult<Self> {
        Self::accept_tuned(stream, link, producers, resume_seq_of, control, None)
    }

    /// [`RemoteStreamReader::accept`] with an optional silence deadline
    /// applied to the connection (handshake included).
    pub fn accept_tuned(
        stream: TcpStream,
        link: u32,
        producers: usize,
        resume_seq_of: impl Fn(u32) -> u64,
        control: Option<Arc<RunControl>>,
        deadline: Option<Duration>,
    ) -> FilterResult<Self> {
        let mut conn = FrameConn::new(stream, control, "net.ingress".to_string())?;
        conn.set_deadline(deadline);
        let producer = match conn.read_frame()? {
            Some(Frame::Hello {
                link: got_link,
                producer,
            }) => {
                if got_link != link {
                    return Err(FilterError::malformed(
                        conn.who,
                        format!("connection for link {got_link} arrived at link {link}"),
                    ));
                }
                if producer as usize >= producers {
                    return Err(FilterError::malformed(
                        conn.who,
                        format!("producer {producer} out of range (link has {producers})"),
                    ));
                }
                producer
            }
            Some(f) => {
                return Err(FilterError::malformed(
                    conn.who,
                    format!("expected Hello, got {f:?}"),
                ))
            }
            None => {
                return Err(FilterError::malformed(
                    conn.who,
                    "connection closed during handshake",
                ))
            }
        };
        conn.who = format!("net.ingress[{producer}]");
        conn.write_frame(&Frame::HelloAck {
            resume_seq: resume_seq_of(producer),
        })?;
        Ok(RemoteStreamReader { conn, producer })
    }

    /// Which producer copy this connection carries.
    pub fn producer(&self) -> u32 {
        self.producer
    }

    /// Read the next frame; `Ok(None)` on a clean disconnect at a frame
    /// boundary (the producer may reconnect).
    pub fn read(&mut self) -> FilterResult<Option<Frame>> {
        self.conn.read_frame()
    }
}

/// Seq-deduplicating bridge from one remote producer onto its local
/// [`StreamWriter`]. The next-expected watermark lives in a shared atomic
/// that survives the per-connection handler, so a reconnecting producer
/// can never regress it: duplicated in-flight frames are dropped, gaps
/// are malformed.
pub struct IngressFeeder {
    writer: StreamWriter,
    next_seq: Arc<AtomicU64>,
    deduped: u64,
    ended: bool,
}

impl IngressFeeder {
    pub fn new(writer: StreamWriter) -> Self {
        IngressFeeder {
            writer,
            next_seq: Arc::new(AtomicU64::new(0)),
            deduped: 0,
            ended: false,
        }
    }

    /// The cumulative watermark published to a (re)connecting producer as
    /// `HelloAck { resume_seq }`.
    pub fn resume_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Acquire)
    }

    /// Shared handle on the watermark, readable while the feeder itself
    /// is checked out to a connection handler (a respawned producer may
    /// handshake before the dead connection's handler has returned it).
    pub fn watermark(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.next_seq)
    }

    /// Duplicated frames discarded so far.
    pub fn deduped(&self) -> u64 {
        self.deduped
    }

    /// Whether this producer already sent `End`.
    pub fn ended(&self) -> bool {
        self.ended
    }

    /// Deliver frame `seq`: `Ok(true)` if forwarded to the local stream,
    /// `Ok(false)` if it was a duplicate below the watermark. A sequence
    /// *gap* means frames were lost on a path that guarantees FIFO —
    /// that's corruption, not reordering, and is malformed.
    pub fn feed(&mut self, seq: u64, buf: Buffer) -> FilterResult<bool> {
        let expect = self.next_seq.load(Ordering::Acquire);
        if seq < expect {
            self.deduped += 1;
            return Ok(false);
        }
        if seq > expect {
            return Err(FilterError::malformed(
                "net.ingress",
                format!("sequence gap: got {seq}, expected {expect}"),
            ));
        }
        self.writer.write(buf)?;
        self.next_seq.store(expect + 1, Ordering::Release);
        Ok(true)
    }

    /// The producer finished its unit of work: propagate end-of-work to
    /// the local stream.
    pub fn end(&mut self) {
        self.ended = true;
        self.writer.close();
    }
}

/// Slot table entry for one upstream producer copy. The feeder (and its
/// watermark) live here between connections.
struct Slot {
    feeder: Option<IngressFeeder>,
    /// Shared view of the feeder's watermark, readable even while the
    /// feeder is checked out to a handler.
    watermark: Arc<AtomicU64>,
    /// When the producer's connection died without `End` (supervised
    /// mode): the reconnect deadline runs from here.
    parked_at: Option<Instant>,
    /// Whether this producer ever completed a handshake (distinguishes a
    /// first connect from a respawned process rejoining).
    connected_once: bool,
}

/// Serve one logical link's ingress side: accept one connection per
/// upstream producer copy on `listener`, handshake, and bridge frames
/// onto the local `writers` (writer `p` plays producer copy `p`, keeping
/// the in-process round-robin routing). Returns when every producer has
/// sent `End`, or with the first error (cancelling the run so blocked
/// filter copies unwedge).
///
/// Producers may disconnect cleanly (`Close` or EOF at a frame boundary)
/// and reconnect; the sequence watermark in the slot table dedups any
/// re-sent in-flight frames. EOF mid-frame is malformed and fails the
/// link.
pub fn serve_ingress(
    listener: TcpListener,
    link: u32,
    writers: Vec<StreamWriter>,
    control: Option<Arc<RunControl>>,
) -> FilterResult<NetLinkStats> {
    serve_ingress_probed(listener, link, writers, control, None)
}

/// [`serve_ingress`] with an optional live [`LinkProbe`]: frame/byte/
/// dedup counters tick as traffic flows, so the telemetry sampler can
/// report per-link rates mid-run instead of only at link teardown.
pub fn serve_ingress_probed(
    listener: TcpListener,
    link: u32,
    writers: Vec<StreamWriter>,
    control: Option<Arc<RunControl>>,
    probe: Option<Arc<LinkProbe>>,
) -> FilterResult<NetLinkStats> {
    serve_ingress_tuned(
        listener,
        link,
        writers,
        control,
        probe,
        NetTuning::default(),
    )
}

/// [`serve_ingress_probed`] with liveness tuning. With default tuning the
/// behavior is byte-for-byte the pre-supervision protocol. With
/// `tuning.supervised` the link becomes crash-tolerant: a connection that
/// dies without `End` — reset, EOF mid-frame, or silence past the
/// heartbeat deadline — parks the producer's slot instead of failing the
/// link, and a respawned process may reconnect (within
/// `tuning.reconnect`) and resume from the `HelloAck` watermark; a
/// reconnect after `End` is drained and discarded (the respawned prefix
/// deterministically regenerates everything, so its tail duplicates are
/// expected, not corruption).
pub fn serve_ingress_tuned(
    listener: TcpListener,
    link: u32,
    writers: Vec<StreamWriter>,
    control: Option<Arc<RunControl>>,
    probe: Option<Arc<LinkProbe>>,
    tuning: NetTuning,
) -> FilterResult<NetLinkStats> {
    let producers = writers.len();
    let slots: Vec<Mutex<Slot>> = writers
        .into_iter()
        .map(|w| {
            let feeder = IngressFeeder::new(w);
            Mutex::new(Slot {
                watermark: feeder.watermark(),
                feeder: Some(feeder),
                parked_at: None,
                connected_once: false,
            })
        })
        .collect();
    let slots = &slots;
    let remaining = AtomicUsize::new(producers);
    let remaining = &remaining;
    let frames = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let timeouts = &timeouts;
    let reconnects = AtomicU64::new(0);
    let errors: Mutex<Vec<FilterError>> = Mutex::new(Vec::new());
    listener
        .set_nonblocking(true)
        .map_err(|e| FilterError::new("net.ingress", format!("listener: {e}")))?;
    let cancelled = || control.as_ref().is_some_and(|c| c.is_cancelled());
    let fail = |e: FilterError, errs: &Mutex<Vec<FilterError>>| {
        if let Some(c) = &control {
            c.cancel(format!("ingress link {link} failed: {e}"));
        }
        plock(errs).push(e);
    };

    std::thread::scope(|scope| {
        loop {
            if remaining.load(Ordering::Acquire) == 0 || cancelled() {
                break;
            }
            if !plock(&errors).is_empty() {
                break;
            }
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Supervised: a parked producer whose replacement
                    // never arrives must fail in bounded time, not block
                    // the link until the run watchdog.
                    if tuning.supervised {
                        let expired = slots.iter().position(|s| {
                            plock(s)
                                .parked_at
                                .is_some_and(|t| t.elapsed() > tuning.reconnect)
                        });
                        if let Some(p) = expired {
                            fail(
                                FilterError::stalled(
                                    "net.ingress",
                                    format!(
                                        "producer {p} disconnected and no replacement \
                                         reconnected within {:?} (worker presumed dead; \
                                         restart budget exhausted?)",
                                        tuning.reconnect
                                    ),
                                ),
                                &errors,
                            );
                            break;
                        }
                    }
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    fail(
                        FilterError::new("net.ingress", format!("accept: {e}")),
                        &errors,
                    );
                    break;
                }
            };
            // Handshake inline (it is bounded by the socket timeouts),
            // then hand the connection + feeder to a handler thread so
            // every producer streams concurrently. The watermark is read
            // through the slot's shared handle: it stays correct even
            // while the feeder is checked out to a dying connection.
            let remote = match RemoteStreamReader::accept_tuned(
                stream,
                link,
                producers,
                |p| plock(&slots[p as usize]).watermark.load(Ordering::Acquire),
                control.clone(),
                tuning.deadline(),
            ) {
                Ok(r) => r,
                Err(e) => {
                    fail(e, &errors);
                    break;
                }
            };
            let p = remote.producer() as usize;
            // A respawned producer can handshake while the dead
            // connection's handler is still timing out its read; wait
            // (bounded) for the handler to park the feeder.
            let wait_budget = Instant::now();
            let mut feeder = loop {
                if let Some(f) = plock(&slots[p]).feeder.take() {
                    break Some(f);
                }
                if !tuning.supervised || wait_budget.elapsed() > tuning.reconnect || cancelled() {
                    break None;
                }
                std::thread::sleep(ACCEPT_POLL);
            };
            let Some(feeder) = feeder.take() else {
                fail(
                    FilterError::malformed(
                        "net.ingress",
                        format!("producer {p} connected twice concurrently"),
                    ),
                    &errors,
                );
                break;
            };
            if feeder.ended() {
                plock(&slots[p]).feeder = Some(feeder);
                if tuning.supervised {
                    // A respawned prefix regenerates its full output; the
                    // tail past this link's End is duplicate by
                    // construction. Drain and discard it.
                    scope.spawn(move || {
                        let mut remote = remote;
                        loop {
                            match remote.read() {
                                Ok(Some(Frame::End { .. })) | Ok(Some(Frame::Close)) | Ok(None) => {
                                    break
                                }
                                Ok(Some(_)) => continue,
                                Err(_) => break,
                            }
                        }
                    });
                    continue;
                }
                fail(
                    FilterError::malformed(
                        "net.ingress",
                        format!("producer {p} reconnected after End"),
                    ),
                    &errors,
                );
                break;
            }
            {
                let mut slot = plock(&slots[p]);
                slot.parked_at = None;
                if slot.connected_once {
                    reconnects.fetch_add(1, Ordering::Relaxed);
                }
                slot.connected_once = true;
            }
            let (frames, bytes, errors) = (&frames, &bytes, &errors);
            let fail = &fail;
            let probe = probe.clone();
            scope.spawn(move || {
                let mut remote = remote;
                let mut feeder = feeder;
                // Whether this connection died without `End` (supervised:
                // park the slot and await a respawned producer).
                let mut parked = false;
                loop {
                    match remote.read() {
                        Ok(Some(Frame::Data { from, seq, payload })) => {
                            if from as usize != p {
                                fail(
                                    FilterError::malformed(
                                        "net.ingress",
                                        format!(
                                            "frame from producer {from} on producer {p}'s \
                                             connection"
                                        ),
                                    ),
                                    errors,
                                );
                                break;
                            }
                            let n = payload.len() as u64;
                            match feeder.feed(seq, Buffer::from_vec(payload)) {
                                Ok(true) => {
                                    frames.fetch_add(1, Ordering::Relaxed);
                                    bytes.fetch_add(n, Ordering::Relaxed);
                                    if let Some(p) = &probe {
                                        p.count_frame(n);
                                    }
                                }
                                Ok(false) => {
                                    if let Some(p) = &probe {
                                        p.deduped.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(e) => {
                                    fail(e, errors);
                                    break;
                                }
                            }
                        }
                        Ok(Some(Frame::End { from })) => {
                            if from as usize != p {
                                fail(
                                    FilterError::malformed(
                                        "net.ingress",
                                        format!(
                                            "End from producer {from} on producer {p}'s \
                                                 connection"
                                        ),
                                    ),
                                    errors,
                                );
                                break;
                            }
                            feeder.end();
                            remaining.fetch_sub(1, Ordering::AcqRel);
                            break;
                        }
                        // Clean disconnect: the producer may reconnect
                        // (its process restarted); the watermark in the
                        // slot table survives.
                        Ok(Some(Frame::Close)) | Ok(None) => {
                            parked = tuning.supervised;
                            break;
                        }
                        Ok(Some(f)) => {
                            fail(
                                FilterError::malformed(
                                    "net.ingress",
                                    format!("unexpected frame mid-stream: {f:?}"),
                                ),
                                errors,
                            );
                            break;
                        }
                        Err(e) => {
                            // Supervised: a dead connection — reset, EOF
                            // mid-frame, heartbeat timeout — is a dirty
                            // disconnect, not link failure. The partial
                            // frame (if any) was never fed, so the
                            // watermark is consistent and a respawned
                            // producer resumes exactly past it.
                            if tuning.supervised && e.kind != crate::error::ErrorKind::Cancelled {
                                if is_heartbeat_timeout(&e) {
                                    timeouts.fetch_add(1, Ordering::Relaxed);
                                }
                                parked = true;
                                break;
                            }
                            fail(e, errors);
                            break;
                        }
                    }
                }
                // Return the feeder (and its watermark) to the slot for a
                // possible reconnect; start the reconnect clock if the
                // connection died without End.
                let mut slot = plock(&slots[p]);
                if parked {
                    slot.parked_at = Some(Instant::now());
                }
                slot.feeder = Some(feeder);
            });
        }
    });

    // Close any local writer still open (error/cancel paths), so
    // downstream readers see end-of-work instead of blocking forever.
    let mut deduped = 0;
    for slot in slots {
        if let Some(f) = &mut plock(slot).feeder {
            deduped += f.deduped();
            f.writer.close();
        }
    }
    if let Some(e) = plock(&errors).first() {
        return Err(e.clone());
    }
    if cancelled() && remaining.load(Ordering::Acquire) > 0 {
        return Err(FilterError::cancelled(
            "net.ingress",
            "run cancelled before all producers finished",
        ));
    }
    Ok(NetLinkStats {
        frames: frames.load(Ordering::Relaxed),
        bytes: bytes.load(Ordering::Relaxed),
        deduped,
        timeouts: timeouts.load(Ordering::Relaxed),
        reconnects: reconnects.load(Ordering::Relaxed),
    })
}

/// Drain one local [`StreamReader`] (the 1→1 stream behind one producer
/// copy) into a remote connection. Each successfully transmitted packet
/// is acknowledged on the local stream — the socket plays a stateless
/// consumer, so the producer side's replay buffers stay bounded and a
/// restarted filter copy replays only untransmitted packets.
pub fn egress_pump(
    reader: StreamReader,
    addr: &str,
    link: u32,
    producer: u32,
    control: Option<Arc<RunControl>>,
) -> FilterResult<NetLinkStats> {
    egress_pump_probed(reader, addr, link, producer, control, None)
}

/// [`egress_pump`] with an optional live [`LinkProbe`] (shared by every
/// producer copy's pump on the link): transmitted frame/byte counters
/// tick per packet for the telemetry sampler.
pub fn egress_pump_probed(
    reader: StreamReader,
    addr: &str,
    link: u32,
    producer: u32,
    control: Option<Arc<RunControl>>,
    probe: Option<Arc<LinkProbe>>,
) -> FilterResult<NetLinkStats> {
    egress_pump_tuned(
        reader,
        addr,
        link,
        producer,
        control,
        probe,
        NetTuning::default(),
    )
}

/// [`egress_pump_probed`] with liveness tuning: the handshake wait is
/// bounded by the silence deadline, and with heartbeats configured the
/// connection emits [`Frame::Heartbeat`] whenever the producer stage is
/// idle — so the consumer's deadline distinguishes "slow" from "dead".
pub fn egress_pump_tuned(
    mut reader: StreamReader,
    addr: &str,
    link: u32,
    producer: u32,
    control: Option<Arc<RunControl>>,
    probe: Option<Arc<LinkProbe>>,
    tuning: NetTuning,
) -> FilterResult<NetLinkStats> {
    let mut conn =
        RemoteStreamWriter::connect_tuned(addr, link, producer, control.clone(), tuning)?;
    let (mut pf, mut pb) = (0u64, 0u64);
    while let Some(buf) = reader.read() {
        conn.write(&buf)?;
        reader.commit_acks();
        if let Some(p) = &probe {
            // Delta against the connection's own counters, so suppressed
            // resends never inflate the probe.
            let (f, b) = conn.stats();
            p.frames.fetch_add(f - pf, Ordering::Relaxed);
            p.bytes.fetch_add(b - pb, Ordering::Relaxed);
            (pf, pb) = (f, b);
        }
    }
    if control.as_ref().is_some_and(|c| c.is_cancelled()) {
        return Err(FilterError::cancelled(
            format!("net.egress[{producer}]"),
            "run cancelled during transmit",
        ));
    }
    conn.finish()
}

/// Worker-side telemetry connection to the launcher's aggregator.
///
/// Handshakes with [`TELEMETRY_LINK`] (so version mismatches are caught
/// exactly like on data links), then ships opaque telemetry payloads.
/// All sends are best-effort from the caller's perspective: losing
/// telemetry must never fail a run, so callers typically drop the client
/// on the first error.
pub struct TelemetryClient {
    conn: FrameConn,
}

impl TelemetryClient {
    /// Connect (single attempt — the launcher binds its aggregator
    /// before spawning workers, and a retry budget here would stall a
    /// worker whose launcher died; telemetry is best-effort) and
    /// handshake as `worker`.
    pub fn connect(
        addr: &str,
        worker: u32,
        control: Option<Arc<RunControl>>,
    ) -> FilterResult<Self> {
        let who = format!("net.telemetry[{worker}]");
        if control.as_ref().is_some_and(|c| c.is_cancelled()) {
            return Err(FilterError::cancelled(
                who,
                "run cancelled while connecting",
            ));
        }
        let stream = TcpStream::connect(addr)
            .map_err(|e| FilterError::new(who.clone(), format!("connect to {addr} failed: {e}")))?;
        let mut conn = FrameConn::new(stream, control, who.clone())?;
        conn.write_frame(&Frame::Hello {
            link: TELEMETRY_LINK,
            producer: worker,
        })?;
        match conn.read_frame()? {
            Some(Frame::HelloAck { .. }) => {}
            Some(f) => {
                return Err(FilterError::malformed(
                    who,
                    format!("expected HelloAck, got {f:?}"),
                ))
            }
            None => {
                return Err(FilterError::malformed(
                    who,
                    "connection closed during handshake",
                ))
            }
        }
        Ok(TelemetryClient { conn })
    }

    /// Ship one telemetry payload.
    pub fn send(&mut self, payload: &[u8]) -> FilterResult<()> {
        if payload.len() > MAX_FRAME_PAYLOAD {
            return Err(FilterError::new(
                self.conn.who.clone(),
                format!(
                    "telemetry payload of {} bytes exceeds the frame cap {MAX_FRAME_PAYLOAD}",
                    payload.len()
                ),
            ));
        }
        let mut header = [0u8; 5];
        header[0] = TAG_TELEMETRY;
        header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        self.conn.write_all(&header)?;
        self.conn.write_all(payload)
    }

    /// Orderly shutdown; errors are ignored (the aggregator treats EOF
    /// and `Close` the same).
    pub fn close(mut self) {
        let _ = self.conn.write_frame(&Frame::Close);
        let _ = self.conn.stream.shutdown(std::net::Shutdown::Write);
    }
}

/// Serve the launcher side of the telemetry plane: accept worker
/// connections on `listener` and hand every decoded payload to
/// `on_update(worker, payload)`. Returns once `expected` connections
/// have terminated (cleanly or not), or when `control` is cancelled —
/// the launcher cancels after its worker processes exit, which also
/// covers workers that crash before ever connecting.
///
/// Telemetry is best-effort: per-connection decode errors end that
/// connection but are not propagated (a run must never fail because its
/// telemetry did). Only listener setup errors are returned.
pub fn serve_telemetry<F>(
    listener: TcpListener,
    expected: usize,
    control: Option<Arc<RunControl>>,
    on_update: F,
) -> FilterResult<()>
where
    F: Fn(u32, Vec<u8>) + Send + Sync,
{
    serve_telemetry_events(listener, expected, control, on_update, |_| {})
}

/// [`serve_telemetry`] plus a disconnect hook: `on_disconnect(worker)`
/// fires when a worker's connection ends (cleanly or not), after its
/// last update was delivered. Aggregators use it to retire the worker's
/// live state — without it, a crashed worker's final sample haunts every
/// merged status line.
pub fn serve_telemetry_events<F, D>(
    listener: TcpListener,
    expected: usize,
    control: Option<Arc<RunControl>>,
    on_update: F,
    on_disconnect: D,
) -> FilterResult<()>
where
    F: Fn(u32, Vec<u8>) + Send + Sync,
    D: Fn(u32) + Send + Sync,
{
    listener
        .set_nonblocking(true)
        .map_err(|e| FilterError::new("net.telemetry", format!("listener: {e}")))?;
    let finished = AtomicUsize::new(0);
    let finished = &finished;
    let cancelled = || control.as_ref().is_some_and(|c| c.is_cancelled());
    let on_update = &on_update;
    let on_disconnect = &on_disconnect;
    std::thread::scope(|scope| {
        while finished.load(Ordering::Acquire) < expected && !cancelled() {
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            let control = control.clone();
            scope.spawn(move || {
                let worker = (|| -> FilterResult<(FrameConn, u32)> {
                    let mut conn = FrameConn::new(stream, control, "net.telemetry".to_string())?;
                    match conn.read_frame()? {
                        Some(Frame::Hello { link, producer }) if link == TELEMETRY_LINK => {
                            conn.who = format!("net.telemetry[{producer}]");
                            conn.write_frame(&Frame::HelloAck { resume_seq: 0 })?;
                            Ok((conn, producer))
                        }
                        _ => Err(FilterError::malformed(
                            "net.telemetry",
                            "expected telemetry Hello",
                        )),
                    }
                })();
                let Ok((mut conn, worker)) = worker else {
                    finished.fetch_add(1, Ordering::AcqRel);
                    return;
                };
                // Close, EOF, an unexpected frame, or a decode error
                // all just end the connection.
                while let Ok(Some(Frame::Telemetry { payload })) = conn.read_frame() {
                    on_update(worker, payload);
                }
                on_disconnect(worker);
                finished.fetch_add(1, Ordering::AcqRel);
            });
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{logical_stream, Distribution};

    #[test]
    fn frames_roundtrip() {
        let frames = [
            Frame::Hello {
                link: 3,
                producer: 7,
            },
            Frame::HelloAck { resume_seq: 42 },
            Frame::Data {
                from: 1,
                seq: 99,
                payload: vec![1, 2, 3, 4, 5],
            },
            Frame::Data {
                from: 0,
                seq: 0,
                payload: vec![],
            },
            Frame::End { from: 2 },
            Frame::Close,
            Frame::Telemetry {
                payload: b"{\"source\":\"w0\"}".to_vec(),
            },
            Frame::Telemetry { payload: vec![] },
        ];
        for f in &frames {
            let bytes = encode_frame(f);
            let (back, used) = decode_frame(&bytes).unwrap();
            assert_eq!(&back, f);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn oversized_payload_is_rejected_before_allocating() {
        // Header declares ~4 GiB with a 0-byte body: must be rejected by
        // the cap check, never by an allocation attempt.
        let mut bytes = vec![TAG_DATA];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_frame(&bytes).unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Malformed);
        assert!(err.message.contains("cap"), "{err}");
    }

    #[test]
    fn truncated_frames_are_malformed_at_every_cut() {
        for f in [
            Frame::Hello {
                link: 1,
                producer: 0,
            },
            Frame::Data {
                from: 0,
                seq: 5,
                payload: vec![9; 32],
            },
            Frame::End { from: 0 },
        ] {
            let bytes = encode_frame(&f);
            for cut in 0..bytes.len() {
                let err = decode_frame(&bytes[..cut]).unwrap_err();
                assert_eq!(
                    err.kind,
                    crate::error::ErrorKind::Malformed,
                    "cut={cut} of {f:?}"
                );
            }
        }
    }

    #[test]
    fn bad_magic_version_and_tag_are_malformed() {
        let mut hello = encode_frame(&Frame::Hello {
            link: 0,
            producer: 0,
        });
        hello[1] = b'X';
        assert!(decode_frame(&hello).unwrap_err().message.contains("magic"));

        let mut hello = encode_frame(&Frame::Hello {
            link: 0,
            producer: 0,
        });
        hello[5] = 0xff;
        assert!(decode_frame(&hello)
            .unwrap_err()
            .message
            .contains("version"));

        assert!(decode_frame(&[200u8])
            .unwrap_err()
            .message
            .contains("unknown frame tag"));
    }

    #[test]
    fn oversized_telemetry_payload_is_rejected_before_allocating() {
        let mut bytes = vec![TAG_TELEMETRY];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_frame(&bytes).unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Malformed);
        assert!(err.message.contains("cap"), "{err}");
    }

    #[test]
    fn truncated_telemetry_payload_is_malformed() {
        let bytes = encode_frame(&Frame::Telemetry {
            payload: vec![7; 16],
        });
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind, crate::error::ErrorKind::Malformed, "cut={cut}");
        }
    }

    #[test]
    fn telemetry_client_ships_payloads_to_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let got: Mutex<Vec<(u32, Vec<u8>)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                serve_telemetry(listener, 2, None, |w, p| plock(&got).push((w, p))).unwrap();
            });
            for w in 0..2u32 {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = TelemetryClient::connect(&addr, w, None).unwrap();
                    client.send(format!("update-{w}-a").as_bytes()).unwrap();
                    client.send(format!("update-{w}-b").as_bytes()).unwrap();
                    client.close();
                });
            }
        });
        let mut got = plock(&got).clone();
        got.sort();
        assert_eq!(
            got,
            vec![
                (0, b"update-0-a".to_vec()),
                (0, b"update-0-b".to_vec()),
                (1, b"update-1-a".to_vec()),
                (1, b"update-1-b".to_vec()),
            ]
        );
    }

    #[test]
    fn ingress_feeder_dedups_and_rejects_gaps() {
        let (ws, mut rs) = logical_stream(1, 1, 16, Distribution::RoundRobin);
        let mut feeder = IngressFeeder::new(ws.into_iter().next().unwrap());
        for seq in 0..3 {
            assert!(feeder.feed(seq, Buffer::from_vec(vec![seq as u8])).unwrap());
        }
        // Duplicated in-flight frames after a reconnect: dropped.
        assert!(!feeder.feed(1, Buffer::from_vec(vec![1])).unwrap());
        assert!(!feeder.feed(2, Buffer::from_vec(vec![2])).unwrap());
        assert_eq!(feeder.deduped(), 2);
        assert_eq!(feeder.resume_seq(), 3, "watermark never regresses");
        // Next fresh frame is delivered.
        assert!(feeder.feed(3, Buffer::from_vec(vec![3])).unwrap());
        // A gap is corruption.
        let err = feeder.feed(9, Buffer::from_vec(vec![9])).unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Malformed);
        feeder.end();
        let seen: Vec<u8> = std::iter::from_fn(|| rs[0].read())
            .map(|b| b.as_slice()[0])
            .collect();
        assert_eq!(seen, vec![0, 1, 2, 3], "each frame delivered exactly once");
    }

    #[test]
    fn connect_error_classification() {
        use std::io::{Error, ErrorKind};
        // Listener-not-up-yet races are retryable.
        for kind in [
            ErrorKind::ConnectionRefused,
            ErrorKind::ConnectionReset,
            ErrorKind::TimedOut,
            ErrorKind::AddrNotAvailable,
        ] {
            assert!(
                connect_error_is_transient(&Error::from(kind)),
                "{kind:?} should be retryable"
            );
        }
        // Config mistakes fail the same way on every attempt.
        for kind in [
            ErrorKind::InvalidInput,
            ErrorKind::PermissionDenied,
            ErrorKind::NotFound,
            ErrorKind::Unsupported,
        ] {
            assert!(
                !connect_error_is_transient(&Error::from(kind)),
                "{kind:?} should fail fast"
            );
        }
    }

    #[test]
    fn connect_backoff_saturates_instead_of_overflowing() {
        assert_eq!(
            next_connect_delay(Duration::from_millis(10)),
            Duration::from_millis(20)
        );
        assert_eq!(next_connect_delay(MAX_CONNECT_DELAY), MAX_CONNECT_DELAY);
        // A pathological starting delay must not panic in the doubling.
        assert_eq!(next_connect_delay(Duration::MAX), MAX_CONNECT_DELAY);
    }

    #[test]
    fn connect_fails_fast_on_an_unparseable_address() {
        let start = std::time::Instant::now();
        let err = match connect_with_retry("definitely not an address", None, "test") {
            Err(e) => e,
            Ok(_) => panic!("nonsense address must not connect"),
        };
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "non-transient errors must not consume the 10s retry budget \
             (took {:?})",
            start.elapsed()
        );
        assert!(
            err.message.contains("not retryable"),
            "error says why it gave up immediately: {err}"
        );
    }
}
