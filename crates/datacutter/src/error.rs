//! Runtime errors.
//!
//! A [`FilterError`] carries *where* it happened (`filter`, normally a
//! `stage[copy]` label), *what* happened (`message`), and a structured
//! [`ErrorKind`] so callers can distinguish an ordinary filter failure
//! from a caught panic, a malformed packet, a run-deadline stall, or a
//! secondary cancellation. `retryable` marks transient failures the
//! executor may re-attempt under its [retry policy](crate::RetryPolicy).

use std::fmt;

/// What class of failure a [`FilterError`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorKind {
    /// The filter returned an error from its own code.
    #[default]
    Failed,
    /// The filter copy panicked; the executor caught the panic and
    /// converted it (panic isolation).
    Panicked,
    /// A packet could not be decoded (short / corrupt payload).
    Malformed,
    /// The run exceeded its deadline or made no progress for longer than
    /// the stall timeout; the message names where copies were blocked.
    Stalled,
    /// The copy was interrupted because the run was cancelled (secondary
    /// to the root cause, e.g. a deadline expiry elsewhere).
    Cancelled,
}

impl ErrorKind {
    fn verb(self) -> &'static str {
        match self {
            ErrorKind::Failed => "failed",
            ErrorKind::Panicked => "panicked",
            ErrorKind::Malformed => "received malformed data",
            ErrorKind::Stalled => "stalled",
            ErrorKind::Cancelled => "was cancelled",
        }
    }
}

/// An error raised by a filter or the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError {
    /// Name of the filter (or subsystem) that failed.
    pub filter: String,
    pub message: String,
    /// Failure class (ordinary error, caught panic, malformed packet,
    /// stall, cancellation).
    pub kind: ErrorKind,
    /// Whether the executor may retry the unit of work (bounded by the
    /// pipeline's retry policy).
    pub retryable: bool,
}

impl FilterError {
    pub fn new(filter: impl Into<String>, message: impl Into<String>) -> Self {
        FilterError {
            filter: filter.into(),
            message: message.into(),
            kind: ErrorKind::Failed,
            retryable: false,
        }
    }

    /// A caught panic, attributed to `filter`.
    pub fn panicked(filter: impl Into<String>, message: impl Into<String>) -> Self {
        FilterError {
            kind: ErrorKind::Panicked,
            ..FilterError::new(filter, message)
        }
    }

    /// A packet that could not be decoded.
    pub fn malformed(filter: impl Into<String>, message: impl Into<String>) -> Self {
        FilterError {
            kind: ErrorKind::Malformed,
            ..FilterError::new(filter, message)
        }
    }

    /// A deadline/stall-detector diagnosis.
    pub fn stalled(filter: impl Into<String>, message: impl Into<String>) -> Self {
        FilterError {
            kind: ErrorKind::Stalled,
            ..FilterError::new(filter, message)
        }
    }

    /// A copy interrupted by run cancellation.
    pub fn cancelled(filter: impl Into<String>, message: impl Into<String>) -> Self {
        FilterError {
            kind: ErrorKind::Cancelled,
            ..FilterError::new(filter, message)
        }
    }

    /// Mark this error as retryable under the executor's retry policy.
    pub fn retryable(mut self) -> Self {
        self.retryable = true;
        self
    }
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "filter `{}` {}: {}",
            self.filter,
            self.kind.verb(),
            self.message
        )
    }
}

impl std::error::Error for FilterError {}

/// Result alias for filter code.
pub type FilterResult<T> = Result<T, FilterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = FilterError::new("extract", "bad buffer");
        assert_eq!(e.to_string(), "filter `extract` failed: bad buffer");
    }

    #[test]
    fn display_names_the_kind() {
        assert_eq!(
            FilterError::panicked("f1[0]", "index out of bounds").to_string(),
            "filter `f1[0]` panicked: index out of bounds"
        );
        assert_eq!(
            FilterError::malformed("sum[1]", "short packet").to_string(),
            "filter `sum[1]` received malformed data: short packet"
        );
        assert_eq!(
            FilterError::stalled("pipeline", "deadline 100ms exceeded").to_string(),
            "filter `pipeline` stalled: deadline 100ms exceeded"
        );
    }

    #[test]
    fn kinds_and_retryable_flag() {
        let e = FilterError::new("x", "m");
        assert_eq!(e.kind, ErrorKind::Failed);
        assert!(!e.retryable);
        let r = FilterError::new("x", "m").retryable();
        assert!(r.retryable);
        assert_eq!(FilterError::cancelled("x", "m").kind, ErrorKind::Cancelled);
    }
}
