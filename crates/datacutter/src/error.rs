//! Runtime errors.

use std::fmt;

/// An error raised by a filter or the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError {
    /// Name of the filter (or subsystem) that failed.
    pub filter: String,
    pub message: String,
}

impl FilterError {
    pub fn new(filter: impl Into<String>, message: impl Into<String>) -> Self {
        FilterError {
            filter: filter.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter `{}` failed: {}", self.filter, self.message)
    }
}

impl std::error::Error for FilterError {}

/// Result alias for filter code.
pub type FilterResult<T> = Result<T, FilterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = FilterError::new("extract", "bad buffer");
        assert_eq!(e.to_string(), "filter `extract` failed: bad buffer");
    }
}
