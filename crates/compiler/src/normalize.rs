//! Normalization: locate the `PipelinedLoop`, split its body into *atomic
//! units* separated by candidate filter boundaries, and perform **loop
//! fission** so that no candidate boundary remains inside a `foreach`
//! (Section 4.1 of the paper).
//!
//! Candidate boundaries are:
//! 1. start and end of a `foreach` loop,
//! 2. a conditional statement (inside or outside a `foreach`),
//! 3. start and end of a statement-level function call within a `foreach`.
//!
//! Fission splits `foreach (c in d) { A; if (p) { B }; g(c); C }` into
//! `foreach{A}`, a [`UnitKind::CondForeach`] for the conditional, a
//! `foreach{g(c)}` call unit, and `foreach{C}` — introducing **scalar
//! expansion** (per-iteration locals that cross a fission cut become arrays
//! indexed by `c - d.lo()`).
//!
//! The rewritten program is re-type-checked, so it remains runnable by the
//! sequential interpreter; fission correctness is testable by comparing the
//! two interpreter runs.

use crate::error::{CompileError, CompileResult};
use cgp_lang::ast::*;
use cgp_lang::span::Span;
use cgp_lang::types::{check, TypedProgram};

/// Kind of an atomic unit, and hence of the boundaries around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// Arbitrary non-`foreach` statements (allocations, reductions merges,
    /// whole conditionals outside `foreach`, non-foreach loops).
    Straight,
    /// A fissioned `foreach` with a boundary-free body.
    Foreach,
    /// `foreach (v in d) { if (cond) { then } }` — carries an *internal*
    /// candidate boundary between the condition evaluation and the guarded
    /// body (the paper's "conditional inside a foreach"): cutting there
    /// yields an upstream filter that forwards only the passing elements.
    CondForeach,
}

/// One atomic unit of the pipelined loop body.
#[derive(Debug, Clone)]
pub struct AtomicUnit {
    pub kind: UnitKind,
    /// The statements of this unit. For `Foreach`/`CondForeach` this is a
    /// single `foreach` statement.
    pub stmts: Vec<Stmt>,
    /// Human-readable label for reports (`alloc`, `extract`, `cond#7`, ...).
    pub label: String,
}

impl AtomicUnit {
    /// For CondForeach: (loop var, domain, condition, guarded body).
    pub fn cond_parts(&self) -> Option<(&str, &Expr, &Expr, &Block)> {
        if self.kind != UnitKind::CondForeach {
            return None;
        }
        let StmtKind::Foreach { var, domain, body } = &self.stmts[0].kind else {
            return None;
        };
        let StmtKind::If { cond, then_blk, .. } = &body.stmts[0].kind else {
            return None;
        };
        Some((var, domain, cond, then_blk))
    }

    /// For Foreach/CondForeach: (loop var, domain expr).
    pub fn foreach_parts(&self) -> Option<(&str, &Expr)> {
        if self.kind == UnitKind::Straight {
            return None;
        }
        let StmtKind::Foreach { var, domain, .. } = &self.stmts[0].kind else {
            return None;
        };
        Some((var, domain))
    }
}

/// The normalized pipelined computation.
#[derive(Debug, Clone)]
pub struct NormalizedPipeline {
    /// The rewritten, re-type-checked program (fissioned main body).
    pub typed: TypedProgram,
    /// Class containing `main`.
    pub class: String,
    /// Packet loop variable (a `RectDomain<1>` per packet).
    pub pkt_var: String,
    /// Domain expression of the `PipelinedLoop`.
    pub domain: Expr,
    /// Packet-count expression.
    pub num_packets: Expr,
    /// Statements before the loop (replicated across filters at init).
    pub prologue: Vec<Stmt>,
    /// The atomic units of the loop body, in order.
    pub units: Vec<AtomicUnit>,
    /// Statements after the loop (run at the destination filter).
    pub epilogue: Vec<Stmt>,
    /// Scalar-expanded locals: (original name, array name, element type).
    pub expanded: Vec<(String, String, Type)>,
}

impl NormalizedPipeline {
    /// All unit statements flattened, in program order (the fissioned loop
    /// body).
    pub fn body_stmts(&self) -> Vec<Stmt> {
        self.units
            .iter()
            .flat_map(|u| u.stmts.iter().cloned())
            .collect()
    }
}

/// Normalize the unique `PipelinedLoop` found in `main`.
pub fn normalize(tp: &TypedProgram) -> CompileResult<NormalizedPipeline> {
    let (class, method) = tp
        .program
        .main()
        .ok_or_else(|| CompileError::new("program has no `main` method"))?;
    let class_name = class.name.clone();
    let body = &method.body;

    // Split main's body into prologue / PipelinedLoop / epilogue.
    let mut pipe_idx = None;
    for (i, s) in body.stmts.iter().enumerate() {
        if matches!(s.kind, StmtKind::Pipelined { .. }) {
            if pipe_idx.is_some() {
                return Err(CompileError::at(
                    s.span,
                    "multiple PipelinedLoop statements; exactly one is supported",
                ));
            }
            pipe_idx = Some(i);
        }
    }
    let pipe_idx = pipe_idx.ok_or_else(|| {
        CompileError::new("main contains no PipelinedLoop — nothing to decompose")
    })?;
    let prologue: Vec<Stmt> = body.stmts[..pipe_idx].to_vec();
    let epilogue: Vec<Stmt> = body.stmts[pipe_idx + 1..].to_vec();
    let StmtKind::Pipelined {
        var,
        domain,
        num_packets,
        body: loop_body,
    } = body.stmts[pipe_idx].kind.clone()
    else {
        unreachable!("pipe_idx points at a Pipelined stmt");
    };

    let mut ids = NodeIdGen::above(&tp.program);
    let mut fission = Fission {
        ids: &mut ids,
        expanded: Vec::new(),
        alloc_stmts: Vec::new(),
    };
    let units = fission.split_body(&loop_body.stmts)?;
    let expanded = fission.expanded.clone();

    // Rebuild the program with the fissioned body so everything downstream
    // (analyses, interpreter-backed filters) sees one consistent AST.
    let new_body: Vec<Stmt> = units.iter().flat_map(|u| u.stmts.iter().cloned()).collect();
    let new_pipelined = Stmt::new(
        ids.fresh(),
        Span::synthetic(),
        StmtKind::Pipelined {
            var: var.clone(),
            domain: domain.clone(),
            num_packets: num_packets.clone(),
            body: Block::new(new_body),
        },
    );
    let mut new_main_stmts = prologue.clone();
    new_main_stmts.push(new_pipelined);
    new_main_stmts.extend(epilogue.iter().cloned());

    let mut program = tp.program.clone();
    {
        let c = program
            .classes
            .iter_mut()
            .find(|c| c.name == class_name)
            .expect("class exists");
        let m = c
            .methods
            .iter_mut()
            .find(|m| m.name == "main")
            .expect("main exists");
        m.body = Block::new(new_main_stmts);
    }
    let typed = check(program).map_err(|d| {
        CompileError::new(format!(
            "internal: fissioned program failed type check: {d}"
        ))
    })?;

    Ok(NormalizedPipeline {
        typed,
        class: class_name,
        pkt_var: var,
        domain,
        num_packets,
        prologue,
        units,
        epilogue,
        expanded,
    })
}

// ---------------------------------------------------------------------------

struct Fission<'a> {
    ids: &'a mut NodeIdGen,
    /// (original, array name, element type)
    expanded: Vec<(String, String, Type)>,
    alloc_stmts: Vec<Stmt>,
}

/// Shape of one top-level group inside a foreach body.
enum Group {
    Run(Vec<Stmt>),
    Cond(Stmt),
    Call(Stmt),
}

impl Fission<'_> {
    /// Split the pipelined-loop body into atomic units.
    fn split_body(&mut self, stmts: &[Stmt]) -> CompileResult<Vec<AtomicUnit>> {
        let mut units: Vec<AtomicUnit> = Vec::new();
        let mut run: Vec<Stmt> = Vec::new();
        let flush = |run: &mut Vec<Stmt>, units: &mut Vec<AtomicUnit>| {
            if !run.is_empty() {
                units.push(AtomicUnit {
                    kind: UnitKind::Straight,
                    stmts: std::mem::take(run),
                    label: format!("straight#{}", units.len()),
                });
            }
        };
        for s in stmts {
            match &s.kind {
                StmtKind::Foreach { .. } => {
                    flush(&mut run, &mut units);
                    let fissioned = self.fission_foreach(s)?;
                    if !self.alloc_stmts.is_empty() {
                        units.push(AtomicUnit {
                            kind: UnitKind::Straight,
                            stmts: std::mem::take(&mut self.alloc_stmts),
                            label: format!("alloc#{}", units.len()),
                        });
                    }
                    units.extend(fissioned);
                }
                StmtKind::If { .. } => {
                    // A conditional outside a foreach is itself a candidate
                    // boundary: isolate it so cuts exist before and after.
                    flush(&mut run, &mut units);
                    units.push(AtomicUnit {
                        kind: UnitKind::Straight,
                        stmts: vec![s.clone()],
                        label: format!("cond{}", s.id),
                    });
                }
                StmtKind::Pipelined { .. } => {
                    return Err(CompileError::at(
                        s.span,
                        "nested PipelinedLoop is not supported",
                    ));
                }
                _ => run.push(s.clone()),
            }
        }
        flush(&mut run, &mut units);
        if units.is_empty() {
            return Err(CompileError::new("PipelinedLoop body is empty"));
        }
        Ok(units)
    }

    /// Fission one foreach into units; fills `self.alloc_stmts` with the
    /// scalar-expansion allocations that must precede them.
    fn fission_foreach(&mut self, stmt: &Stmt) -> CompileResult<Vec<AtomicUnit>> {
        let StmtKind::Foreach { var, domain, body } = &stmt.kind else {
            unreachable!("fission_foreach on non-foreach");
        };

        // Partition the body into groups at conditionals and call statements.
        let mut groups: Vec<Group> = Vec::new();
        let mut run: Vec<Stmt> = Vec::new();
        for s in &body.stmts {
            match &s.kind {
                StmtKind::If { .. } => {
                    if !run.is_empty() {
                        groups.push(Group::Run(std::mem::take(&mut run)));
                    }
                    groups.push(Group::Cond(s.clone()));
                }
                StmtKind::Expr(e) if matches!(e.kind, ExprKind::Call { .. }) => {
                    if !run.is_empty() {
                        groups.push(Group::Run(std::mem::take(&mut run)));
                    }
                    groups.push(Group::Call(s.clone()));
                }
                _ => run.push(s.clone()),
            }
        }
        if !run.is_empty() {
            groups.push(Group::Run(run));
        }

        if groups.len() <= 1 {
            // No internal boundaries except possibly a lone conditional.
            return Ok(vec![self.make_unit(var, domain, groups.pop(), stmt)?]);
        }

        // Scalar expansion: find names written in one group and read in a
        // later group; they become arrays indexed by `var - domain.lo()`.
        let mut to_expand: Vec<String> = Vec::new();
        let group_stmts: Vec<Vec<&Stmt>> = groups
            .iter()
            .map(|g| match g {
                Group::Run(ss) => ss.iter().collect(),
                Group::Cond(s) | Group::Call(s) => vec![s],
            })
            .collect();
        for i in 0..group_stmts.len() {
            let writes = collect_writes(&group_stmts[i]);
            for later in &group_stmts[i + 1..] {
                let reads = collect_reads(later);
                for w in &writes {
                    if w != var && reads.contains(w) && !to_expand.contains(w) {
                        to_expand.push(w.clone());
                    }
                }
            }
        }

        // Determine element types for expanded names from their VarDecls.
        let mut expansions: Vec<(String, String, Type)> = Vec::new();
        for name in &to_expand {
            let mut ty = None;
            for g in &group_stmts {
                for s in g {
                    find_decl_type(s, name, &mut ty);
                }
            }
            let ty = ty.ok_or_else(|| {
                CompileError::at(
                    stmt.span,
                    format!(
                        "cannot fission foreach: `{name}` crosses a fission cut but is declared outside the loop body (would need order-dependent semantics)"
                    ),
                )
            })?;
            let arr = format!("{name}__x");
            expansions.push((name.clone(), arr, ty));
        }

        // Allocation statements: `T[] name__x = new T[domain.size()];`
        for (_, arr, ty) in &expansions {
            let size = Expr::new(
                Span::synthetic(),
                ExprKind::Call {
                    recv: Some(Box::new(domain.clone())),
                    method: "size".into(),
                    args: vec![],
                },
            );
            self.alloc_stmts.push(Stmt::new(
                self.ids.fresh(),
                Span::synthetic(),
                StmtKind::VarDecl {
                    name: arr.clone(),
                    ty: Type::array_of(ty.clone()),
                    init: Some(Expr::new(
                        Span::synthetic(),
                        ExprKind::NewArray(ty.clone(), Box::new(size)),
                    )),
                },
            ));
        }
        self.expanded.extend(expansions.iter().cloned());

        // Index expression `var - domain.lo()`.
        let idx = Expr::new(
            Span::synthetic(),
            ExprKind::Binary(
                BinOp::Sub,
                Box::new(Expr::new(Span::synthetic(), ExprKind::Var(var.clone()))),
                Box::new(Expr::new(
                    Span::synthetic(),
                    ExprKind::Call {
                        recv: Some(Box::new(domain.clone())),
                        method: "lo".into(),
                        args: vec![],
                    },
                )),
            ),
        );

        // Rewrite groups and wrap each in its own foreach.
        let rename: Vec<(String, String)> = expansions
            .iter()
            .map(|(orig, arr, _)| (orig.clone(), arr.clone()))
            .collect();
        let mut units = Vec::new();
        for g in groups {
            let g = self.rewrite_group(g, &rename, &idx)?;
            units.push(self.make_unit(var, domain, Some(g), stmt)?);
        }
        Ok(units)
    }

    fn make_unit(
        &mut self,
        var: &str,
        domain: &Expr,
        group: Option<Group>,
        orig: &Stmt,
    ) -> CompileResult<AtomicUnit> {
        let (kind, body_stmts, label) = match group {
            None => (UnitKind::Foreach, Vec::new(), "empty".to_string()),
            Some(Group::Run(ss)) => (UnitKind::Foreach, ss, format!("loop{}", orig.id)),
            Some(Group::Cond(s)) => {
                // `if (cond) { then }` with no else → filtering unit.
                let kind = match &s.kind {
                    StmtKind::If { else_blk: None, .. } => UnitKind::CondForeach,
                    _ => UnitKind::Foreach,
                };
                (kind, vec![s], format!("cond{}", orig.id))
            }
            Some(Group::Call(s)) => (UnitKind::Foreach, vec![s], format!("call{}", orig.id)),
        };
        let fe = Stmt::new(
            self.ids.fresh(),
            Span::synthetic(),
            StmtKind::Foreach {
                var: var.to_string(),
                domain: domain.clone(),
                body: Block::new(body_stmts),
            },
        );
        Ok(AtomicUnit {
            kind,
            stmts: vec![fe],
            label,
        })
    }

    fn rewrite_group(
        &mut self,
        g: Group,
        rename: &[(String, String)],
        idx: &Expr,
    ) -> CompileResult<Group> {
        let rw = |s: &Stmt, ids: &mut NodeIdGen| rewrite_stmt(s, rename, idx, ids);
        Ok(match g {
            Group::Run(ss) => Group::Run(ss.iter().map(|s| rw(s, self.ids)).collect()),
            Group::Cond(s) => Group::Cond(rw(&s, self.ids)),
            Group::Call(s) => Group::Call(rw(&s, self.ids)),
        })
    }
}

// ---- name-level read/write collection -------------------------------------

fn collect_writes(stmts: &[&Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    for s in stmts {
        walk_stmt(s, &mut |st| {
            match &st.kind {
                StmtKind::VarDecl { name, .. } => out.push(name.clone()),
                // Writes through fields/indexes mutate shared heap
                // objects; the *binding* is what scalar expansion cares
                // about, and field writes only matter if the binding
                // itself crosses, which the read side catches.
                StmtKind::Assign {
                    target: LValue::Var(n),
                    ..
                } => out.push(n.clone()),
                _ => {}
            }
        });
    }
    out.sort();
    out.dedup();
    out
}

fn collect_reads(stmts: &[&Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    for s in stmts {
        walk_stmt(s, &mut |st| {
            each_expr_in_stmt(st, &mut |e| {
                collect_var_reads(e, &mut out);
            });
            // Field/index assignment targets read their base binding.
            if let StmtKind::Assign { target, .. } = &st.kind {
                match target {
                    LValue::Field(b, _) | LValue::Index(b, _) => collect_var_reads(b, &mut out),
                    LValue::Var(_) => {}
                }
            }
        });
    }
    out.sort();
    out.dedup();
    out
}

fn collect_var_reads(e: &Expr, out: &mut Vec<String>) {
    walk_expr(e, &mut |x| {
        if let ExprKind::Var(n) = &x.kind {
            out.push(n.clone());
        }
    });
}

fn find_decl_type(s: &Stmt, name: &str, ty: &mut Option<Type>) {
    walk_stmt(s, &mut |st| {
        if let StmtKind::VarDecl { name: n, ty: t, .. } = &st.kind {
            if n == name && ty.is_none() {
                *ty = Some(t.clone());
            }
        }
    });
}

/// Depth-first statement walk (including nested blocks and loop bodies).
fn walk_stmt(s: &Stmt, f: &mut impl FnMut(&Stmt)) {
    s.visit(f);
}

/// Apply `f` to every expression directly contained in `s` (not recursing
/// into nested statements — callers use `walk_stmt` for that).
fn each_expr_in_stmt(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match &s.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                f(e);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            f(value);
            match target {
                LValue::Field(b, _) => f(b),
                LValue::Index(b, i) => {
                    f(b);
                    f(i);
                }
                LValue::Var(_) => {}
            }
        }
        StmtKind::If { cond, .. } => f(cond),
        StmtKind::While { cond, .. } => f(cond),
        StmtKind::For { cond, .. } => {
            if let Some(c) = cond {
                f(c);
            }
        }
        StmtKind::Foreach { domain, .. } => f(domain),
        StmtKind::Pipelined {
            domain,
            num_packets,
            ..
        } => {
            f(domain);
            f(num_packets);
        }
        StmtKind::Return(v) => {
            if let Some(e) = v {
                f(e);
            }
        }
        StmtKind::Expr(e) => f(e),
        StmtKind::Block(_) | StmtKind::Break | StmtKind::Continue => {}
    }
}

fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Field(b, _) => walk_expr(b, f),
        ExprKind::Index(b, i) => {
            walk_expr(b, f);
            walk_expr(i, f);
        }
        ExprKind::Unary(_, x) => walk_expr(x, f),
        ExprKind::Binary(_, l, r) => {
            walk_expr(l, f);
            walk_expr(r, f);
        }
        ExprKind::Ternary(c, a, b) => {
            walk_expr(c, f);
            walk_expr(a, f);
            walk_expr(b, f);
        }
        ExprKind::Call { recv, args, .. } => {
            if let Some(r) = recv {
                walk_expr(r, f);
            }
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::NewArray(_, len) => walk_expr(len, f),
        ExprKind::DomainLit(lo, hi) => {
            walk_expr(lo, f);
            walk_expr(hi, f);
        }
        _ => {}
    }
}

// ---- rewriting for scalar expansion ---------------------------------------

fn rewrite_stmt(s: &Stmt, rename: &[(String, String)], idx: &Expr, ids: &mut NodeIdGen) -> Stmt {
    let kind = match &s.kind {
        StmtKind::VarDecl { name, ty, init } => {
            if let Some((_, arr)) = rename.iter().find(|(o, _)| o == name) {
                // `T name = init;` → `name__x[idx] = init;` (array slot takes
                // the binding's place; absent init keeps the default the
                // allocation already provided).
                match init {
                    Some(e) => StmtKind::Assign {
                        target: LValue::Index(
                            Box::new(Expr::new(Span::synthetic(), ExprKind::Var(arr.clone()))),
                            Box::new(idx.clone()),
                        ),
                        op: AssignOp::Set,
                        value: rewrite_expr(e, rename, idx),
                    },
                    None => StmtKind::Block(Block::default()),
                }
            } else {
                StmtKind::VarDecl {
                    name: name.clone(),
                    ty: ty.clone(),
                    init: init.as_ref().map(|e| rewrite_expr(e, rename, idx)),
                }
            }
        }
        StmtKind::Assign { target, op, value } => {
            let target = match target {
                LValue::Var(n) => {
                    if let Some((_, arr)) = rename.iter().find(|(o, _)| o == n) {
                        LValue::Index(
                            Box::new(Expr::new(Span::synthetic(), ExprKind::Var(arr.clone()))),
                            Box::new(idx.clone()),
                        )
                    } else {
                        LValue::Var(n.clone())
                    }
                }
                LValue::Field(b, f) => {
                    LValue::Field(Box::new(rewrite_expr(b, rename, idx)), f.clone())
                }
                LValue::Index(b, i) => LValue::Index(
                    Box::new(rewrite_expr(b, rename, idx)),
                    Box::new(rewrite_expr(i, rename, idx)),
                ),
            };
            StmtKind::Assign {
                target,
                op: *op,
                value: rewrite_expr(value, rename, idx),
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => StmtKind::If {
            cond: rewrite_expr(cond, rename, idx),
            then_blk: rewrite_block(then_blk, rename, idx, ids),
            else_blk: else_blk
                .as_ref()
                .map(|b| rewrite_block(b, rename, idx, ids)),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: rewrite_expr(cond, rename, idx),
            body: rewrite_block(body, rename, idx, ids),
        },
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => StmtKind::For {
            init: init
                .as_ref()
                .map(|s| Box::new(rewrite_stmt(s, rename, idx, ids))),
            cond: cond.as_ref().map(|e| rewrite_expr(e, rename, idx)),
            step: step
                .as_ref()
                .map(|s| Box::new(rewrite_stmt(s, rename, idx, ids))),
            body: rewrite_block(body, rename, idx, ids),
        },
        StmtKind::Foreach { var, domain, body } => StmtKind::Foreach {
            var: var.clone(),
            domain: rewrite_expr(domain, rename, idx),
            body: rewrite_block(body, rename, idx, ids),
        },
        StmtKind::Pipelined {
            var,
            domain,
            num_packets,
            body,
        } => StmtKind::Pipelined {
            var: var.clone(),
            domain: rewrite_expr(domain, rename, idx),
            num_packets: rewrite_expr(num_packets, rename, idx),
            body: rewrite_block(body, rename, idx, ids),
        },
        StmtKind::Return(v) => StmtKind::Return(v.as_ref().map(|e| rewrite_expr(e, rename, idx))),
        StmtKind::Expr(e) => StmtKind::Expr(rewrite_expr(e, rename, idx)),
        StmtKind::Block(b) => StmtKind::Block(rewrite_block(b, rename, idx, ids)),
        StmtKind::Break => StmtKind::Break,
        StmtKind::Continue => StmtKind::Continue,
    };
    Stmt::new(ids.fresh(), s.span, kind)
}

fn rewrite_block(b: &Block, rename: &[(String, String)], idx: &Expr, ids: &mut NodeIdGen) -> Block {
    Block::new(
        b.stmts
            .iter()
            .map(|s| rewrite_stmt(s, rename, idx, ids))
            .collect(),
    )
}

fn rewrite_expr(e: &Expr, rename: &[(String, String)], idx: &Expr) -> Expr {
    let kind = match &e.kind {
        ExprKind::Var(n) => {
            if let Some((_, arr)) = rename.iter().find(|(o, _)| o == n) {
                ExprKind::Index(
                    Box::new(Expr::new(Span::synthetic(), ExprKind::Var(arr.clone()))),
                    Box::new(idx.clone()),
                )
            } else {
                ExprKind::Var(n.clone())
            }
        }
        ExprKind::Field(b, f) => ExprKind::Field(Box::new(rewrite_expr(b, rename, idx)), f.clone()),
        ExprKind::Index(b, i) => ExprKind::Index(
            Box::new(rewrite_expr(b, rename, idx)),
            Box::new(rewrite_expr(i, rename, idx)),
        ),
        ExprKind::Unary(op, x) => ExprKind::Unary(*op, Box::new(rewrite_expr(x, rename, idx))),
        ExprKind::Binary(op, l, r) => ExprKind::Binary(
            *op,
            Box::new(rewrite_expr(l, rename, idx)),
            Box::new(rewrite_expr(r, rename, idx)),
        ),
        ExprKind::Ternary(c, a, b) => ExprKind::Ternary(
            Box::new(rewrite_expr(c, rename, idx)),
            Box::new(rewrite_expr(a, rename, idx)),
            Box::new(rewrite_expr(b, rename, idx)),
        ),
        ExprKind::Call { recv, method, args } => ExprKind::Call {
            recv: recv
                .as_ref()
                .map(|r| Box::new(rewrite_expr(r, rename, idx))),
            method: method.clone(),
            args: args.iter().map(|a| rewrite_expr(a, rename, idx)).collect(),
        },
        ExprKind::NewArray(t, len) => {
            ExprKind::NewArray(t.clone(), Box::new(rewrite_expr(len, rename, idx)))
        }
        ExprKind::DomainLit(lo, hi) => ExprKind::DomainLit(
            Box::new(rewrite_expr(lo, rename, idx)),
            Box::new(rewrite_expr(hi, rename, idx)),
        ),
        other => other.clone(),
    };
    Expr::new(e.span, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_lang::interp::{HostEnv, Interp};
    use cgp_lang::{frontend, Value};

    fn norm(src: &str) -> NormalizedPipeline {
        normalize(&frontend(src).unwrap()).unwrap()
    }

    const FISSION_SRC: &str = r#"
        extern int n;
        runtime_define int num_packets;
        class Acc implements Reducinterface {
            double total;
            void reduce(Acc other) { total = total + other.total; }
            void add(double x) { total = total + x; }
        }
        class A {
            double work(double v) { return v * 2.0 + 1.0; }
            void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; num_packets) {
                    foreach (i in pkt) {
                        double t = toDouble(i) * 0.5;
                        double u = work(t);
                        if (u > 2.0) {
                            acc.add(u);
                        }
                    }
                }
                print(acc.total);
            }
        }
    "#;

    #[test]
    fn finds_pipelined_loop_and_sections() {
        let np = norm(FISSION_SRC);
        assert_eq!(np.pkt_var, "pkt");
        assert_eq!(np.prologue.len(), 2);
        assert_eq!(np.epilogue.len(), 1);
        assert!(!np.units.is_empty());
    }

    #[test]
    fn fission_splits_at_conditional() {
        let np = norm(FISSION_SRC);
        // Expect: alloc unit, foreach(t,u computation), CondForeach(acc)
        let kinds: Vec<UnitKind> = np.units.iter().map(|u| u.kind).collect();
        assert!(kinds.contains(&UnitKind::CondForeach), "units: {kinds:?}");
        assert!(kinds.contains(&UnitKind::Foreach));
        assert_eq!(kinds[0], UnitKind::Straight, "allocs first: {kinds:?}");
    }

    #[test]
    fn fission_expands_cross_group_scalars() {
        let np = norm(FISSION_SRC);
        let names: Vec<&str> = np.expanded.iter().map(|(o, _, _)| o.as_str()).collect();
        // `u` crosses from the compute group into the conditional group.
        assert!(names.contains(&"u"), "expanded: {names:?}");
    }

    #[test]
    fn fissioned_program_is_semantically_equivalent() {
        let orig = frontend(FISSION_SRC).unwrap();
        let np = norm(FISSION_SRC);
        for packets in [1, 4, 16] {
            let host = HostEnv::new()
                .bind("n", Value::Int(100))
                .bind("num_packets", Value::Int(packets));
            let mut i1 = Interp::new(&orig, host.clone());
            i1.run_main().unwrap();
            let mut i2 = Interp::new(&np.typed, host);
            i2.run_main().unwrap();
            assert_eq!(i1.output, i2.output, "packets={packets}");
        }
    }

    #[test]
    fn cond_parts_accessor() {
        let np = norm(FISSION_SRC);
        let cond_unit = np
            .units
            .iter()
            .find(|u| u.kind == UnitKind::CondForeach)
            .unwrap();
        let (var, _dom, cond, then) = cond_unit.cond_parts().unwrap();
        assert_eq!(var, "i");
        assert!(cgp_lang::pretty::expr_to_string(cond).contains(">"));
        assert_eq!(then.stmts.len(), 1);
    }

    #[test]
    fn no_fission_for_boundary_free_foreach() {
        let src = r#"
            extern int n;
            class Acc implements Reducinterface {
                double total;
                void reduce(Acc other) { total = total + other.total; }
                void add(double x) { total = total + x; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 4) {
                    foreach (i in pkt) {
                        acc.add(toDouble(i));
                    }
                }
                print(acc.total);
            } }
        "#;
        let np = norm(src);
        assert_eq!(np.units.len(), 1);
        assert_eq!(np.units[0].kind, UnitKind::Foreach);
        assert!(np.expanded.is_empty());
    }

    #[test]
    fn top_level_conditional_is_isolated() {
        let src = r#"
            extern int n;
            class Acc implements Reducinterface {
                int c;
                void reduce(Acc o) { c = c + o.c; }
                void bump(int k) { c = c + k; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    int count = pkt.size();
                    if (count > 10) {
                        count = 10;
                    }
                    acc.bump(count);
                }
                print(acc.c);
            } }
        "#;
        let np = norm(src);
        assert_eq!(np.units.len(), 3, "straight / cond / straight");
        assert!(np.units[1].label.starts_with("cond"));
    }

    #[test]
    fn rejects_missing_pipelined_loop() {
        let src = "class A { void main() { int x = 1; } }";
        let tp = frontend(src).unwrap();
        assert!(normalize(&tp).is_err());
    }

    #[test]
    fn rejects_cross_cut_var_declared_outside_loop() {
        // `t` is declared before the foreach and carries a per-iteration
        // value across a fission cut → unsupported, must error.
        let src = r#"
            extern int n;
            class Acc implements Reducinterface {
                double total;
                void reduce(Acc other) { total = total + other.total; }
                void add(double x) { total = total + x; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    double t = 0.0;
                    foreach (i in pkt) {
                        t = toDouble(i);
                        if (t > 1.0) {
                            acc.add(t);
                        }
                    }
                }
                print(acc.total);
            } }
        "#;
        let tp = frontend(src).unwrap();
        let err = normalize(&tp).unwrap_err();
        assert!(err.message.contains("fission"), "{}", err.message);
    }

    #[test]
    fn call_statement_gets_own_unit() {
        let src = r#"
            extern int n;
            extern double[] data;
            class Acc implements Reducinterface {
                double total;
                void reduce(Acc other) { total = total + other.total; }
                void add(double x) { total = total + x; }
            }
            class A {
                void main() {
                    RectDomain<1> all = [0 : n - 1];
                    Acc acc = new Acc();
                    PipelinedLoop (pkt in all; 2) {
                        foreach (i in pkt) {
                            double v = data[i] * 2.0;
                            acc.add(v);
                        }
                    }
                    print(acc.total);
                }
            }
        "#;
        let np = norm(src);
        // acc.add(v) is a call statement → its own foreach unit.
        let labels: Vec<&str> = np.units.iter().map(|u| u.label.as_str()).collect();
        assert!(
            labels.iter().any(|l| l.starts_with("call")),
            "labels: {labels:?}"
        );
    }

    #[test]
    fn fission_equivalence_with_expanded_objects() {
        let src = r#"
            extern int n;
            class P { double x; double y; }
            class Acc implements Reducinterface {
                double total;
                void reduce(Acc other) { total = total + other.total; }
                void add(double v) { total = total + v; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 3) {
                    foreach (i in pkt) {
                        P p = new P();
                        p.x = toDouble(i);
                        p.y = p.x * p.x;
                        if (p.y > 4.0) {
                            acc.add(p.y - p.x);
                        }
                    }
                }
                print(acc.total);
            } }
        "#;
        let orig = frontend(src).unwrap();
        let np = norm(src);
        let host = HostEnv::new().bind("n", Value::Int(37));
        let mut i1 = Interp::new(&orig, host.clone());
        i1.run_main().unwrap();
        let mut i2 = Interp::new(&np.typed, host);
        i2.run_main().unwrap();
        assert_eq!(i1.output, i2.output);
    }
}
