//! Value locations ("places") and rectilinear sections with symbolic bounds.
//!
//! The paper's Gen/Cons/ReqComm sets hold *values*: scalars, fields of
//! objects, and rectilinear sections of collections whose bounds may only be
//! known symbolically (Section 4.2, "we use rectilinear sections, whose
//! bounds may only be available symbolically. We also keep track of fields
//! of classes and handle nested classes").
//!
//! A [`Place`] is `root [section]? (.field)*`, e.g.:
//!
//! - `count` — a scalar local;
//! - `grid[8*pkt.lo : 8*pkt.hi+7]` — a section of an input array;
//! - `tri[pkt].x` — field `x` of every element of collection `tri` indexed
//!   over the current packet;
//! - `zbuf.depth` — a (whole-array) field of an object.

use std::collections::BTreeMap;
use std::fmt;

/// A symbolic integer expression: constants, named symbols (e.g. `pkt.lo`,
/// `n`), and affine combinations. Kept in a normal form
/// `c0 + Σ c_i * sym_i`; non-affine combinations degrade to [`SymExpr`]
/// trees with an `Opaque` marker.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymExpr {
    /// Constant term.
    pub konst: i64,
    /// Coefficients per symbol, sorted by name; zero coefficients removed.
    pub terms: Vec<(String, i64)>,
    /// True if the expression also involves non-affine parts we dropped;
    /// such expressions compare conservatively (never provably equal or
    /// ordered) and evaluate to `None`.
    pub opaque: bool,
}

impl SymExpr {
    pub fn konst(v: i64) -> Self {
        SymExpr {
            konst: v,
            terms: Vec::new(),
            opaque: false,
        }
    }

    pub fn sym(name: impl Into<String>) -> Self {
        SymExpr {
            konst: 0,
            terms: vec![(name.into(), 1)],
            opaque: false,
        }
    }

    /// A fully opaque expression (unknown value).
    pub fn unknown() -> Self {
        SymExpr {
            konst: 0,
            terms: Vec::new(),
            opaque: true,
        }
    }

    pub fn is_const(&self) -> Option<i64> {
        if self.terms.is_empty() && !self.opaque {
            Some(self.konst)
        } else {
            None
        }
    }

    fn normalize(mut self) -> Self {
        self.terms.retain(|(_, c)| *c != 0);
        self.terms.sort();
        self
    }

    pub fn add(&self, other: &SymExpr) -> SymExpr {
        let mut map: BTreeMap<String, i64> = BTreeMap::new();
        for (s, c) in self.terms.iter().chain(&other.terms) {
            *map.entry(s.clone()).or_insert(0) += *c;
        }
        SymExpr {
            konst: self.konst.wrapping_add(other.konst),
            terms: map.into_iter().collect(),
            opaque: self.opaque || other.opaque,
        }
        .normalize()
    }

    pub fn sub(&self, other: &SymExpr) -> SymExpr {
        self.add(&other.scale(-1))
    }

    pub fn scale(&self, k: i64) -> SymExpr {
        SymExpr {
            konst: self.konst.wrapping_mul(k),
            terms: self.terms.iter().map(|(s, c)| (s.clone(), c * k)).collect(),
            opaque: self.opaque,
        }
        .normalize()
    }

    /// Product; affine only if one side is constant, otherwise opaque.
    pub fn mul(&self, other: &SymExpr) -> SymExpr {
        if let Some(k) = self.is_const() {
            other.scale(k)
        } else if let Some(k) = other.is_const() {
            self.scale(k)
        } else {
            SymExpr::unknown()
        }
    }

    /// Evaluate with concrete symbol bindings. `None` if opaque or a symbol
    /// is unbound.
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        if self.opaque {
            return None;
        }
        let mut v = self.konst;
        for (s, c) in &self.terms {
            v += c * env(s)?;
        }
        Some(v)
    }

    /// Substitute `sym := replacement` (used for actual/formal renaming and
    /// for instantiating packet bounds).
    pub fn subst(&self, sym: &str, replacement: &SymExpr) -> SymExpr {
        let mut out = SymExpr {
            konst: self.konst,
            terms: Vec::new(),
            opaque: self.opaque,
        };
        for (s, c) in &self.terms {
            if s == sym {
                out = out.add(&replacement.scale(*c));
            } else {
                out = out.add(&SymExpr {
                    konst: 0,
                    terms: vec![(s.clone(), *c)],
                    opaque: false,
                });
            }
        }
        out.normalize()
    }

    /// `Some(d)` if `self - other` is the constant `d` (provable distance).
    pub fn const_diff(&self, other: &SymExpr) -> Option<i64> {
        self.sub(other).is_const()
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.opaque {
            return write!(f, "?");
        }
        let mut first = true;
        if self.konst != 0 || self.terms.is_empty() {
            write!(f, "{}", self.konst)?;
            first = false;
        }
        for (s, c) in &self.terms {
            if *c < 0 {
                write!(f, "{}{}", if first { "-" } else { " - " }, fmt_term(-c, s))?;
            } else {
                if !first {
                    write!(f, " + ")?;
                }
                write!(f, "{}", fmt_term(*c, s))?;
            }
            first = false;
        }
        Ok(())
    }
}

fn fmt_term(c: i64, s: &str) -> String {
    if c == 1 {
        s.to_string()
    } else {
        format!("{c}*{s}")
    }
}

/// An inclusive rectilinear section `[lo : hi : stride]` of a 1-D
/// collection. `stride == 1` for dense sections.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Section {
    pub lo: SymExpr,
    pub hi: SymExpr,
    pub stride: i64,
}

impl Section {
    pub fn dense(lo: SymExpr, hi: SymExpr) -> Self {
        Section { lo, hi, stride: 1 }
    }

    /// Number of elements, if computable with `env`.
    pub fn len(&self, env: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        let lo = self.lo.eval(env)?;
        let hi = self.hi.eval(env)?;
        if hi < lo {
            return Some(0);
        }
        Some((hi - lo) / self.stride + 1)
    }

    /// Symbolic element count assuming `hi >= lo` (used in volume models):
    /// `(hi - lo)/stride + 1`; `None` when the difference is not affine.
    pub fn symbolic_len(&self) -> Option<SymExpr> {
        let diff = self.hi.sub(&self.lo);
        if diff.opaque {
            return None;
        }
        if self.stride == 1 {
            Some(diff.add(&SymExpr::konst(1)))
        } else {
            // only exact when diff is const
            let d = diff.is_const()?;
            Some(SymExpr::konst(d / self.stride + 1))
        }
    }

    /// Does `self` provably cover `other` (every index of `other` lies in
    /// `self`)? Conservative: `false` when unprovable.
    pub fn covers(&self, other: &Section) -> bool {
        if self.stride != 1 {
            // Strided cover only if structurally identical.
            return self == other;
        }
        let lo_ok = matches!(other.lo.const_diff(&self.lo), Some(d) if d >= 0);
        let hi_ok = matches!(self.hi.const_diff(&other.hi), Some(d) if d >= 0);
        lo_ok && hi_ok
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stride == 1 {
            write!(f, "[{} : {}]", self.lo, self.hi)
        } else {
            write!(f, "[{} : {} : {}]", self.lo, self.hi, self.stride)
        }
    }
}

/// How a place selects within its root collection.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sectioning {
    /// The root is a scalar / object (not indexed).
    NotIndexed,
    /// The whole collection.
    All,
    /// A rectilinear slice.
    Range(Section),
}

impl Sectioning {
    /// Does `self` cover `other` as an index set?
    pub fn covers(&self, other: &Sectioning) -> bool {
        match (self, other) {
            (Sectioning::NotIndexed, Sectioning::NotIndexed) => true,
            (Sectioning::All, _) => !matches!(other, Sectioning::NotIndexed),
            (Sectioning::Range(a), Sectioning::Range(b)) => a.covers(b),
            _ => false,
        }
    }
}

/// A value location: `root [section]? (.field)*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Place {
    pub root: String,
    pub sect: Sectioning,
    /// Field path applied to the (element) value, outermost first.
    pub fields: Vec<String>,
}

impl Place {
    pub fn var(name: impl Into<String>) -> Self {
        Place {
            root: name.into(),
            sect: Sectioning::NotIndexed,
            fields: Vec::new(),
        }
    }

    pub fn field(mut self, f: impl Into<String>) -> Self {
        self.fields.push(f.into());
        self
    }

    pub fn whole_array(name: impl Into<String>) -> Self {
        Place {
            root: name.into(),
            sect: Sectioning::All,
            fields: Vec::new(),
        }
    }

    pub fn sliced(name: impl Into<String>, sect: Section) -> Self {
        Place {
            root: name.into(),
            sect: Sectioning::Range(sect),
            fields: Vec::new(),
        }
    }

    /// Same storage root and field path (ignoring the section)?
    pub fn same_path(&self, other: &Place) -> bool {
        self.root == other.root && self.fields == other.fields
    }

    /// Does a definition of `self` definitely overwrite all of `other`?
    /// (Used when subtracting must-defs from Cons/ReqComm.) A def of the
    /// whole object (`fields` a prefix of other's) covers deeper fields.
    pub fn covers(&self, other: &Place) -> bool {
        self.root == other.root
            && other.fields.starts_with(&self.fields)
            && self.sect.covers(&other.sect)
    }
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)?;
        match &self.sect {
            Sectioning::NotIndexed => {}
            Sectioning::All => write!(f, "[*]")?,
            Sectioning::Range(s) => write!(f, "{s}")?,
        }
        for fl in &self.fields {
            write!(f, ".{fl}")?;
        }
        Ok(())
    }
}

/// A set of places with the conservative operations the analysis needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlaceSet {
    places: Vec<Place>,
}

impl PlaceSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    pub fn len(&self) -> usize {
        self.places.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Place> {
        self.places.iter()
    }

    pub fn contains(&self, p: &Place) -> bool {
        self.places.contains(p)
    }

    /// Is `p` covered by some member (i.e. adding it would be redundant)?
    pub fn covers_place(&self, p: &Place) -> bool {
        self.places.iter().any(|q| q.covers(p))
    }

    /// Insert, dropping places already covered and any member the new place
    /// covers.
    pub fn insert(&mut self, p: Place) {
        if self.covers_place(&p) {
            return;
        }
        self.places.retain(|q| !p.covers(q));
        self.places.push(p);
    }

    pub fn extend(&mut self, other: &PlaceSet) {
        for p in other.iter() {
            self.insert(p.clone());
        }
    }

    /// Remove every member that `killer` definitely covers (must-def kill).
    pub fn kill(&mut self, killer: &Place) {
        self.places.retain(|q| !killer.covers(q));
    }

    /// `self -= other` where `other` is a set of must-defs.
    pub fn kill_all(&mut self, other: &PlaceSet) {
        for k in other.iter() {
            self.kill(k);
        }
    }

    /// Deterministic sorted view (for display, tests, layout generation).
    pub fn sorted(&self) -> Vec<&Place> {
        let mut v: Vec<&Place> = self.places.iter().collect();
        v.sort();
        v
    }
}

impl FromIterator<Place> for PlaceSet {
    fn from_iter<T: IntoIterator<Item = Place>>(iter: T) -> Self {
        let mut s = PlaceSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl fmt::Display for PlaceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.sorted().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of<'a>(pairs: &'a [(&'a str, i64)]) -> impl Fn(&str) -> Option<i64> + 'a {
        move |s: &str| pairs.iter().find(|(k, _)| *k == s).map(|(_, v)| *v)
    }

    #[test]
    fn symexpr_arithmetic() {
        let a = SymExpr::sym("x").scale(2).add(&SymExpr::konst(3)); // 2x+3
        let b = SymExpr::sym("x").add(&SymExpr::sym("y")); // x+y
        let s = a.add(&b); // 3x+y+3
        assert_eq!(s.eval(&env_of(&[("x", 2), ("y", 5)])), Some(14));
        let d = a.sub(&SymExpr::sym("x").scale(2)); // 3
        assert_eq!(d.is_const(), Some(3));
    }

    #[test]
    fn symexpr_mul_affine_only() {
        let x = SymExpr::sym("x");
        assert_eq!(
            x.mul(&SymExpr::konst(4)).eval(&env_of(&[("x", 3)])),
            Some(12)
        );
        assert!(x.mul(&x).opaque);
    }

    #[test]
    fn symexpr_subst() {
        // 2*i + 1 with i := pkt.lo + 3  →  2*pkt.lo + 7
        let e = SymExpr::sym("i").scale(2).add(&SymExpr::konst(1));
        let r = e.subst("i", &SymExpr::sym("pkt.lo").add(&SymExpr::konst(3)));
        assert_eq!(r.eval(&env_of(&[("pkt.lo", 10)])), Some(27));
    }

    #[test]
    fn symexpr_display() {
        let e = SymExpr::sym("n").scale(2).sub(&SymExpr::konst(1));
        assert_eq!(e.to_string(), "-1 + 2*n");
        assert_eq!(SymExpr::konst(0).to_string(), "0");
        assert_eq!(SymExpr::unknown().to_string(), "?");
    }

    #[test]
    fn section_len_and_cover() {
        let s = Section::dense(
            SymExpr::sym("lo"),
            SymExpr::sym("lo").add(&SymExpr::konst(9)),
        );
        assert_eq!(s.len(&env_of(&[("lo", 5)])), Some(10));
        assert_eq!(s.symbolic_len().unwrap().is_const(), Some(10));
        let inner = Section::dense(
            SymExpr::sym("lo").add(&SymExpr::konst(2)),
            SymExpr::sym("lo").add(&SymExpr::konst(7)),
        );
        assert!(s.covers(&inner));
        assert!(!inner.covers(&s));
        // Different symbols → unprovable → not covered.
        let other = Section::dense(SymExpr::sym("a"), SymExpr::sym("b"));
        assert!(!s.covers(&other));
    }

    #[test]
    fn strided_section_covers_only_identical() {
        let s = Section {
            lo: SymExpr::konst(0),
            hi: SymExpr::konst(10),
            stride: 2,
        };
        assert!(s.covers(&s.clone()));
        let dense = Section::dense(SymExpr::konst(0), SymExpr::konst(10));
        assert!(!s.covers(&dense), "strided does not cover dense");
        assert!(dense.covers(&s), "dense covers the strided subset");
        assert!(dense.covers(&Section::dense(SymExpr::konst(2), SymExpr::konst(8))));
    }

    #[test]
    fn place_cover_semantics() {
        let whole = Place::var("t"); // whole object t
        let fld = Place::var("t").field("x");
        assert!(whole.covers(&fld));
        assert!(!fld.covers(&whole));

        let arr_all = Place::whole_array("xs");
        let arr_part = Place::sliced("xs", Section::dense(SymExpr::konst(0), SymExpr::konst(4)));
        assert!(arr_all.covers(&arr_part));
        assert!(!arr_part.covers(&arr_all));
        // scalar root never covers indexed use of same name
        assert!(!Place::var("xs").covers(&arr_part));
    }

    #[test]
    fn placeset_insert_dedups_by_cover() {
        let mut s = PlaceSet::new();
        s.insert(Place::var("t").field("x"));
        s.insert(Place::var("t")); // covers t.x → replaces it
        assert_eq!(s.len(), 1);
        s.insert(Place::var("t").field("y")); // already covered
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn placeset_kill() {
        let mut s = PlaceSet::new();
        s.insert(Place::var("a"));
        s.insert(Place::var("b").field("x"));
        s.kill(&Place::var("b"));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Place::var("a")));
    }

    #[test]
    fn placeset_display_sorted() {
        let mut s = PlaceSet::new();
        s.insert(Place::var("z"));
        s.insert(Place::var("a"));
        assert_eq!(s.to_string(), "{a, z}");
    }
}
