//! The candidate filter boundary graph (Section 4.1).
//!
//! After normalization the pipelined-loop body is a sequence of atomic
//! units; the candidate boundary graph's nodes are the candidate boundaries
//! (plus virtual start/end) and its edges connect adjacent boundaries. Loop
//! fission guarantees the graph is acyclic; with top-level conditionals kept
//! whole (an entire `if` is one straight unit) the graph here is a *chain*,
//! which is exactly what the decomposition DP consumes. The general
//! graph-with-flow-paths API is preserved so diamond shapes could be added
//! later without changing consumers.
//!
//! A [`UnitKind::CondForeach`] unit contributes **two** atoms — the
//! condition-evaluating half ([`AtomCode::CondSelect`]) and the guarded body
//! ([`AtomCode::CondBody`]) — with the paper's "conditional inside a
//! foreach" boundary between them. Cutting there produces an upstream
//! filter that forwards only passing elements (how the isosurface Decomp
//! version pushes the cube test to the data nodes).

use crate::error::{CompileError, CompileResult};
use crate::normalize::{NormalizedPipeline, UnitKind};
use cgp_lang::ast::{Block, Expr, Stmt, StmtKind};

/// What kind of program point a candidate boundary is (labels only — used
/// in reports and tests; the decomposition treats all cuts uniformly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryKind {
    /// Start of a `foreach` loop.
    ForeachStart,
    /// End of a `foreach` loop.
    ForeachEnd,
    /// A conditional statement outside a foreach.
    Conditional,
    /// Between the condition evaluation and the guarded body of a
    /// conditional inside a foreach (the *filtering* cut).
    CondFilter,
    /// Start/end of a statement-level call inside a foreach (the fission
    /// pass isolates the call, so the cut sits at the call unit's edges).
    CallEdge,
}

/// A candidate filter boundary between `atoms[index]` and `atoms[index+1]`.
#[derive(Debug, Clone)]
pub struct Boundary {
    pub index: usize,
    pub kind: BoundaryKind,
    pub label: String,
}

/// Executable content of one atomic filter.
#[derive(Debug, Clone)]
pub enum AtomCode {
    /// Straight-line statements (allocations, merges, whole conditionals,
    /// non-foreach loops).
    Straight(Vec<Stmt>),
    /// A complete `foreach` statement.
    Foreach(Stmt),
    /// The selecting half of a conditional-in-foreach: evaluates `cond` for
    /// each point of `domain`; only passing points continue.
    CondSelect {
        var: String,
        domain: Expr,
        cond: Expr,
        cond_id: usize,
    },
    /// The guarded body, executed for passing points only.
    CondBody {
        var: String,
        domain: Expr,
        body: Block,
        cond_id: usize,
    },
}

impl AtomCode {
    /// Statements equivalent to this atom when executed in full (select and
    /// body halves merged back produce the original conditional foreach).
    pub fn is_cond_half(&self) -> bool {
        matches!(
            self,
            AtomCode::CondSelect { .. } | AtomCode::CondBody { .. }
        )
    }
}

/// One atomic filter `f_i` (the code between consecutive candidate
/// boundaries).
#[derive(Debug, Clone)]
pub struct Atom {
    /// Position in the chain (0-based; the paper's `f_{idx+1}`).
    pub idx: usize,
    pub code: AtomCode,
    pub label: String,
    /// Index of the originating normalized unit.
    pub unit_idx: usize,
}

/// The candidate filter boundary graph, linearized: `atoms.len() == n + 1`
/// atomic filters separated by `n` candidate boundaries.
#[derive(Debug, Clone)]
pub struct BoundaryGraph {
    pub atoms: Vec<Atom>,
    pub boundaries: Vec<Boundary>,
    /// Conditional (filtering) boundaries, by `cond_id` → boundary index.
    pub cond_boundaries: Vec<(usize, usize)>,
}

impl BoundaryGraph {
    /// Number of candidate boundaries `n`.
    pub fn n_boundaries(&self) -> usize {
        self.boundaries.len()
    }

    /// The single flow path (start → end) of this chain-shaped graph.
    pub fn flow_path(&self) -> Vec<usize> {
        (0..self.atoms.len()).collect()
    }

    /// The graph is acyclic by construction; kept as an explicit check for
    /// tests and future non-chain shapes.
    pub fn is_acyclic(&self) -> bool {
        true
    }
}

/// Build the boundary graph from a normalized pipeline.
pub fn build_graph(np: &NormalizedPipeline) -> CompileResult<BoundaryGraph> {
    let mut atoms: Vec<Atom> = Vec::new();
    let mut boundaries: Vec<Boundary> = Vec::new();
    let mut cond_boundaries: Vec<(usize, usize)> = Vec::new();
    let mut next_cond_id = 0usize;

    let push_atom = |atoms: &mut Vec<Atom>,
                     boundaries: &mut Vec<Boundary>,
                     code: AtomCode,
                     label: String,
                     unit_idx: usize,
                     kind_before: BoundaryKind| {
        if !atoms.is_empty() {
            boundaries.push(Boundary {
                index: boundaries.len(),
                kind: kind_before,
                label: format!("b{}", boundaries.len() + 1),
            });
        }
        atoms.push(Atom {
            idx: atoms.len(),
            code,
            label,
            unit_idx,
        });
    };

    for (ui, unit) in np.units.iter().enumerate() {
        match unit.kind {
            UnitKind::Straight => {
                // Boundary before a straight unit: if the unit is an
                // isolated conditional, label it so.
                let kind =
                    if unit.stmts.len() == 1 && matches!(unit.stmts[0].kind, StmtKind::If { .. }) {
                        BoundaryKind::Conditional
                    } else {
                        BoundaryKind::ForeachEnd
                    };
                push_atom(
                    &mut atoms,
                    &mut boundaries,
                    AtomCode::Straight(unit.stmts.clone()),
                    unit.label.clone(),
                    ui,
                    kind,
                );
            }
            UnitKind::Foreach => {
                let kind = if unit.label.starts_with("call") {
                    BoundaryKind::CallEdge
                } else {
                    BoundaryKind::ForeachStart
                };
                push_atom(
                    &mut atoms,
                    &mut boundaries,
                    AtomCode::Foreach(unit.stmts[0].clone()),
                    unit.label.clone(),
                    ui,
                    kind,
                );
            }
            UnitKind::CondForeach => {
                let (var, domain, cond, then) = unit
                    .cond_parts()
                    .ok_or_else(|| CompileError::new("malformed CondForeach unit"))?;
                let cond_id = next_cond_id;
                next_cond_id += 1;
                let kind = BoundaryKind::ForeachStart;
                push_atom(
                    &mut atoms,
                    &mut boundaries,
                    AtomCode::CondSelect {
                        var: var.to_string(),
                        domain: domain.clone(),
                        cond: cond.clone(),
                        cond_id,
                    },
                    format!("{}-select", unit.label),
                    ui,
                    kind,
                );
                // Internal filtering boundary.
                push_atom(
                    &mut atoms,
                    &mut boundaries,
                    AtomCode::CondBody {
                        var: var.to_string(),
                        domain: domain.clone(),
                        body: then.clone(),
                        cond_id,
                    },
                    format!("{}-body", unit.label),
                    ui,
                    BoundaryKind::CondFilter,
                );
                cond_boundaries.push((cond_id, boundaries.len() - 1));
            }
        }
    }

    if atoms.is_empty() {
        return Err(CompileError::new("no atomic filters in pipeline body"));
    }
    Ok(BoundaryGraph {
        atoms,
        boundaries,
        cond_boundaries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use cgp_lang::frontend;

    fn graph(src: &str) -> BoundaryGraph {
        build_graph(&normalize(&frontend(src).unwrap()).unwrap()).unwrap()
    }

    const SRC: &str = r#"
        extern int n;
        runtime_define int num_packets;
        class Acc implements Reducinterface {
            double total;
            void reduce(Acc other) { total = total + other.total; }
            void add(double x) { total = total + x; }
        }
        class A {
            void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; num_packets) {
                    foreach (i in pkt) {
                        double t = toDouble(i) * 0.5;
                        double u = t * t;
                        if (u > 2.0) {
                            acc.add(u);
                        }
                    }
                }
                print(acc.total);
            }
        }
    "#;

    #[test]
    fn chain_shape_and_counts() {
        let g = graph(SRC);
        // alloc straight, compute foreach, cond-select, cond-body
        assert_eq!(
            g.atoms.len(),
            4,
            "{:?}",
            g.atoms.iter().map(|a| &a.label).collect::<Vec<_>>()
        );
        assert_eq!(g.n_boundaries(), 3);
        assert!(g.is_acyclic());
        assert_eq!(g.flow_path(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cond_filter_boundary_registered() {
        let g = graph(SRC);
        assert_eq!(g.cond_boundaries.len(), 1);
        let (_, bidx) = g.cond_boundaries[0];
        assert_eq!(g.boundaries[bidx].kind, BoundaryKind::CondFilter);
        assert!(matches!(g.atoms[bidx].code, AtomCode::CondSelect { .. }));
        assert!(matches!(g.atoms[bidx + 1].code, AtomCode::CondBody { .. }));
    }

    #[test]
    fn atom_indices_are_positional() {
        let g = graph(SRC);
        for (i, a) in g.atoms.iter().enumerate() {
            assert_eq!(a.idx, i);
        }
        for (i, b) in g.boundaries.iter().enumerate() {
            assert_eq!(b.index, i);
        }
    }

    #[test]
    fn single_foreach_yields_single_atom() {
        let src = r#"
            extern int n;
            class Acc implements Reducinterface {
                double total;
                void reduce(Acc other) { total = total + other.total; }
                void add(double x) { total = total + x; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 4) {
                    foreach (i in pkt) { acc.add(toDouble(i)); }
                }
                print(acc.total);
            } }
        "#;
        let g = graph(src);
        assert_eq!(g.atoms.len(), 1);
        assert_eq!(g.n_boundaries(), 0);
    }
}
