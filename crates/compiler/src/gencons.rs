//! One-pass Gen/Cons analysis of code segments (Section 4.2, Figure 2).
//!
//! For a code segment `b` between two candidate boundaries:
//!
//! - `Gen(b)` — values defined in `b` and still live at its end
//!   (**must**-definitions only);
//! - `Cons(b)` — values used in `b` but not defined in it
//!   (**may**-uses).
//!
//! The segment is traversed in *reverse* statement order:
//!
//! - an assignment adds its LHS to `Gen`, removes it from `Cons`, and adds
//!   its RHS places to `Cons`;
//! - a conditional contributes its branches' `Cons` but **not** their `Gen`
//!   (definitions under a condition are not must-defs);
//! - a loop's body sets are computed first; places indexed by a function of
//!   the loop variable are widened to rectilinear sections derived from the
//!   loop bounds (`a[2i+1]` over `i ∈ [lo,hi]` → `a[2lo+1 : 2hi+1 : 2]`);
//!   the paper's ≥1-iteration assumption lets `Gen(body)` join `Gen(b)`;
//! - calls are analyzed interprocedurally and **context-sensitively**: the
//!   callee body is re-analyzed per call site with formals renamed to
//!   actuals (and `this`/field roots renamed to the receiver).

use crate::error::{CompileError, CompileResult};
use crate::graph::AtomCode;
use crate::normalize::NormalizedPipeline;
use crate::place::{Place, PlaceSet, Section, Sectioning, SymExpr};
use cgp_lang::ast::*;
use std::collections::{HashMap, HashSet};
use std::sync::LazyLock;

static NO_CONSTS: LazyLock<HashMap<String, i64>> = LazyLock::new(HashMap::new);

/// Result of analyzing one code segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentSets {
    pub gen: PlaceSet,
    pub cons: PlaceSet,
}

/// Recursion cut-off for context-sensitive interprocedural analysis.
const MAX_CALL_DEPTH: usize = 16;

/// Analyze one atomic filter's code.
pub fn analyze_atom(np: &NormalizedPipeline, code: &AtomCode) -> CompileResult<SegmentSets> {
    analyze_atom_with(np, code, &NO_CONSTS)
}

/// Like [`analyze_atom`], folding known extern-scalar values (workload
/// metadata such as image widths) into symbolic index expressions — this is
/// what keeps 2-D indexing like `pixels[y*width + x]` rectilinear instead
/// of degrading to whole-array.
pub fn analyze_atom_with(
    np: &NormalizedPipeline,
    code: &AtomCode,
    consts: &HashMap<String, i64>,
) -> CompileResult<SegmentSets> {
    let mut an = Analyzer::new_with(np, consts);
    match code {
        AtomCode::Straight(stmts) => an.segment(stmts),
        AtomCode::Foreach(stmt) => an.segment(std::slice::from_ref(stmt)),
        AtomCode::CondSelect {
            var, domain, cond, ..
        } => {
            // Evaluates `cond` once per point: consumes cond's places widened
            // over the domain; defines nothing visible.
            let mut sets = SegmentSets::default();
            an.enter_loop(var, domain)?;
            let reads = an.places_read(cond)?;
            an.exit_loop();
            let (lo, hi) = an.domain_bounds(domain)?;
            for p in reads {
                sets.cons.insert(widen_place(p, var, &lo, &hi));
            }
            sets.cons.kill(&Place::var(var.clone()));
            for p in an.places_read(domain)? {
                sets.cons.insert(p);
            }
            Ok(sets)
        }
        AtomCode::CondBody {
            var, domain, body, ..
        } => {
            // Conservatively analyzed as if every point passed the filter.
            let fe = Stmt::new(
                NodeId(u32::MAX),
                cgp_lang::span::Span::synthetic(),
                StmtKind::Foreach {
                    var: var.clone(),
                    domain: domain.clone(),
                    body: body.clone(),
                },
            );
            an.segment(std::slice::from_ref(&fe))
        }
    }
}

/// Analyze an arbitrary statement slice (prologue, epilogue, tests).
pub fn analyze_stmts(np: &NormalizedPipeline, stmts: &[Stmt]) -> CompileResult<SegmentSets> {
    Analyzer::new(np).segment(stmts)
}

/// [`analyze_stmts`] with known extern-scalar values folded in.
pub fn analyze_stmts_with(
    np: &NormalizedPipeline,
    stmts: &[Stmt],
    consts: &HashMap<String, i64>,
) -> CompileResult<SegmentSets> {
    Analyzer::new_with(np, consts).segment(stmts)
}

/// Names of reduction-variable roots declared in the prologue (or main
/// scope); these are excluded from per-packet communication because the
/// runtime replicates them and merges copies via `reduce`.
pub fn reduction_roots(np: &NormalizedPipeline) -> HashSet<String> {
    let mut out = HashSet::new();
    let is_reduction = |ty: &Type| match ty {
        Type::Class(c) => np.typed.symbols.is_reduction_class(c),
        _ => false,
    };
    for s in &np.prologue {
        if let StmtKind::VarDecl { name, ty, .. } = &s.kind {
            if is_reduction(ty) {
                out.insert(name.clone());
            }
        }
    }
    for e in &np.typed.program.externs {
        if is_reduction(&e.ty) {
            out.insert(e.name.clone());
        }
    }
    out
}

/// Names declared in the prologue (replicated at filter init, hence never
/// communicated per packet).
pub fn prologue_roots(np: &NormalizedPipeline) -> HashSet<String> {
    let mut out = HashSet::new();
    for s in &np.prologue {
        if let StmtKind::VarDecl { name, .. } = &s.kind {
            out.insert(name.clone());
        }
    }
    out
}

// ---------------------------------------------------------------------------

struct Analyzer<'a> {
    np: &'a NormalizedPipeline,
    /// Known extern-scalar values folded into symbolic expressions.
    consts: &'a HashMap<String, i64>,
    /// Enclosing loop bindings: (var, lo, hi).
    loops: Vec<(String, SymExpr, SymExpr)>,
    /// Call stack of `Class::method` for recursion cut-off.
    call_stack: Vec<String>,
    /// Current class context for resolving unqualified names/methods.
    class_ctx: Vec<String>,
}

impl<'a> Analyzer<'a> {
    fn new(np: &'a NormalizedPipeline) -> Self {
        Self::new_with(np, &NO_CONSTS)
    }

    fn new_with(np: &'a NormalizedPipeline, consts: &'a HashMap<String, i64>) -> Self {
        Analyzer {
            np,
            consts,
            loops: Vec::new(),
            call_stack: Vec::new(),
            class_ctx: vec![np.class.clone()],
        }
    }

    fn current_class(&self) -> &str {
        self.class_ctx.last().expect("class context never empty")
    }

    /// Analyze a statement slice in reverse, per Figure 2.
    fn segment(&mut self, stmts: &[Stmt]) -> CompileResult<SegmentSets> {
        let mut sets = SegmentSets::default();
        for s in stmts.iter().rev() {
            self.stmt(&mut sets, s)?;
        }
        Ok(sets)
    }

    /// Apply one statement's effects to the running (reverse-order) sets.
    fn stmt(&mut self, sets: &mut SegmentSets, s: &Stmt) -> CompileResult<()> {
        match &s.kind {
            StmtKind::VarDecl { name, init, .. } => {
                let lhs = Place::var(name.clone());
                sets.gen.insert(lhs.clone());
                sets.cons.kill(&lhs);
                if let Some(e) = init {
                    self.add_reads(sets, e)?;
                }
            }
            StmtKind::Assign { target, op, value } => {
                let (lhs, must) = self.lvalue_place(target)?;
                if must {
                    sets.gen.insert(lhs.clone());
                    sets.cons.kill(&lhs);
                }
                if *op != AssignOp::Set {
                    sets.cons.insert(lhs);
                }
                // Index / base expressions of the lvalue are reads.
                match target {
                    LValue::Field(b, _) => self.add_reads(sets, b)?,
                    LValue::Index(b, i) => {
                        self.add_reads_base(sets, b)?;
                        self.add_reads(sets, i)?;
                    }
                    LValue::Var(_) => {}
                }
                self.add_reads(sets, value)?;
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                // Branch Gen is NOT added (conditional defs are may-defs);
                // branch Cons is added. A value both defined and used inside
                // the branch stays out of Cons because each branch is
                // analyzed independently first.
                let t = self.clone_ctx().segment(&then_blk.stmts)?;
                sets.cons.extend(&t.cons);
                if let Some(e) = else_blk {
                    let f = self.clone_ctx().segment(&e.stmts)?;
                    sets.cons.extend(&f.cons);
                }
                self.add_reads(sets, cond)?;
            }
            StmtKind::While { cond, body } => {
                let b = self.clone_ctx().segment(&body.stmts)?;
                let (g, c) = (conservative_widen(b.gen), conservative_widen(b.cons));
                sets.gen.extend(&g);
                sets.cons.kill_all(&g);
                sets.cons.extend(&c);
                self.add_reads(sets, cond)?;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                // Canonical `for (int v = A; v < B; v += 1)` gets precise
                // section widening; anything else is conservative.
                if let Some((var, lo, hi)) = self.canonical_for_bounds(init, cond, step) {
                    self.loops.push((var.clone(), lo.clone(), hi.clone()));
                    let b = self.clone_ctx().segment(&body.stmts)?;
                    self.loops.pop();
                    let g = widen_set(b.gen, &var, &lo, &hi);
                    let c = widen_set(b.cons, &var, &lo, &hi);
                    sets.gen.extend(&g);
                    sets.cons.kill_all(&g);
                    sets.cons.extend(&c);
                    // loop var is loop-local
                    sets.cons.kill(&Place::var(var));
                } else {
                    let b = self.clone_ctx().segment(&body.stmts)?;
                    let (g, c) = (conservative_widen(b.gen), conservative_widen(b.cons));
                    sets.gen.extend(&g);
                    sets.cons.kill_all(&g);
                    sets.cons.extend(&c);
                }
                if let Some(i) = init {
                    self.stmt(sets, i)?;
                }
                if let Some(c) = cond {
                    self.add_reads(sets, c)?;
                }
                if let Some(st) = step {
                    // step reads/writes its var; the var is loop-local.
                    let _ = st;
                }
            }
            StmtKind::Foreach { var, domain, body } => {
                self.enter_loop(var, domain)?;
                let b = self.clone_ctx().segment(&body.stmts)?;
                self.exit_loop();
                let (lo, hi) = self.domain_bounds(domain)?;
                let g = widen_set(b.gen, var, &lo, &hi);
                let c = widen_set(b.cons, var, &lo, &hi);
                sets.gen.extend(&g);
                sets.cons.kill_all(&g);
                sets.cons.extend(&c);
                sets.cons.kill(&Place::var(var.clone()));
                self.add_reads(sets, domain)?;
            }
            StmtKind::Pipelined { .. } => {
                return Err(CompileError::at(s.span, "nested PipelinedLoop in segment"));
            }
            StmtKind::Return(v) => {
                if let Some(e) = v {
                    self.add_reads(sets, e)?;
                }
            }
            StmtKind::Expr(e) => {
                // Statement-level call: apply its must-defs too.
                if let ExprKind::Call { recv, method, args } = &e.kind {
                    let eff = self.call_effects(recv, method, args)?;
                    for gp in eff.gen.iter() {
                        sets.gen.insert(gp.clone());
                        sets.cons.kill(gp);
                    }
                    sets.cons.extend(&eff.cons);
                } else {
                    self.add_reads(sets, e)?;
                }
            }
            StmtKind::Block(b) => {
                let inner = self.clone_ctx().segment(&b.stmts)?;
                sets.gen.extend(&inner.gen);
                sets.cons.kill_all(&inner.gen);
                sets.cons.extend(&inner.cons);
            }
            StmtKind::Break | StmtKind::Continue => {}
        }
        Ok(())
    }

    /// A fresh analyzer sharing loop/class/call context (cheap clone; the
    /// inner analysis must not disturb the outer running sets).
    fn clone_ctx(&self) -> Analyzer<'a> {
        Analyzer {
            np: self.np,
            consts: self.consts,
            loops: self.loops.clone(),
            call_stack: self.call_stack.clone(),
            class_ctx: self.class_ctx.clone(),
        }
    }

    fn enter_loop(&mut self, var: &str, domain: &Expr) -> CompileResult<()> {
        let (lo, hi) = self.domain_bounds(domain)?;
        self.loops.push((var.to_string(), lo, hi));
        Ok(())
    }

    fn exit_loop(&mut self) {
        self.loops.pop();
    }

    /// Symbolic bounds of a domain expression.
    fn domain_bounds(&self, domain: &Expr) -> CompileResult<(SymExpr, SymExpr)> {
        match &domain.kind {
            ExprKind::Var(d) => Ok((
                SymExpr::sym(format!("{d}.lo")),
                SymExpr::sym(format!("{d}.hi")),
            )),
            ExprKind::DomainLit(lo, hi) => Ok((self.expr_to_sym(lo), self.expr_to_sym(hi))),
            _ => Ok((SymExpr::unknown(), SymExpr::unknown())),
        }
    }

    /// Convert an int expression to a symbolic affine form. Loop variables
    /// and plain names become symbols; unsupported shapes become opaque.
    fn expr_to_sym(&self, e: &Expr) -> SymExpr {
        match &e.kind {
            ExprKind::IntLit(v) => SymExpr::konst(*v),
            ExprKind::Var(n) => {
                // Fold extern scalars with known values (workload metadata).
                if self.np.typed.symbols.externs.contains_key(n) {
                    if let Some(v) = self.consts.get(n) {
                        return SymExpr::konst(*v);
                    }
                }
                SymExpr::sym(n.clone())
            }
            ExprKind::Unary(UnOp::Neg, x) => self.expr_to_sym(x).scale(-1),
            ExprKind::Binary(BinOp::Add, l, r) => self.expr_to_sym(l).add(&self.expr_to_sym(r)),
            ExprKind::Binary(BinOp::Sub, l, r) => self.expr_to_sym(l).sub(&self.expr_to_sym(r)),
            ExprKind::Binary(BinOp::Mul, l, r) => self.expr_to_sym(l).mul(&self.expr_to_sym(r)),
            ExprKind::Binary(BinOp::Div, l, r) => {
                // Exact only when both sides fold to constants.
                let (a, b) = (self.expr_to_sym(l), self.expr_to_sym(r));
                match (a.is_const(), b.is_const()) {
                    (Some(x), Some(y)) if y != 0 => SymExpr::konst(x / y),
                    _ => SymExpr::unknown(),
                }
            }
            ExprKind::Call {
                recv: Some(r),
                method,
                args,
            } if args.is_empty() => {
                if let ExprKind::Var(d) = &r.kind {
                    match method.as_str() {
                        "lo" => SymExpr::sym(format!("{d}.lo")),
                        "hi" => SymExpr::sym(format!("{d}.hi")),
                        "size" => SymExpr::sym(format!("{d}.hi"))
                            .sub(&SymExpr::sym(format!("{d}.lo")))
                            .add(&SymExpr::konst(1)),
                        _ => SymExpr::unknown(),
                    }
                } else {
                    SymExpr::unknown()
                }
            }
            _ => SymExpr::unknown(),
        }
    }

    /// Resolve an lvalue to a place and whether the def is a must-def.
    fn lvalue_place(&mut self, lv: &LValue) -> CompileResult<(Place, bool)> {
        match lv {
            LValue::Var(n) => Ok((Place::var(n.clone()), true)),
            LValue::Field(b, f) => match self.resolve_base(b) {
                Some(mut p) => {
                    p.fields.push(f.clone());
                    // A def through a sectioned element is must only if the
                    // section is precise.
                    let must = !matches!(p.sect, Sectioning::All);
                    Ok((p, must))
                }
                None => Ok((Place::var("?unknown"), false)),
            },
            LValue::Index(b, i) => match self.resolve_base(b) {
                Some(mut p) if p.fields.is_empty() && matches!(p.sect, Sectioning::NotIndexed) => {
                    let sect = self.index_section(i);
                    let must = matches!(sect, Sectioning::Range(_));
                    p.sect = sect;
                    Ok((p, must))
                }
                _ => Ok((Place::var("?unknown"), false)),
            },
        }
    }

    /// Resolve an expression to a place when it is a simple chain
    /// `var (.field)* ([affine])? (.field)*` — one level of array
    /// sectioning on the root; `None` otherwise.
    fn resolve_base(&self, e: &Expr) -> Option<Place> {
        match &e.kind {
            ExprKind::Var(n) => Some(Place::var(n.clone())),
            ExprKind::This => Some(Place::var("this")),
            ExprKind::Field(b, f) => {
                let mut p = self.resolve_base(b)?;
                p.fields.push(f.clone());
                Some(p)
            }
            ExprKind::Index(b, i) => {
                let mut p = self.resolve_base(b)?;
                // Only the root collection may be sectioned in our place
                // model (`tri[pkt].x`, not `obj.arr[i]`).
                if !p.fields.is_empty() || !matches!(p.sect, Sectioning::NotIndexed) {
                    return None;
                }
                p.sect = self.index_section(i);
                Some(p)
            }
            _ => None,
        }
    }

    /// Sectioning for an index expression: affine in symbols → a point
    /// section; otherwise the whole array.
    fn index_section(&self, idx: &Expr) -> Sectioning {
        let s = self.expr_to_sym(idx);
        if s.opaque {
            Sectioning::All
        } else {
            Sectioning::Range(Section::dense(s.clone(), s))
        }
    }

    /// Add all read places of `e` to `sets.cons` (may-uses), including
    /// interprocedural effects of calls.
    fn add_reads(&mut self, sets: &mut SegmentSets, e: &Expr) -> CompileResult<()> {
        for p in self.places_read(e)? {
            sets.cons.insert(p);
        }
        Ok(())
    }

    /// Reads of an array base expression (`a` in `a[i] = ...`): the binding
    /// is read, but the elements are not.
    fn add_reads_base(&mut self, sets: &mut SegmentSets, e: &Expr) -> CompileResult<()> {
        if self.resolve_base(e).is_some() {
            return Ok(()); // simple chain: writing through it, no element read
        }
        self.add_reads(sets, e)
    }

    /// All places read by an expression.
    fn places_read(&mut self, e: &Expr) -> CompileResult<Vec<Place>> {
        let mut out = Vec::new();
        self.collect_reads(e, &mut out)?;
        Ok(out)
    }

    fn collect_reads(&mut self, e: &Expr, out: &mut Vec<Place>) -> CompileResult<()> {
        match &e.kind {
            ExprKind::IntLit(_)
            | ExprKind::DoubleLit(_)
            | ExprKind::BoolLit(_)
            | ExprKind::Null
            | ExprKind::This => {}
            ExprKind::Var(n) => out.push(Place::var(n.clone())),
            ExprKind::Field(..) => match self.resolve_base(e) {
                Some(p) => out.push(p),
                None => {
                    if let ExprKind::Field(b, _) = &e.kind {
                        self.collect_reads(b, out)?;
                    }
                }
            },
            ExprKind::Index(b, i) => {
                match self.resolve_base(e) {
                    Some(p) => out.push(p),
                    None => self.collect_reads(b, out)?,
                }
                self.collect_reads(i, out)?;
            }
            ExprKind::Unary(_, x) => self.collect_reads(x, out)?,
            ExprKind::Binary(_, l, r) => {
                self.collect_reads(l, out)?;
                self.collect_reads(r, out)?;
            }
            ExprKind::Ternary(c, a, b) => {
                self.collect_reads(c, out)?;
                self.collect_reads(a, out)?;
                self.collect_reads(b, out)?;
            }
            ExprKind::Call { recv, method, args } => {
                let eff = self.call_effects(recv, method, args)?;
                // In expression position only the consumption escapes; the
                // callee's defs act like conditional defs (value-producing
                // calls in larger expressions are not segment-level kills).
                out.extend(eff.cons.iter().cloned());
            }
            ExprKind::New(_) => {}
            ExprKind::NewArray(_, len) => self.collect_reads(len, out)?,
            ExprKind::DomainLit(lo, hi) => {
                self.collect_reads(lo, out)?;
                self.collect_reads(hi, out)?;
            }
        }
        Ok(())
    }

    /// Interprocedural, context-sensitive effects of a call.
    fn call_effects(
        &mut self,
        recv: &Option<Box<Expr>>,
        method: &str,
        args: &[Expr],
    ) -> CompileResult<SegmentSets> {
        let mut eff = SegmentSets::default();
        // Arguments are always consumed as values.
        for a in args {
            for p in self.places_read(a)? {
                eff.cons.insert(p);
            }
        }
        // Builtins: pure; domain/array methods: receiver binding read.
        if recv.is_none() && is_builtin(method) {
            return Ok(eff);
        }
        let (callee_class, recv_place) = match recv {
            None => (self.current_class().to_string(), Some(Place::var("this"))),
            Some(r) => {
                if DOMAIN_METHODS.contains(&method) || ARRAY_METHODS.contains(&method) {
                    // d.lo() / a.length(): reads the binding only.
                    if let Some(p) = self.resolve_base(r) {
                        eff.cons.insert(p);
                    } else {
                        for p in self.places_read(r)? {
                            eff.cons.insert(p);
                        }
                    }
                    return Ok(eff);
                }
                let rt = self.receiver_class(r);
                match rt {
                    Some(c) => (c, self.resolve_base(r)),
                    None => {
                        // Unknown receiver class: consume the receiver
                        // conservatively and give up on its defs.
                        for p in self.places_read(r)? {
                            eff.cons.insert(p);
                        }
                        return Ok(eff);
                    }
                }
            }
        };
        // Receiver binding itself is consumed.
        if let Some(rp) = &recv_place {
            if rp.root != "this" {
                eff.cons.insert(rp.clone());
            }
        }

        let key = format!("{callee_class}::{method}");
        if self.call_stack.contains(&key) || self.call_stack.len() >= MAX_CALL_DEPTH {
            // Recursion cut-off: consume whole argument objects, no defs.
            for a in args {
                if let Some(p) = self.resolve_base(a) {
                    eff.cons.insert(p);
                }
            }
            return Ok(eff);
        }
        let Some(m) = self.np.typed.program.method(&callee_class, method) else {
            return Ok(eff);
        };
        let m = m.clone();
        self.call_stack.push(key);
        self.class_ctx.push(callee_class.clone());
        let body_sets = self.clone_ctx().segment(&m.body.stmts)?;
        self.class_ctx.pop();
        self.call_stack.pop();

        // Canonicalize: roots that are fields of the callee class become
        // `this.<field>` paths.
        let canon = |p: &Place| -> Place {
            let class_decl = self.np.typed.program.class(&callee_class);
            if let Some(cd) = class_decl {
                if cd.field(&p.root).is_some() {
                    let mut q = Place::var("this");
                    q.fields.push(p.root.clone());
                    q.fields.extend(p.fields.iter().cloned());
                    q.sect = p.sect.clone();
                    return q;
                }
            }
            p.clone()
        };

        // Map a callee-context place to the caller context.
        let map_place = |p: &Place, is_def: bool| -> Option<Place> {
            let p = canon(p);
            if p.root == "this" {
                // substitute receiver
                let rp = recv_place.clone()?;
                if rp.root == "?unknown" {
                    return None;
                }
                let mut q = rp;
                q.fields.extend(p.fields.iter().cloned());
                // sect of p applies to the innermost value; only valid when
                // receiver itself is unsectioned
                if matches!(q.sect, Sectioning::NotIndexed) {
                    q.sect = p.sect.clone();
                } else if !matches!(p.sect, Sectioning::NotIndexed) {
                    return None;
                }
                return Some(q);
            }
            // formal parameter?
            if let Some(pos) = m.params.iter().position(|fp| fp.name == p.root) {
                let actual = &args[pos];
                if let Some(ap) = self.resolve_base(actual) {
                    let mut q = ap;
                    q.fields.extend(p.fields.iter().cloned());
                    if matches!(q.sect, Sectioning::NotIndexed) {
                        q.sect = p.sect.clone();
                    } else if !matches!(p.sect, Sectioning::NotIndexed) {
                        return None;
                    }
                    // Defs of the formal's *binding* (scalar copy) do not
                    // escape; defs through fields/sections do.
                    if is_def
                        && q.fields.len() == ap_len(&q)
                        && matches!(q.sect, Sectioning::NotIndexed)
                    {
                        // plain rebinding of the copy — does not escape
                        return None;
                    }
                    return Some(q);
                }
                return None; // complex actual: its reads were added already
            }
            // callee locals do not escape; globals (externs) pass through
            if self.np.typed.symbols.externs.contains_key(&p.root) {
                return Some(p);
            }
            None
        };
        // Helper: q.fields length equal to "no extra fields added"? We need
        // the original path length of the actual — recompute inline instead.
        fn ap_len(_q: &Place) -> usize {
            usize::MAX // sentinel: never equal → defs through params escape
        }

        for p in body_sets.cons.iter() {
            if let Some(q) = map_place(p, false) {
                eff.cons.insert(q);
            }
        }
        for p in body_sets.gen.iter() {
            // A def escapes only if it writes through the receiver or a
            // field/section of a parameter object (reference semantics).
            let escapes = {
                let cp = canon(p);
                cp.root == "this"
                    || (m.params.iter().any(|fp| fp.name == cp.root)
                        && (!cp.fields.is_empty() || !matches!(cp.sect, Sectioning::NotIndexed)))
                    || self.np.typed.symbols.externs.contains_key(&cp.root)
            };
            if !escapes {
                continue;
            }
            if let Some(q) = map_place(p, true) {
                eff.gen.insert(q);
            }
        }
        Ok(eff)
    }

    /// Static class of a method receiver, resolved syntactically: local /
    /// param / field / extern of class type, or `new C()`.
    fn receiver_class(&self, r: &Expr) -> Option<String> {
        let ty = self.type_of_chain(r)?;
        match ty {
            Type::Class(c) => Some(c),
            _ => None,
        }
    }

    fn type_of_chain(&self, e: &Expr) -> Option<Type> {
        match &e.kind {
            ExprKind::Var(n) => self.lookup_type(n),
            ExprKind::This => Some(Type::Class(self.current_class().to_string())),
            ExprKind::New(c) => Some(Type::Class(c.clone())),
            ExprKind::Field(b, f) => {
                let bt = self.type_of_chain(b)?;
                if let Type::Class(c) = bt {
                    self.np
                        .typed
                        .program
                        .class(&c)
                        .and_then(|cd| cd.field(f))
                        .map(|fd| fd.ty.clone())
                } else {
                    None
                }
            }
            ExprKind::Index(b, _) => {
                let bt = self.type_of_chain(b)?;
                if let Type::Array(el) = bt {
                    Some(*el)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Look a name up in: current method scopes (any method of the current
    /// class — segments come from `main`, callees from their own methods),
    /// class fields, externs.
    fn lookup_type(&self, name: &str) -> Option<Type> {
        let class = self.current_class();
        let prog = &self.np.typed.program;
        let cd = prog.class(class)?;
        for m in &cd.methods {
            if let Some(sc) = self.np.typed.symbols.scope(class, &m.name) {
                if let Some(t) = sc.get(name) {
                    return Some(t.clone());
                }
            }
        }
        if let Some(f) = cd.field(name) {
            return Some(f.ty.clone());
        }
        self.np.typed.symbols.externs.get(name).cloned()
    }
}

// ---- widening --------------------------------------------------------------

/// Widen one place over loop variable `v ∈ [lo, hi]`.
fn widen_place(p: Place, v: &str, lo: &SymExpr, hi: &SymExpr) -> Place {
    let Sectioning::Range(sec) = &p.sect else {
        return p;
    };
    let coef = |e: &SymExpr| {
        e.terms
            .iter()
            .find(|(s, _)| s == v)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    let (clo, chi) = (coef(&sec.lo), coef(&sec.hi));
    if clo == 0 && chi == 0 {
        return p;
    }
    // Point sections a[f(v)] have lo == hi; general sections substitute per
    // bound according to the sign of v's coefficient.
    let sub = |e: &SymExpr, c: i64, want_low: bool| {
        let with = if (c > 0) == want_low { lo } else { hi };
        e.subst(v, with)
    };
    let stride = if sec.lo == sec.hi {
        clo.abs().max(1)
    } else {
        1
    };
    let mut q = p.clone();
    q.sect = Sectioning::Range(Section {
        lo: sub(&sec.lo, if clo != 0 { clo } else { chi }, true),
        hi: sub(&sec.hi, if chi != 0 { chi } else { clo }, false),
        stride,
    });
    q
}

/// Widen every section in the set over `v ∈ [lo, hi]`.
fn widen_set(set: PlaceSet, v: &str, lo: &SymExpr, hi: &SymExpr) -> PlaceSet {
    set.iter()
        .map(|p| widen_place(p.clone(), v, lo, hi))
        .collect()
}

/// Conservative widening for loops without known bounds: sectioned places
/// whose bounds are not loop-independent become whole-array.
fn conservative_widen(set: PlaceSet) -> PlaceSet {
    set.iter()
        .map(|p| {
            let mut q = p.clone();
            if let Sectioning::Range(sec) = &q.sect {
                if !sec.lo.terms.is_empty() || !sec.hi.terms.is_empty() {
                    q.sect = Sectioning::All;
                }
            }
            q
        })
        .collect()
}

impl Analyzer<'_> {
    /// Detect `for (int v = A; v < B; v += 1)` / `v <= B` and return
    /// `(v, lo, hi)` symbolically (with known constants folded).
    fn canonical_for_bounds(
        &self,
        init: &Option<Box<Stmt>>,
        cond: &Option<Expr>,
        step: &Option<Box<Stmt>>,
    ) -> Option<(String, SymExpr, SymExpr)> {
        let init = init.as_ref()?;
        let StmtKind::VarDecl {
            name,
            ty: Type::Int,
            init: Some(lo_e),
        } = &init.kind
        else {
            return None;
        };
        let cond = cond.as_ref()?;
        let ExprKind::Binary(op, l, r) = &cond.kind else {
            return None;
        };
        let ExprKind::Var(cv) = &l.kind else {
            return None;
        };
        if cv != name {
            return None;
        }
        let step = step.as_ref()?;
        let StmtKind::Assign {
            target: LValue::Var(sv),
            op: AssignOp::Add,
            value,
        } = &step.kind
        else {
            return None;
        };
        if sv != name || !matches!(value.kind, ExprKind::IntLit(1)) {
            return None;
        }
        let lo = self.expr_to_sym(lo_e);
        let hi = match op {
            BinOp::Lt => self.expr_to_sym(r).sub(&SymExpr::konst(1)),
            BinOp::Le => self.expr_to_sym(r),
            _ => return None,
        };
        if lo.opaque || hi.opaque {
            return None;
        }
        Some((name.clone(), lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::normalize::normalize;
    use cgp_lang::frontend;

    fn pipeline(src: &str) -> NormalizedPipeline {
        normalize(&frontend(src).unwrap()).unwrap()
    }

    fn fmt(set: &PlaceSet) -> String {
        set.to_string()
    }

    const BASE: &str = r#"
        extern int n;
        extern double[] data;
        class Acc implements Reducinterface {
            double total;
            void reduce(Acc other) { total = total + other.total; }
            void add(double x) { total = total + x; }
        }
        class A {
            void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 4) {
                    foreach (i in pkt) {
                        double v = data[i] * 2.0;
                        if (v > 1.0) {
                            acc.add(v);
                        }
                    }
                }
                print(acc.total);
            }
        }
    "#;

    #[test]
    fn foreach_reads_become_sections() {
        let np = pipeline(BASE);
        let g = build_graph(&np).unwrap();
        // Find the compute atom (defines v__x from data).
        let compute = g
            .atoms
            .iter()
            .find(|a| matches!(&a.code, AtomCode::Foreach(_)))
            .expect("compute atom");
        let sets = analyze_atom(&np, &compute.code).unwrap();
        let cons = fmt(&sets.cons);
        assert!(cons.contains("data[pkt.lo : pkt.hi]"), "cons = {cons}");
        // The expanded array is must-defined over the whole packet.
        let gen = fmt(&sets.gen);
        assert!(
            gen.contains("v__x[0 : pkt.hi - pkt.lo]") || gen.contains("v__x["),
            "gen = {gen}"
        );
    }

    #[test]
    fn cond_select_consumes_condition_places() {
        let np = pipeline(BASE);
        let g = build_graph(&np).unwrap();
        let sel = g
            .atoms
            .iter()
            .find(|a| matches!(&a.code, AtomCode::CondSelect { .. }))
            .expect("select atom");
        let sets = analyze_atom(&np, &sel.code).unwrap();
        let cons = fmt(&sets.cons);
        assert!(cons.contains("v__x"), "cons = {cons}");
        assert!(sets.gen.is_empty());
    }

    #[test]
    fn cond_body_consumes_but_reduction_root_tracked() {
        let np = pipeline(BASE);
        let g = build_graph(&np).unwrap();
        let body = g
            .atoms
            .iter()
            .find(|a| matches!(&a.code, AtomCode::CondBody { .. }))
            .expect("body atom");
        let sets = analyze_atom(&np, &body.code).unwrap();
        let cons = fmt(&sets.cons);
        assert!(cons.contains("v__x"), "cons = {cons}");
        // acc is consumed (and updated) — it's there in raw sets, and the
        // reduction_roots() helper identifies it for exclusion downstream.
        assert!(cons.contains("acc"), "cons = {cons}");
        assert!(reduction_roots(&np).contains("acc"));
    }

    #[test]
    fn straight_line_gen_kills_cons() {
        // y uses x; x defined before → segment consumes only `a`.
        let src = r#"
            extern int n;
            class Acc implements Reducinterface {
                double t;
                void reduce(Acc o) { t = t + o.t; }
                void add(double x) { t = t + x; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    int a = pkt.size();
                    int x = a + 1;
                    int y = x * 2;
                    acc.add(toDouble(y));
                }
                print(acc.t);
            } }
        "#;
        let np = pipeline(src);
        let sets = analyze_stmts(&np, &np.body_stmts()).unwrap();
        let cons = fmt(&sets.cons);
        assert!(!cons.contains("x"), "cons = {cons}");
        assert!(!cons.contains("y"), "cons = {cons}");
        assert!(cons.contains("pkt"), "cons = {cons}");
        let gen = fmt(&sets.gen);
        assert!(
            gen.contains("x") && gen.contains("y") && gen.contains("a"),
            "gen = {gen}"
        );
    }

    #[test]
    fn conditional_defs_are_not_must() {
        let src = r#"
            extern int n;
            class Acc implements Reducinterface {
                int t;
                void reduce(Acc o) { t = t + o.t; }
                void add(int x) { t = t + x; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    int x = 0;
                    if (pkt.size() > 5) {
                        x = 1;
                    }
                    acc.add(x);
                }
                print(acc.t);
            } }
        "#;
        let np = pipeline(src);
        // Analyze only the conditional statement: its def of x must not be
        // a must-def.
        let body = np.body_stmts();
        let cond_stmt = body
            .iter()
            .find(|s| matches!(s.kind, StmtKind::If { .. }))
            .unwrap()
            .clone();
        let sets = analyze_stmts(&np, &[cond_stmt]).unwrap();
        assert!(sets.gen.is_empty(), "gen = {}", fmt(&sets.gen));
        assert!(fmt(&sets.cons).contains("pkt"));
    }

    #[test]
    fn interprocedural_field_reads_mapped_to_receiver() {
        let src = r#"
            extern int n;
            extern double[] xs;
            class P {
                double x;
                double y;
                double norm() { return sqrt(x * x + y * y); }
            }
            class Acc implements Reducinterface {
                double t;
                void reduce(Acc o) { t = t + o.t; }
                void add(double v) { t = t + v; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                P p = new P();
                PipelinedLoop (pkt in all; 2) {
                    foreach (i in pkt) {
                        double d = p.norm() + xs[i];
                        acc.add(d);
                    }
                }
                print(acc.t);
            } }
        "#;
        let np = pipeline(src);
        let sets = analyze_stmts(&np, &np.body_stmts()).unwrap();
        let cons = fmt(&sets.cons);
        assert!(cons.contains("p.x") || cons.contains("p"), "cons = {cons}");
        assert!(cons.contains("xs[pkt.lo : pkt.hi]"), "cons = {cons}");
    }

    #[test]
    fn interprocedural_defs_through_receiver_escape() {
        let src = r#"
            extern int n;
            class P {
                double x;
                void setx(double v) { x = v; }
            }
            class Acc implements Reducinterface {
                double t;
                void reduce(Acc o) { t = t + o.t; }
                void add(double v) { t = t + v; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    P p = new P();
                    p.setx(1.5);
                    acc.add(p.x);
                }
                print(acc.t);
            } }
        "#;
        let np = pipeline(src);
        // The statements after `P p = new P()` — analyze only the call and
        // the use, so the def of p.x must kill the later use.
        let body = np.body_stmts();
        let sets = analyze_stmts(&np, &body[1..]).unwrap();
        let cons = fmt(&sets.cons);
        // p.x is defined by setx (must) before being read by acc.add → the
        // only cons on p should be the binding `p` itself (receiver read).
        assert!(!cons.contains("p.x"), "cons = {cons}");
        let gen = fmt(&sets.gen);
        assert!(gen.contains("p.x"), "gen = {gen}");
    }

    #[test]
    fn strided_access_widens_with_stride() {
        let src = r#"
            extern int n;
            extern double[] xs;
            class Acc implements Reducinterface {
                double t;
                void reduce(Acc o) { t = t + o.t; }
                void add(double v) { t = t + v; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    foreach (i in pkt) {
                        acc.add(xs[2 * i + 1]);
                    }
                }
                print(acc.t);
            } }
        "#;
        let np = pipeline(src);
        let sets = analyze_stmts(&np, &np.body_stmts()).unwrap();
        let cons = fmt(&sets.cons);
        assert!(
            cons.contains("xs[1 + 2*pkt.lo : 1 + 2*pkt.hi : 2]"),
            "cons = {cons}"
        );
    }

    #[test]
    fn canonical_for_loop_widens_precisely() {
        let src = r#"
            extern int n;
            extern double[] xs;
            class Acc implements Reducinterface {
                double t;
                void reduce(Acc o) { t = t + o.t; }
                void add(double v) { t = t + v; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    double s = 0.0;
                    for (int k = 0; k < 8; k += 1) {
                        s += xs[k];
                    }
                    acc.add(s);
                }
                print(acc.t);
            } }
        "#;
        let np = pipeline(src);
        let sets = analyze_stmts(&np, &np.body_stmts()).unwrap();
        let cons = fmt(&sets.cons);
        assert!(cons.contains("xs[0 : 7]"), "cons = {cons}");
    }

    #[test]
    fn unknown_index_is_whole_array() {
        let src = r#"
            extern int n;
            extern double[] xs;
            extern int[] perm;
            class Acc implements Reducinterface {
                double t;
                void reduce(Acc o) { t = t + o.t; }
                void add(double v) { t = t + v; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    foreach (i in pkt) {
                        acc.add(xs[perm[i]]);
                    }
                }
                print(acc.t);
            } }
        "#;
        let np = pipeline(src);
        let sets = analyze_stmts(&np, &np.body_stmts()).unwrap();
        let cons = fmt(&sets.cons);
        assert!(cons.contains("xs[*]"), "cons = {cons}");
        assert!(cons.contains("perm[pkt.lo : pkt.hi]"), "cons = {cons}");
    }
}
